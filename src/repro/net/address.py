"""Host and endpoint addressing.

TDP communicates endpoints as host/port pairs (paper Section 2.4: "TDP
will provide a host/port number pair to the RT to contact its front-end").
Endpoints therefore have a canonical string form ``"host:port"`` that fits
in an attribute value, and a parser that recovers them.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ProtocolError


@dataclass(frozen=True, order=True)
class HostAddress:
    """A named host in the (simulated or real) network."""

    name: str

    def __post_init__(self) -> None:
        if not self.name or ":" in self.name or "/" in self.name:
            raise ProtocolError(f"invalid host name {self.name!r}")

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True, order=True)
class Endpoint:
    """A (host, port) pair — the unit TDP publishes in the attribute space."""

    host: str
    port: int

    def __post_init__(self) -> None:
        if not self.host:
            raise ProtocolError("endpoint host must be non-empty")
        if not (0 < self.port < 65536):
            raise ProtocolError(f"endpoint port out of range: {self.port}")

    def __str__(self) -> str:
        return f"{self.host}:{self.port}"

    @property
    def address(self) -> HostAddress:
        return HostAddress(self.host)


def parse_endpoint(text: str) -> Endpoint:
    """Parse ``"host:port"`` back into an :class:`Endpoint`.

    This is the inverse of ``str(endpoint)`` and is what a tool daemon
    does with the front-end address it fetched from the attribute space.
    """
    host, sep, port_s = text.rpartition(":")
    if not sep or not host:
        raise ProtocolError(f"malformed endpoint {text!r} (expected host:port)")
    try:
        port = int(port_s)
    except ValueError:
        raise ProtocolError(f"malformed endpoint port in {text!r}") from None
    return Endpoint(host=host, port=port)
