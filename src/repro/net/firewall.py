"""Firewall / NAT model for the simulated network.

The paper motivates the TDP proxy interface with private networks whose
firewalls block inbound and/or outbound connections between execution
hosts and the outside (Section 2.4).  We model this with per-zone
policies plus explicit allow/deny rules, evaluated at *connection
establishment* time (like a stateful TCP firewall: once a connection is
allowed, traffic flows both ways).
"""

from __future__ import annotations

import enum
import fnmatch
from dataclasses import dataclass, field


class FirewallPolicy(enum.Enum):
    """Default verdict when no explicit rule matches."""

    ALLOW = "allow"
    DENY = "deny"


class Verdict(enum.Enum):
    ALLOW = "allow"
    DENY = "deny"


@dataclass(frozen=True)
class Rule:
    """One match rule: glob patterns on source/destination host and port.

    ``port=None`` matches any destination port.  Rules are evaluated in
    insertion order; the first match wins (classic first-match firewall
    semantics).
    """

    src: str = "*"
    dst: str = "*"
    port: int | None = None
    verdict: Verdict = Verdict.ALLOW

    def matches(self, src: str, dst: str, port: int) -> bool:
        if not fnmatch.fnmatchcase(src, self.src):
            return False
        if not fnmatch.fnmatchcase(dst, self.dst):
            return False
        if self.port is not None and self.port != port:
            return False
        return True


@dataclass
class Firewall:
    """Ordered rule list with a default policy.

    The :class:`~repro.net.topology.Network` consults one firewall for
    each *zone boundary crossing*; traffic within a zone is never
    filtered (hosts on one LAN segment see each other).
    """

    default: FirewallPolicy = FirewallPolicy.DENY
    rules: list[Rule] = field(default_factory=list)

    def allow(self, src: str = "*", dst: str = "*", port: int | None = None) -> "Firewall":
        """Append an ALLOW rule; returns self for chaining."""
        self.rules.append(Rule(src=src, dst=dst, port=port, verdict=Verdict.ALLOW))
        return self

    def deny(self, src: str = "*", dst: str = "*", port: int | None = None) -> "Firewall":
        """Append a DENY rule; returns self for chaining."""
        self.rules.append(Rule(src=src, dst=dst, port=port, verdict=Verdict.DENY))
        return self

    def permits(self, src: str, dst: str, port: int) -> bool:
        """First-match evaluation; fall through to the default policy."""
        for rule in self.rules:
            if rule.matches(src, dst, port):
                return rule.verdict is Verdict.ALLOW
        return self.default is FirewallPolicy.ALLOW

    def explain(self, src: str, dst: str, port: int) -> str:
        """Human-readable verdict trace (used in error messages)."""
        for i, rule in enumerate(self.rules):
            if rule.matches(src, dst, port):
                return (
                    f"rule[{i}] ({rule.src}->{rule.dst}"
                    f"{':' + str(rule.port) if rule.port else ''}) "
                    f"=> {rule.verdict.value}"
                )
        return f"default policy => {self.default.value}"
