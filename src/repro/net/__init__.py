"""Network model: host addresses, private networks, firewall/NAT rules.

This is the substrate for the paper's Figure 1/2 topology: the RM and RT
front-ends live on a submit-side host, the execution hosts sit behind a
firewall in a private network, and only the RM's proxy may cross it.
"""

from repro.net.address import Endpoint, HostAddress, parse_endpoint
from repro.net.firewall import Firewall, FirewallPolicy, Rule
from repro.net.topology import Network, NetworkZone

__all__ = [
    "Endpoint",
    "HostAddress",
    "parse_endpoint",
    "Firewall",
    "FirewallPolicy",
    "Rule",
    "Network",
    "NetworkZone",
]
