"""Network topology: hosts grouped into zones with firewalled boundaries.

A :class:`Network` answers exactly one question for the transport layer:
*may host A open a connection to host B on port P, and at what latency?*
Zones model the paper's split between the user's submit-side network and
the cluster's private network.  Crossing a zone boundary consults the
destination zone's inbound firewall and the source zone's outbound
firewall; intra-zone traffic is unfiltered.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import FirewallBlockedError, NoSuchHostError
from repro.net.firewall import Firewall, FirewallPolicy


@dataclass
class NetworkZone:
    """A LAN segment / administrative domain.

    ``inbound`` filters connections whose destination is in this zone and
    whose source is outside it; ``outbound`` filters the reverse.  The
    default zone firewalls allow everything — a *private* zone is built
    by passing deny-by-default firewalls (see :meth:`Network.add_zone`).
    """

    name: str
    inbound: Firewall = field(default_factory=lambda: Firewall(default=FirewallPolicy.ALLOW))
    outbound: Firewall = field(default_factory=lambda: Firewall(default=FirewallPolicy.ALLOW))
    #: one-way latency (seconds) added per boundary crossing of this zone
    boundary_latency: float = 0.0
    hosts: set[str] = field(default_factory=set)


class Network:
    """Registry of hosts and zones with reachability queries.

    >>> net = Network()
    >>> _ = net.add_zone("public")
    >>> _ = net.add_private_zone("cluster")
    >>> net.add_host("desktop", "public")
    >>> net.add_host("node1", "cluster")
    >>> net.permits("node1", "desktop", 7000)   # outbound from private: blocked
    False
    """

    #: base one-way latency between any two distinct hosts (seconds)
    DEFAULT_LINK_LATENCY = 0.0

    def __init__(self, link_latency: float | None = None):
        self._zones: dict[str, NetworkZone] = {}
        self._host_zone: dict[str, str] = {}
        self._link_latency = (
            link_latency if link_latency is not None else self.DEFAULT_LINK_LATENCY
        )

    # -- construction ------------------------------------------------------

    def add_zone(self, name: str, zone: NetworkZone | None = None) -> NetworkZone:
        """Add an open zone (or a caller-constructed one)."""
        if name in self._zones:
            raise ValueError(f"zone {name!r} already exists")
        z = zone if zone is not None else NetworkZone(name=name)
        if z.name != name:
            raise ValueError("zone name mismatch")
        self._zones[name] = z
        return z

    def add_private_zone(
        self, name: str, *, allow_outbound: bool = False, boundary_latency: float = 0.0
    ) -> NetworkZone:
        """Add a deny-by-default private zone (the paper's firewalled cluster).

        ``allow_outbound=True`` models NAT-style networks where execution
        hosts may dial out but nothing may dial in; the default models the
        strict case where even outbound tool traffic needs the RM proxy.
        """
        inbound = Firewall(default=FirewallPolicy.DENY)
        outbound = Firewall(
            default=FirewallPolicy.ALLOW if allow_outbound else FirewallPolicy.DENY
        )
        zone = NetworkZone(
            name=name,
            inbound=inbound,
            outbound=outbound,
            boundary_latency=boundary_latency,
        )
        return self.add_zone(name, zone)

    def add_host(self, hostname: str, zone: str) -> None:
        if zone not in self._zones:
            raise ValueError(f"unknown zone {zone!r}")
        if hostname in self._host_zone:
            raise ValueError(f"host {hostname!r} already registered")
        self._host_zone[hostname] = zone
        self._zones[zone].hosts.add(hostname)

    # -- queries -----------------------------------------------------------

    def zone_of(self, hostname: str) -> NetworkZone:
        try:
            return self._zones[self._host_zone[hostname]]
        except KeyError:
            raise NoSuchHostError(hostname) from None

    def hosts(self) -> list[str]:
        return sorted(self._host_zone)

    def zones(self) -> list[NetworkZone]:
        return list(self._zones.values())

    def permits(self, src: str, dst: str, port: int) -> bool:
        """May ``src`` open a connection to ``dst:port``?"""
        src_zone = self.zone_of(src)
        dst_zone = self.zone_of(dst)
        if src_zone.name == dst_zone.name:
            return True
        if not src_zone.outbound.permits(src, dst, port):
            return False
        if not dst_zone.inbound.permits(src, dst, port):
            return False
        return True

    def check(self, src: str, dst: str, port: int) -> None:
        """Raise :class:`FirewallBlockedError` with an explanation if blocked."""
        src_zone = self.zone_of(src)
        dst_zone = self.zone_of(dst)
        if src_zone.name == dst_zone.name:
            return
        if not src_zone.outbound.permits(src, dst, port):
            raise FirewallBlockedError(
                f"{src} -> {dst}:{port} blocked by zone {src_zone.name!r} outbound: "
                + src_zone.outbound.explain(src, dst, port)
            )
        if not dst_zone.inbound.permits(src, dst, port):
            raise FirewallBlockedError(
                f"{src} -> {dst}:{port} blocked by zone {dst_zone.name!r} inbound: "
                + dst_zone.inbound.explain(src, dst, port)
            )

    def latency(self, src: str, dst: str) -> float:
        """One-way latency between two hosts, in seconds."""
        if src == dst:
            return 0.0
        total = self._link_latency
        src_zone = self.zone_of(src)
        dst_zone = self.zone_of(dst)
        if src_zone.name != dst_zone.name:
            total += src_zone.boundary_latency + dst_zone.boundary_latency
        return total

    def reachability_matrix(self, port: int) -> dict[tuple[str, str], bool]:
        """Full (src, dst) -> permitted map for one port.

        The Figure-1 bench prints this matrix to show the blocked direct
        RT-to-front-end path and the allowed proxied path.
        """
        hosts = self.hosts()
        return {
            (s, d): self.permits(s, d, port) for s in hosts for d in hosts if s != d
        }


def flat_network(hostnames: list[str]) -> Network:
    """Convenience: one open zone containing all hosts (no firewalls)."""
    net = Network()
    net.add_zone("lan")
    for h in hostnames:
        net.add_host(h, "lan")
    return net
