"""Exporters: JSON-lines (flight recorder) and Chrome ``trace_event`` (spans).

The Chrome format is the ``about:tracing`` / Perfetto JSON: one
``traceEvents`` array of complete (``"X"``) slices — one per finished
span, grouped into a process row per actor — plus ``process_name``
metadata and flow events (``s``/``t``/``f``) threading the spans of each
trace together so the cross-daemon causality of a single ``tdp_put``
renders as arrows from the client through the server to every
notification delivery.

Timestamps are microseconds on the in-process ``perf_counter`` timebase
(Chrome only cares that they are mutually consistent).
"""

from __future__ import annotations

import json
from typing import Any, Iterable

from repro.obs import metrics as _metrics
from repro.obs import trace as _trace
# Import the accessor from the submodule directly: the package re-exports
# a function named ``recorder``, which shadows the submodule attribute.
from repro.obs.recorder import recorder as _flight_recorder


def spans_to_chrome(span_list: Iterable[Any]) -> list[dict[str, Any]]:
    """Render spans as Chrome ``trace_event`` records.

    Returns the ``traceEvents`` array: metadata naming one process row
    per actor, an ``X`` slice per span (args carry trace/span/parent
    ids), and per-trace flow events so multi-actor traces draw linked.
    """
    spans = sorted(span_list, key=lambda s: (s.start, s.span_id))
    pids: dict[str, int] = {}
    events: list[dict[str, Any]] = []
    for s in spans:
        actor = s.actor or "process"
        if actor not in pids:
            pids[actor] = len(pids) + 1
            events.append({
                "ph": "M", "name": "process_name", "pid": pids[actor],
                "args": {"name": actor},
            })
    by_trace: dict[str, list[Any]] = {}
    for s in spans:
        by_trace.setdefault(s.trace_id, []).append(s)
    for s in spans:
        pid = pids[s.actor or "process"]
        events.append({
            "ph": "X",
            "name": s.name,
            "cat": "tdp",
            "pid": pid,
            "tid": s.thread_id,
            "ts": round(s.start * 1e6, 3),
            "dur": round(s.duration * 1e6, 3),
            "args": {
                "trace": s.trace_id,
                "span": s.span_id,
                "parent": s.parent_id,
                **s.tags,
            },
        })
    for trace_id, members in by_trace.items():
        if len(members) < 2:
            continue
        for i, s in enumerate(members):
            if i == 0:
                ph = "s"
            elif i == len(members) - 1:
                ph = "f"
            else:
                ph = "t"
            flow: dict[str, Any] = {
                "ph": ph,
                "cat": "tdp.flow",
                "name": "trace",
                "id": trace_id,
                "pid": pids[s.actor or "process"],
                "tid": s.thread_id,
                "ts": round(s.start * 1e6, 3),
            }
            if ph == "f":
                flow["bp"] = "e"  # bind to the enclosing slice
            events.append(flow)
    return events


def chrome_trace_document(span_list: Iterable[Any] | None = None) -> dict[str, Any]:
    """The full Chrome trace JSON document for ``span_list`` (default:
    every span in the store)."""
    spans = list(span_list) if span_list is not None else _trace.spans()
    return {
        "traceEvents": spans_to_chrome(spans),
        "displayTimeUnit": "ms",
        "metadata": {"producer": "repro.obs"},
    }


def write_chrome_trace(path: str, span_list: Iterable[Any] | None = None) -> int:
    """Write the Chrome trace JSON to ``path``; returns the span count."""
    doc = chrome_trace_document(span_list)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=1)
        fh.write("\n")
    return sum(1 for e in doc["traceEvents"] if e.get("ph") == "X")


def events_to_jsonl(events: Iterable[Any] | None = None) -> list[str]:
    """Flight-recorder events as JSON-lines strings (default: whole ring)."""
    evs = list(events) if events is not None else _flight_recorder().events()
    return [json.dumps(e.to_dict(), separators=(",", ":"), default=str) for e in evs]


def write_jsonl(path: str, events: Iterable[Any] | None = None) -> int:
    """Write flight-recorder events as JSON-lines; returns the line count."""
    lines = events_to_jsonl(events)
    with open(path, "w", encoding="utf-8") as fh:
        for line in lines:
            fh.write(line)
            fh.write("\n")
    return len(lines)


def metrics_report() -> dict[str, dict[str, Any]]:
    """Snapshot of every live registry, keyed by registry name."""
    report: dict[str, dict[str, Any]] = {}
    for reg in _metrics.all_registries():
        snap = reg.snapshot()
        if snap:
            report[reg.name] = snap
    return report
