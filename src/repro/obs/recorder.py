"""The flight recorder: a bounded ring of structured events per process.

Every daemon records milestones (session lost/reestablished, lease
expiry, fault injections with their plan seed + site, sim process exits,
finished spans) into one process-global ring.  The ring is fixed-size —
recording never grows memory without bound — and cheap to keep on in
long runs, which is the point: when a test fails or a chaos run goes
sideways, the last few thousand events are already in memory.

Consumers: the pytest failure hook (``tests/conftest.py``) attaches the
tail of the ring to failed-test reports; ``python -m repro obs dump``
prints it; :mod:`repro.obs.export` writes it as JSON-lines.

Recording is a no-op while obs is disabled (:mod:`repro.obs.state`).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any

from repro.obs import state
from repro.util.sync import tracked_lock

#: Default ring capacity (events retained per process).
RING_CAPACITY = 4096


@dataclass(frozen=True)
class FlightEvent:
    """One recorded event: ring-global seq, monotonic timestamp, payload."""

    seq: int
    ts: float
    kind: str
    actor: str
    fields: dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        return {
            "seq": self.seq,
            "ts": round(self.ts, 9),
            "kind": self.kind,
            "actor": self.actor,
            **self.fields,
        }

    def __str__(self) -> str:
        det = " ".join(f"{k}={v}" for k, v in self.fields.items())
        return f"[{self.seq:5d}] {self.ts:14.6f} {self.actor:<18} {self.kind:<26} {det}"


class FlightRecorder:
    """Thread-safe fixed-size ring of :class:`FlightEvent`."""

    def __init__(self, capacity: int = RING_CAPACITY):
        import collections

        self.capacity = capacity
        self._ring: "Any" = collections.deque(maxlen=capacity)
        self._seq = 0
        self._lock = tracked_lock("obs.recorder.FlightRecorder._lock")

    def record(self, kind: str, actor: str = "", **fields: Any) -> FlightEvent | None:
        """Append one event; returns it, or ``None`` while obs is off."""
        if not state.enabled():
            return None
        with self._lock:
            self._seq += 1
            ev = FlightEvent(
                seq=self._seq, ts=time.monotonic(), kind=kind, actor=actor,
                fields=fields,
            )
            self._ring.append(ev)
            return ev

    def events(self, kind: str | None = None, actor: str | None = None) -> list[FlightEvent]:
        with self._lock:
            snapshot = list(self._ring)
        return [
            e for e in snapshot
            if (kind is None or e.kind == kind) and (actor is None or e.actor == actor)
        ]

    def tail(self, n: int) -> list[FlightEvent]:
        with self._lock:
            snapshot = list(self._ring)
        return snapshot[-n:]

    def clear(self) -> None:
        with self._lock:
            self._ring.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._ring)


_RECORDER = FlightRecorder()


def recorder() -> FlightRecorder:
    """The process-global flight recorder."""
    return _RECORDER


def record(kind: str, actor: str = "", **fields: Any) -> FlightEvent | None:
    """Record into the process-global ring (no-op while obs is off)."""
    return _RECORDER.record(kind, actor=actor, **fields)
