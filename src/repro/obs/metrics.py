"""Metrics registry: counters, gauges, and bounded histograms.

Metric objects are obtained get-or-create from a :class:`MetricsRegistry`
— never constructed directly by daemon code (the ``ad-hoc-counter`` lint
rule enforces this).  Names are dotted lowercase (``attrspace.puts``,
``transport.tcp.bytes``); the registry rejects re-registration of a name
under a different metric type.

Two usage patterns:

* the module-level default registry (:func:`registry`) for process-wide
  series — transport frame counts, client RPC latency histograms;
* per-instance registries (``MetricsRegistry(name)``) for per-daemon
  series — each attrspace server owns one, so two LASSes on one host
  never share a counter and tests see exact per-server counts.

:class:`Counter` matches the ``increment``/``value`` surface of
``repro.util.sync.AtomicCounter``, so migrated stats tables keep their
call sites.  Counters and gauges are live regardless of ``TDP_OBS``
(one integer op); histograms sample only when obs is enabled, keeping
the disabled path allocation-free.
"""

from __future__ import annotations

import collections
import weakref
from typing import Any, Union

from repro.obs import state
from repro.util.sync import tracked_lock

#: Metric names are dotted lowercase words, e.g. ``attrspace.client.rpc.put``.
NAME_CHARS = "abcdefghijklmnopqrstuvwxyz0123456789_."

#: Default bound on histogram sample retention (a sliding reservoir).
HISTOGRAM_MAXLEN = 2048


class Counter:
    """Monotonic counter; same surface as ``AtomicCounter`` plus a name."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str):
        self.name = name
        self._value = 0
        self._lock = tracked_lock("obs.metrics.Counter._lock")

    def increment(self, delta: int = 1) -> int:
        with self._lock:
            self._value += delta
            return self._value

    @property
    def value(self) -> int:
        with self._lock:
            return self._value

    def __repr__(self) -> str:
        return f"<Counter {self.name}={self.value}>"


class Gauge:
    """Last-write-wins instantaneous value (queue depths, open connections)."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str):
        self.name = name
        self._value = 0.0
        self._lock = tracked_lock("obs.metrics.Gauge._lock")

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def add(self, delta: float) -> float:
        with self._lock:
            self._value += delta
            return self._value

    @property
    def value(self) -> float:
        with self._lock:
            return self._value

    def __repr__(self) -> str:
        return f"<Gauge {self.name}={self.value}>"


class Histogram:
    """Bounded sliding-reservoir histogram with exact running aggregates.

    ``observe`` is a no-op while obs is disabled — the reservoir deque is
    pre-allocated at registration, so the disabled path allocates
    nothing.  Percentiles are computed over the retained reservoir (the
    most recent ``maxlen`` samples); count/sum/min/max cover every sample
    ever observed.
    """

    __slots__ = ("name", "_samples", "_count", "_sum", "_min", "_max", "_lock")

    def __init__(self, name: str, maxlen: int = HISTOGRAM_MAXLEN):
        self.name = name
        self._samples: collections.deque[float] = collections.deque(maxlen=maxlen)
        self._count = 0
        self._sum = 0.0
        self._min: float | None = None
        self._max: float | None = None
        self._lock = tracked_lock("obs.metrics.Histogram._lock")

    def observe(self, value: float) -> None:
        if not state.enabled():
            return
        value = float(value)
        with self._lock:
            self._samples.append(value)
            self._count += 1
            self._sum += value
            if self._min is None or value < self._min:
                self._min = value
            if self._max is None or value > self._max:
                self._max = value

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    def percentile(self, p: float) -> float | None:
        """The ``p``-th percentile (0..100) of the retained reservoir."""
        with self._lock:
            data = sorted(self._samples)
        if not data:
            return None
        if len(data) == 1:
            return data[0]
        rank = (p / 100.0) * (len(data) - 1)
        lo = int(rank)
        hi = min(lo + 1, len(data) - 1)
        frac = rank - lo
        return data[lo] * (1.0 - frac) + data[hi] * frac

    def summary(self) -> dict[str, Any]:
        """Aggregates + the p50/p95/p99 the perf trajectory reports."""
        with self._lock:
            count, total = self._count, self._sum
            lo, hi = self._min, self._max
        return {
            "count": count,
            "sum": total,
            "min": lo,
            "max": hi,
            "p50": self.percentile(50.0),
            "p95": self.percentile(95.0),
            "p99": self.percentile(99.0),
        }

    def __repr__(self) -> str:
        return f"<Histogram {self.name} n={self.count}>"


Metric = Union[Counter, Gauge, Histogram]

#: Live registries, for ``obs dump`` and exporters.  Appends are
#: GIL-atomic; iteration snapshots the list, skipping collected entries.
_REGISTRIES: list["weakref.ref[MetricsRegistry]"] = []


class MetricsRegistry:
    """A named get-or-create table of metrics."""

    def __init__(self, name: str = "process"):
        self.name = name
        self._metrics: dict[str, Metric] = {}
        self._lock = tracked_lock("obs.metrics.MetricsRegistry._lock")
        _REGISTRIES.append(weakref.ref(self))

    def _get(self, name: str, cls: type, **kwargs: Any) -> Any:
        if not name or any(c not in NAME_CHARS for c in name):
            raise ValueError(
                f"bad metric name {name!r}: metric names are dotted lowercase "
                f"words ([a-z0-9_.])"
            )
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = cls(name, **kwargs)
                self._metrics[name] = metric
            elif type(metric) is not cls:
                raise ValueError(
                    f"metric {name!r} already registered as "
                    f"{type(metric).__name__}, requested {cls.__name__}"
                )
            return metric

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def histogram(self, name: str, maxlen: int = HISTOGRAM_MAXLEN) -> Histogram:
        return self._get(name, Histogram, maxlen=maxlen)

    def metrics(self) -> list[Metric]:
        with self._lock:
            return [self._metrics[k] for k in sorted(self._metrics)]

    def snapshot(self) -> dict[str, Any]:
        """Plain-value view: counters/gauges as numbers, histograms as
        their :meth:`Histogram.summary` dict.  Metric locks are taken
        one at a time, after the table lock is released."""
        out: dict[str, Any] = {}
        for metric in self.metrics():
            if isinstance(metric, Histogram):
                out[metric.name] = metric.summary()
            else:
                out[metric.name] = metric.value
        return out

    def clear(self) -> None:
        """Drop every metric (test/bench isolation)."""
        with self._lock:
            self._metrics.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._metrics)

    def __repr__(self) -> str:
        return f"<MetricsRegistry {self.name} ({len(self)} metrics)>"


_DEFAULT = MetricsRegistry("process")


def registry() -> MetricsRegistry:
    """The process-wide default registry."""
    return _DEFAULT


def all_registries() -> list[MetricsRegistry]:
    """Every live registry (default first), for dumps and exporters."""
    seen: list[MetricsRegistry] = []
    for ref in list(_REGISTRIES):
        reg = ref()
        if reg is not None and reg not in seen:
            seen.append(reg)
    return seen
