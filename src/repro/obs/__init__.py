"""repro.obs — unified observability for every TDP daemon.

Three instruments behind one master switch (``TDP_OBS=1``, or
:func:`set_enabled` at runtime):

* **trace contexts** (:mod:`repro.obs.trace`) — ``(trace_id, span_id)``
  pairs allocated at each ``tdp_*`` entry point and piggybacked on
  attribute-space protocol frames, so one ``tdp_put`` is causally linked
  from the client through CASS/LASS handling to every notification
  delivery, across reconnect replays included;
* **metrics** (:mod:`repro.obs.metrics`) — counters, gauges, and bounded
  histograms (p50/p95/p99) in per-process and per-daemon registries;
* **flight recorder** (:mod:`repro.obs.recorder`) — a fixed-size ring of
  structured events dumped on test failure and by
  ``python -m repro obs dump``.

Exporters (:mod:`repro.obs.export`) write JSON-lines and Chrome
``trace_event`` JSON (opens in ``about:tracing`` / Perfetto).

The disabled path is the design constraint: with ``TDP_OBS`` unset,
spans are a shared no-op singleton, histogram/recorder calls return
before touching any lock, and no per-call object is allocated — only
plain counters (daemon statistics with a testable contract) stay live.
"""

from repro.obs.state import ENV_VAR, enabled, set_enabled
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    all_registries,
    registry,
)
from repro.obs.trace import (
    NULL_SPAN,
    Span,
    SpanStore,
    TraceContext,
    WIRE_KEY,
    activate,
    current,
    extract,
    inject,
    span,
    spans,
    store,
)
from repro.obs.recorder import FlightEvent, FlightRecorder, record, recorder
from repro.obs import export

__all__ = [
    "ENV_VAR",
    "enabled",
    "set_enabled",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "all_registries",
    "registry",
    "NULL_SPAN",
    "Span",
    "SpanStore",
    "TraceContext",
    "WIRE_KEY",
    "activate",
    "current",
    "extract",
    "inject",
    "span",
    "spans",
    "store",
    "FlightEvent",
    "FlightRecorder",
    "record",
    "recorder",
    "export",
    "reset",
]


def reset() -> None:
    """Clear process-global obs state: default-registry metrics, the span
    store, and the flight recorder (test/bench isolation).  Per-instance
    registries are untouched — they die with their owners."""
    registry().clear()
    store().clear()
    recorder().clear()
