"""The observability master switch (``TDP_OBS``).

Mirrors the sanitizer's activation pattern (``repro.util.sync``): the
environment variable is read once at import, and tests/CLI code may flip
the flag at runtime with :func:`set_enabled`.  Every expensive obs path
— span allocation, histogram sampling, flight-recorder appends, wire
field injection — checks :func:`enabled` first, so with ``TDP_OBS``
unset the whole subsystem costs one bool test and allocates nothing.

Counters are the deliberate exception: they stay live even when obs is
disabled, because daemon statistics (the attrspace server's ``stats``,
fault-injection counts) are part of the testable contract and cost a
single integer add.
"""

from __future__ import annotations

import os

#: Environment variable that turns observability on (any value but ""/"0").
ENV_VAR = "TDP_OBS"

_enabled = os.environ.get(ENV_VAR, "") not in ("", "0")


def enabled() -> bool:
    """Is observability collection active (``TDP_OBS=1``)?"""
    return _enabled


def set_enabled(flag: bool) -> None:
    """Toggle collection at runtime (tests, the ``obs`` CLI command)."""
    global _enabled
    _enabled = bool(flag)
