"""Wire-propagated trace contexts and spans.

A **span** is one timed operation on one daemon; a **trace** is the tree
of spans hanging off one ``tdp_*`` entry point.  The context — a
``(trace_id, span_id)`` pair — travels between daemons as an ``"obs"``
field piggybacked on attribute-space protocol frames (see
``repro.attrspace.protocol.OBS_FIELD``), so a single client ``tdp_put``
can be followed through the server's put handling into every
notification delivery it triggers, and across reconnect replays (the
client registers frames with the field already injected, so a replayed
request carries its original context).

Propagation surface:

* :func:`span` — open a span; parent is the thread's current context.
  Returns a shared no-op singleton while obs is disabled, so the
  disabled path allocates nothing.
* :func:`inject` / :func:`extract` — write/read the wire field.
* :func:`activate` — install a received context as the thread's current
  parent (server dispatch, notification callbacks).

Finished spans land in a bounded in-process store (:func:`spans`) that
the Chrome ``trace_event`` exporter reads.
"""

from __future__ import annotations

import contextlib
import itertools
import threading
import time
from dataclasses import dataclass
from typing import Any, Iterator

from repro.obs import state
from repro.obs.recorder import record
from repro.util.sync import tracked_lock

#: Key under which the context rides on protocol frames.
WIRE_KEY = "obs"

#: Bound on retained finished spans (a ring; oldest evicted first).
SPAN_STORE_LIMIT = 8192

_ids = itertools.count(1)  # .__next__ is GIL-atomic


@dataclass(frozen=True)
class TraceContext:
    """The propagated identity of one point in one trace."""

    trace_id: str
    span_id: int

    def to_wire(self) -> dict[str, Any]:
        return {"t": self.trace_id, "s": self.span_id}

    @staticmethod
    def from_wire(obj: Any) -> "TraceContext | None":
        if not isinstance(obj, dict):
            return None
        trace_id, span_id = obj.get("t"), obj.get("s")
        if isinstance(trace_id, str) and isinstance(span_id, int):
            return TraceContext(trace_id, span_id)
        return None


class _Ambient(threading.local):
    """Per-thread stack of active contexts (spans and activations)."""

    def __init__(self) -> None:
        self.stack: list[TraceContext] = []


_ambient = _Ambient()


def current() -> TraceContext | None:
    """The calling thread's innermost active context, if any."""
    stack = _ambient.stack
    return stack[-1] if stack else None


def _push(ctx: TraceContext) -> None:
    _ambient.stack.append(ctx)


def _pop(ctx: TraceContext) -> None:
    # Tolerant removal: a mid-run disable/enable flip may unbalance the
    # stack; never let that corrupt unrelated frames.
    stack = _ambient.stack
    for i in range(len(stack) - 1, -1, -1):
        if stack[i] is ctx or stack[i] == ctx:
            del stack[i]
            return


class Span:
    """One timed operation; use as a context manager.

    Timestamps are ``time.perf_counter()`` seconds (one consistent
    in-process timebase for the exporters).  On exit the span is stored
    and mirrored into the flight recorder as a ``span`` event.
    """

    __slots__ = (
        "name", "actor", "trace_id", "span_id", "parent_id",
        "tags", "start", "end", "thread_id",
    )

    def __init__(self, name: str, actor: str, parent: TraceContext | None,
                 tags: dict[str, Any]):
        self.name = name
        self.actor = actor
        if parent is None:
            self.trace_id = f"t{next(_ids):06x}"
            self.parent_id = None
        else:
            self.trace_id = parent.trace_id
            self.parent_id = parent.span_id
        self.span_id = next(_ids)
        self.tags = tags
        self.start = 0.0
        self.end = 0.0
        self.thread_id = threading.get_ident()

    @property
    def context(self) -> TraceContext:
        return TraceContext(self.trace_id, self.span_id)

    def set_tag(self, key: str, value: Any) -> None:
        self.tags[key] = value

    @property
    def duration(self) -> float:
        return max(0.0, self.end - self.start)

    def __enter__(self) -> "Span":
        self.start = time.perf_counter()
        _push(self.context)
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.end = time.perf_counter()
        if exc_type is not None:
            self.tags["error"] = exc_type.__name__
        _pop(self.context)
        _STORE.add(self)
        record(
            "span", actor=self.actor, name=self.name, trace=self.trace_id,
            span=self.span_id, parent=self.parent_id,
            duration=round(self.duration, 9), **self.tags,
        )

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "actor": self.actor,
            "trace": self.trace_id,
            "span": self.span_id,
            "parent": self.parent_id,
            "start": self.start,
            "end": self.end,
            "thread": self.thread_id,
            "tags": dict(self.tags),
        }

    def __repr__(self) -> str:
        return (
            f"<Span {self.name} actor={self.actor} trace={self.trace_id} "
            f"span={self.span_id} parent={self.parent_id}>"
        )


class _NullSpan:
    """The disabled-path span: one shared instance, every method a no-op."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc: object) -> None:
        return None

    def set_tag(self, key: str, value: Any) -> None:
        return None


NULL_SPAN = _NullSpan()


def span(name: str, actor: str = "", **tags: Any) -> "Span | _NullSpan":
    """Open a span named ``name`` under the thread's current context.

    With obs disabled this returns the shared :data:`NULL_SPAN` —
    nothing is allocated and nothing is recorded.
    """
    if not state.enabled():
        return NULL_SPAN
    return Span(name, actor, current(), tags)


@contextlib.contextmanager
def activate(ctx: TraceContext | None) -> Iterator[None]:
    """Install ``ctx`` as the thread's parent context for the body.

    ``None`` (no context on the wire, or obs disabled) yields without
    touching the stack, so call sites need no conditional.
    """
    if ctx is None or not state.enabled():
        yield
        return
    _push(ctx)
    try:
        yield
    finally:
        _pop(ctx)


def inject(frame: dict[str, Any]) -> dict[str, Any]:
    """Stamp the current context onto a wire frame (mutates + returns it)."""
    ctx = current()
    if ctx is not None:
        frame[WIRE_KEY] = ctx.to_wire()
    return frame


def extract(frame: dict[str, Any]) -> TraceContext | None:
    """Read a propagated context off a wire frame, if present and valid."""
    return TraceContext.from_wire(frame.get(WIRE_KEY))


class SpanStore:
    """Bounded ring of finished spans (process-global singleton)."""

    def __init__(self, limit: int = SPAN_STORE_LIMIT):
        import collections

        self._spans: "Any" = collections.deque(maxlen=limit)
        self._lock = tracked_lock("obs.trace.SpanStore._lock")

    def add(self, span_obj: Span) -> None:
        with self._lock:
            self._spans.append(span_obj)

    def spans(self, trace_id: str | None = None, name: str | None = None) -> list[Span]:
        with self._lock:
            snapshot = list(self._spans)
        return [
            s for s in snapshot
            if (trace_id is None or s.trace_id == trace_id)
            and (name is None or s.name == name)
        ]

    def clear(self) -> None:
        with self._lock:
            self._spans.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._spans)


_STORE = SpanStore()


def store() -> SpanStore:
    return _STORE


def spans(trace_id: str | None = None, name: str | None = None) -> list[Span]:
    """Finished spans, optionally filtered by trace id and/or name."""
    return _STORE.spans(trace_id=trace_id, name=name)
