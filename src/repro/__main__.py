"""Command-line entry point: ``python -m repro <command>``.

Small operational surface for exploring the reproduction without
writing code:

* ``quickstart`` — run the monitored-job pilot and print the trace;
* ``fig3`` — print both Figure 3 call sequences from live runs;
* ``consultant`` — run the Performance Consultant on the planted
  bottleneck workload;
* ``info`` — version, registered executables, standard attributes;
* ``lint`` — AST linter for TDP invariants (``lint --list-rules``);
* ``protocol dump|check`` — regenerate / verify the committed wire
  schema lock file (``protocol.lock.json``);
* ``guards dump|check`` — regenerate / verify the committed guarded-by
  manifest (``guards.lock.json``);
* ``obs dump`` — print the flight recorder + metrics, export traces
  (``TDP_OBS=1`` enables recording; ``--run-pilot`` generates a run).
"""

from __future__ import annotations

import argparse
import sys


def cmd_quickstart(_args: argparse.Namespace) -> int:
    from repro.parador.run import ParadorScenario

    with ParadorScenario(execute_hosts=["node1"]) as scenario:
        run = scenario.submit_monitored("foo", "5 0.1")
        status = run.job.wait_terminal(timeout=60.0)
        run.session.wait_state("exited", timeout=30.0)
        print(f"job {run.job.job_id}: {status.value} (exit {run.job.exit_code})")
        print(f"tool observed {run.session.latest('proc_cpu'):.4f}s of app CPU")
        print()
        for event in scenario.trace.events():
            if event.actor in ("starter", "paradynd"):
                print(f"  {event}")
    return 0


def cmd_fig3(_args: argparse.Namespace) -> int:
    from repro.attrspace.server import AttributeSpaceServer, ServerRole
    from repro.sim.cluster import SimCluster
    from repro.util.log import TraceRecorder

    # Reuse the bench's sequence drivers (they live in benchmarks/, which
    # is not a package; inline minimal versions here instead).
    from repro.tdp.api import (
        tdp_attach, tdp_continue_process, tdp_create_process, tdp_exit,
        tdp_get, tdp_init, tdp_kill, tdp_put, tdp_wait_exit,
    )
    from repro.tdp.handle import Role
    from repro.tdp.process import SimHostBackend
    from repro.tdp.wellknown import Attr, CreateMode

    with SimCluster.flat(["node1"]) as cluster:
        lass = AttributeSpaceServer(cluster.transport, "node1", role=ServerRole.LASS)
        for mode, executable in (("create", "hello"), ("attach", "server_loop")):
            trace = TraceRecorder(clock=cluster.clock)
            context = f"fig3-{mode}"
            rm = tdp_init(cluster.transport, lass.endpoint, member="RM",
                          role=Role.RM, context=context,
                          backend=SimHostBackend(cluster.host("node1")))
            rm.control.serve_tool_requests()
            rm.start_service_loop()
            trace.record("RM", "tdp_init")
            create_mode = CreateMode.PAUSED if mode == "create" else CreateMode.RUN
            info = tdp_create_process(rm, executable, mode=create_mode)
            trace.record("RM", "tdp_create_process", target="AP",
                         mode=create_mode.value)
            tdp_put(rm, Attr.PID, str(info.pid))
            rt = tdp_init(cluster.transport, lass.endpoint, member="RT",
                          role=Role.RT, context=context, src_host="node1")
            trace.record("RT", "tdp_init")
            pid = int(tdp_get(rt, Attr.PID, timeout=10.0))
            tdp_attach(rt, pid)
            trace.record("RT", "tdp_attach", pid=pid)
            tdp_continue_process(rt, pid)
            trace.record("RT", "tdp_continue_process", pid=pid)
            if mode == "create":
                tdp_wait_exit(rt, pid, timeout=10.0)
            else:
                tdp_kill(rt, pid)
            rm.stop_service_loop()
            tdp_exit(rt)
            tdp_exit(rm)
            print(trace.format(f"Figure 3{'A' if mode == 'create' else 'B'} "
                               f"({mode} mode)"))
            print()
        lass.stop()
    return 0


def cmd_consultant(_args: argparse.Namespace) -> int:
    from repro.paradyn.consultant import PerformanceConsultant
    from repro.parador.run import ParadorScenario

    with ParadorScenario(execute_hosts=["node1"], auto_run=False) as scenario:
        run = scenario.submit_monitored("foo", "10 0.1")
        run.session.wait_state("at_main", timeout=30.0)
        result = PerformanceConsultant(run.session).search()
        run.job.wait_terminal(timeout=60.0)
        print(result.format())
    return 0


def cmd_lint(args: argparse.Namespace) -> int:
    from repro.analysis.cli import main as lint_main

    return lint_main(args.lint_args)


def _default_lock_path():
    """``protocol.lock.json`` at the repo root (two levels above ``repro``)."""
    from pathlib import Path

    from repro.analysis import wireschema

    src_root = Path(__file__).resolve().parents[1]
    return src_root.parent / wireschema.LOCK_FILENAME


def cmd_protocol(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.analysis import wireschema

    lock_path = Path(args.lock) if args.lock else _default_lock_path()
    schema = wireschema.infer_from_tree()
    current = wireschema.to_lock(schema)
    if args.protocol_command == "dump":
        lock_path.write_text(wireschema.render_lock(current), encoding="utf-8")
        print(f"wrote {lock_path} ({len(schema.ops)} ops, "
              f"{len(schema.sub_ops)} batch sub-ops)")
        return 0
    # check
    if not lock_path.exists():
        print(f"missing lock file: {lock_path} "
              "(run `python -m repro protocol dump`)", file=sys.stderr)
        return 1
    committed = wireschema.load_lock(lock_path)
    drift = wireschema.lock_drift(committed, current)
    if drift:
        print(f"wire schema drift against {lock_path}:", file=sys.stderr)
        for line in drift:
            print(f"  {line}", file=sys.stderr)
        print("run `python -m repro protocol dump` and review the diff",
              file=sys.stderr)
        return 1
    print(f"{lock_path} matches the source tree "
          f"({len(schema.ops)} ops, {len(schema.sub_ops)} batch sub-ops)")
    return 0


def _guards_lock_path():
    """``guards.lock.json`` at the repo root (two levels above ``repro``)."""
    from pathlib import Path

    from repro.analysis import guards

    src_root = Path(__file__).resolve().parents[1]
    return src_root.parent / guards.LOCK_FILENAME


def cmd_guards(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.analysis import guards

    lock_path = Path(args.lock) if args.lock else _guards_lock_path()
    report = guards.infer_from_tree()
    current = guards.to_lock(report)
    witnessed = sum(1 for f in current["fields"].values() if f["witness"])
    summary = (
        f"{len(current['fields'])} guarded fields, {witnessed} witnessed, "
        f"{len(current['waivers'])} waivers"
    )
    if args.guards_command == "dump":
        lock_path.write_text(guards.render_lock(current), encoding="utf-8")
        print(f"wrote {lock_path} ({summary})")
        return 0
    # check
    if not lock_path.exists():
        print(f"missing lock file: {lock_path} "
              "(run `python -m repro guards dump`)", file=sys.stderr)
        return 1
    committed = guards.load_lock(lock_path)
    drift = guards.lock_drift(committed, current)
    if drift:
        print(f"guard manifest drift against {lock_path}:", file=sys.stderr)
        for line in drift:
            print(f"  {line}", file=sys.stderr)
        print("run `python -m repro guards dump` and review the diff",
              file=sys.stderr)
        return 1
    print(f"{lock_path} matches the source tree ({summary})")
    return 0


def cmd_obs_dump(args: argparse.Namespace) -> int:
    from repro import obs

    if args.run_pilot:
        # Generate something to dump: run the monitored-job pilot with
        # observability forced on in this process.
        obs.set_enabled(True)
        from repro.parador.run import ParadorScenario

        with ParadorScenario(execute_hosts=["node1"]) as scenario:
            run = scenario.submit_monitored("foo", "5 0.1")
            run.job.wait_terminal(timeout=60.0)
            run.session.wait_state("exited", timeout=30.0)
    if not obs.enabled():
        print("observability is off — set TDP_OBS=1 (or pass --run-pilot)")
    for event in obs.recorder().tail(args.limit):
        print(event)
    print(f"\n{len(obs.recorder())} events in the ring, "
          f"{len(obs.store())} spans retained")
    report = obs.export.metrics_report()
    for reg_name in sorted(report):
        print(f"\nmetrics [{reg_name}]")
        for name, value in sorted(report[reg_name].items()):
            print(f"  {name} = {value}")
    if args.chrome:
        n = obs.export.write_chrome_trace(args.chrome)
        print(f"\nwrote {n} span slices to {args.chrome} "
              "(open in about:tracing or Perfetto)")
    if args.jsonl:
        n = obs.export.write_jsonl(args.jsonl)
        print(f"wrote {n} JSON-lines events to {args.jsonl}")
    return 0


def cmd_info(_args: argparse.Namespace) -> int:
    import repro
    from repro.sim.loader import default_registry
    from repro.tdp.wellknown import Attr

    print(f"repro {repro.__version__} — TDP (SC 2003) reproduction")
    print(f"\nregistered executables: {', '.join(default_registry().names())}")
    print("\nstandard attributes:")
    for name in (Attr.PID, Attr.EXECUTABLE_NAME, Attr.APP_HOST, Attr.APP_ARGS,
                 Attr.RT_FRONTEND, Attr.RM_PROXY, Attr.STDIO_ENDPOINT):
        print(f"  {name}")
    print("\nsee README.md for the full tour; DESIGN.md for the paper mapping")
    return 0


def main(argv: list[str] | None = None) -> int:
    # `lint` forwards its whole argv to the linter's own parser; route it
    # before argparse, which would otherwise claim leading options like
    # `lint --list-rules` for the top-level parser.
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "lint":
        from repro.analysis.cli import main as lint_main

        return lint_main(argv[1:])

    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="TDP (SC 2003) reproduction — exploration commands",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("quickstart", help="run the monitored-job pilot").set_defaults(
        func=cmd_quickstart
    )
    sub.add_parser("fig3", help="print both Figure 3 call sequences").set_defaults(
        func=cmd_fig3
    )
    sub.add_parser("consultant", help="run the bottleneck search").set_defaults(
        func=cmd_consultant
    )
    sub.add_parser("info", help="version and registries").set_defaults(func=cmd_info)
    obs_parser = sub.add_parser(
        "obs", help="observability: flight recorder, metrics, trace export"
    )
    obs_sub = obs_parser.add_subparsers(dest="obs_command", required=True)
    dump = obs_sub.add_parser(
        "dump", help="print the event ring and metrics; optionally export"
    )
    dump.add_argument("--limit", type=int, default=50,
                      help="ring tail length to print (default 50)")
    dump.add_argument("--chrome", metavar="PATH",
                      help="write spans as Chrome trace_event JSON")
    dump.add_argument("--jsonl", metavar="PATH",
                      help="write flight-recorder events as JSON lines")
    dump.add_argument("--run-pilot", action="store_true",
                      help="run the monitored-job pilot first, obs enabled")
    dump.set_defaults(func=cmd_obs_dump)
    proto = sub.add_parser(
        "protocol", help="wire schema lock file: regenerate or verify"
    )
    proto_sub = proto.add_subparsers(dest="protocol_command", required=True)
    for name, help_text in (
        ("dump", "re-infer the wire schema and rewrite protocol.lock.json"),
        ("check", "verify protocol.lock.json matches the source tree"),
    ):
        p = proto_sub.add_parser(name, help=help_text)
        p.add_argument("--lock", metavar="PATH",
                       help="lock file location (default: repo root)")
        p.set_defaults(func=cmd_protocol)
    guards_parser = sub.add_parser(
        "guards", help="guarded-by manifest: regenerate or verify"
    )
    guards_sub = guards_parser.add_subparsers(dest="guards_command", required=True)
    for name, help_text in (
        ("dump", "re-infer field guards and rewrite guards.lock.json"),
        ("check", "verify guards.lock.json matches the source tree"),
    ):
        p = guards_sub.add_parser(name, help=help_text)
        p.add_argument("--lock", metavar="PATH",
                       help="lock file location (default: repo root)")
        p.set_defaults(func=cmd_guards)
    lint = sub.add_parser(
        "lint",
        help="run the TDP invariant linter (see `lint --help`)",
        add_help=False,
    )
    lint.add_argument("lint_args", nargs=argparse.REMAINDER)
    lint.set_defaults(func=cmd_lint)
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
