"""Clock abstraction: wall time for real backends, virtual time for the sim.

The simulated cluster charges virtual CPU cost for each program operation
(see :mod:`repro.sim.kernel`), so performance experiments (Paradyn metrics,
bottleneck search) are deterministic.  Real-process backends and transport
latency measurements use wall time.  Code that needs "a clock" takes a
:class:`Clock` so either can be injected.

Deferred callbacks go through the same abstraction: :meth:`Clock.call_later`
arms a one-shot timer on the clock's own timebase.  On a
:class:`WallClock` that is a real ``threading.Timer`` (this module is the
one sanctioned site for it — see the ``raw-timer`` lint rule); on a
:class:`VirtualClock` the timer fires when :meth:`~VirtualClock.advance`
moves virtual time past the deadline, so a scenario-clock run cannot
have wall-time timeouts firing under it.  Either way the callback runs
on a dedicated timer thread with no locks held.
"""

from __future__ import annotations

import heapq
import itertools
import threading
import time
from abc import ABC, abstractmethod

from repro.util.sync import tracked_condition


class TimerHandle:
    """Cancellation handle for one :meth:`Clock.call_later` registration.

    ``cancel()`` is idempotent and returns True when it prevented the
    callback from running (best-effort: a callback already started on
    the timer thread cannot be recalled).
    """

    def __init__(self, cancel_fn) -> None:
        self._cancel_fn = cancel_fn
        # tdp-guard: _cancelled -> volatile
        # (best-effort cancel latch: a racing double-cancel calls the
        # underlying idempotent timer cancel twice, which is benign)
        self._cancelled = False

    def cancel(self) -> bool:
        if self._cancelled:
            return False
        self._cancelled = True
        return bool(self._cancel_fn())


class Clock(ABC):
    """Minimal clock interface: a monotonically non-decreasing ``now()``."""

    @abstractmethod
    def now(self) -> float:
        """Current time in seconds (epoch is clock-specific)."""

    def elapsed_since(self, t0: float) -> float:
        """Seconds elapsed since a previous ``now()`` reading."""
        return self.now() - t0

    def call_later(self, delay: float, callback) -> TimerHandle:
        """Run ``callback()`` once ``delay`` seconds of *this clock's*
        time have passed; returns a :class:`TimerHandle`."""
        raise NotImplementedError(f"{type(self).__name__} has no timer support")


class WallClock(Clock):
    """Real monotonic wall-clock time."""

    def now(self) -> float:
        return time.monotonic()

    def call_later(self, delay: float, callback) -> TimerHandle:
        timer = threading.Timer(max(0.0, float(delay)), callback)
        timer.daemon = True
        timer.name = "wallclock-timer"
        timer.start()

        def cancel() -> bool:
            timer.cancel()
            return True

        return TimerHandle(cancel)


class _VTimer:
    """One pending virtual-clock timer (heap entry)."""

    __slots__ = ("deadline", "seq", "callback", "cancelled")

    def __init__(self, deadline: float, seq: int, callback) -> None:
        self.deadline = deadline
        self.seq = seq
        self.callback = callback
        self.cancelled = False

    def __lt__(self, other: "_VTimer") -> bool:
        return (self.deadline, self.seq) < (other.deadline, other.seq)


class VirtualClock(Clock):
    """Virtual time advanced explicitly by the simulation kernel.

    Thread-safe: the scheduler thread advances it while daemon threads
    read it.  Time never goes backwards; ``advance`` with a negative
    delta raises ``ValueError``.

    Timers armed with :meth:`call_later` fire when an ``advance`` /
    ``advance_to`` moves ``now`` past their deadline.  Callbacks run on
    a lazily spawned timer-service thread, never on the advancing
    thread — the scheduler may advance while holding process locks, and
    a timeout callback is free to take store/connection locks.
    """

    def __init__(self, start: float = 0.0):
        self._now = float(start)
        # One condition guards now + the timer heap: readers/advancers
        # take it as the old _lock, and the timer-service thread waits
        # on it for due deadlines.
        self._cond = tracked_condition("util.clock.VirtualClock._cond")
        self._timers: list[_VTimer] = []
        self._timer_seq = itertools.count()
        self._service: threading.Thread | None = None

    def now(self) -> float:
        with self._cond:
            return self._now

    def advance(self, delta: float) -> float:
        """Advance virtual time by ``delta`` seconds; returns the new time."""
        if delta < 0:
            raise ValueError(f"cannot advance virtual clock by {delta!r}")
        with self._cond:
            self._now += delta
            if self._timers:
                self._cond.notify_all()
            return self._now

    def advance_to(self, t: float) -> float:
        """Advance to absolute time ``t`` if it is in the future."""
        with self._cond:
            if t > self._now:
                self._now = t
                if self._timers:
                    self._cond.notify_all()
            return self._now

    def call_later(self, delay: float, callback) -> TimerHandle:
        entry: _VTimer
        with self._cond:
            entry = _VTimer(
                self._now + max(0.0, float(delay)), next(self._timer_seq), callback
            )
            heapq.heappush(self._timers, entry)
            if self._service is None:
                from repro.util.threads import spawn

                self._service = spawn(self._serve_timers, name="vclock-timers")
            self._cond.notify_all()

        def cancel() -> bool:
            with self._cond:
                entry.cancelled = True
                return True

        return TimerHandle(cancel)

    def _serve_timers(self) -> None:
        """Timer-service loop: pop due timers, run their callbacks.

        Runs forever (daemon thread); parked on the condition whenever
        nothing is due, so an idle clock costs nothing.
        """
        while True:
            due: list[_VTimer] = []
            with self._cond:
                while True:
                    while self._timers and self._timers[0].cancelled:
                        heapq.heappop(self._timers)
                    if self._timers and self._timers[0].deadline <= self._now:
                        due.append(heapq.heappop(self._timers))
                        continue
                    if due:
                        break
                    self._cond.wait()
            for entry in due:
                if not entry.cancelled:
                    entry.callback()


class StopwatchResult:
    """Mutable elapsed-time holder filled in when a Stopwatch exits."""

    def __init__(self) -> None:
        self.seconds: float = 0.0

    def __repr__(self) -> str:
        return f"StopwatchResult({self.seconds:.6f}s)"


class Stopwatch:
    """Context manager measuring elapsed time on a given clock.

    >>> clock = WallClock()
    >>> with Stopwatch(clock) as sw:
    ...     pass
    >>> sw.seconds >= 0.0
    True
    """

    def __init__(self, clock: Clock | None = None):
        self._clock = clock if clock is not None else WallClock()
        self._t0 = 0.0
        self.seconds = 0.0

    def __enter__(self) -> "Stopwatch":
        self._t0 = self._clock.now()
        return self

    def __exit__(self, *exc) -> None:
        self.seconds = self._clock.now() - self._t0
