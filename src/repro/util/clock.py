"""Clock abstraction: wall time for real backends, virtual time for the sim.

The simulated cluster charges virtual CPU cost for each program operation
(see :mod:`repro.sim.kernel`), so performance experiments (Paradyn metrics,
bottleneck search) are deterministic.  Real-process backends and transport
latency measurements use wall time.  Code that needs "a clock" takes a
:class:`Clock` so either can be injected.
"""

from __future__ import annotations

import threading
import time
from abc import ABC, abstractmethod

from repro.util.sync import tracked_lock


class Clock(ABC):
    """Minimal clock interface: a monotonically non-decreasing ``now()``."""

    @abstractmethod
    def now(self) -> float:
        """Current time in seconds (epoch is clock-specific)."""

    def elapsed_since(self, t0: float) -> float:
        """Seconds elapsed since a previous ``now()`` reading."""
        return self.now() - t0


class WallClock(Clock):
    """Real monotonic wall-clock time."""

    def now(self) -> float:
        return time.monotonic()


class VirtualClock(Clock):
    """Virtual time advanced explicitly by the simulation kernel.

    Thread-safe: the scheduler thread advances it while daemon threads
    read it.  Time never goes backwards; ``advance`` with a negative
    delta raises ``ValueError``.
    """

    def __init__(self, start: float = 0.0):
        self._now = float(start)
        self._lock = tracked_lock("util.clock.VirtualClock._lock")

    def now(self) -> float:
        with self._lock:
            return self._now

    def advance(self, delta: float) -> float:
        """Advance virtual time by ``delta`` seconds; returns the new time."""
        if delta < 0:
            raise ValueError(f"cannot advance virtual clock by {delta!r}")
        with self._lock:
            self._now += delta
            return self._now

    def advance_to(self, t: float) -> float:
        """Advance to absolute time ``t`` if it is in the future."""
        with self._lock:
            if t > self._now:
                self._now = t
            return self._now


class StopwatchResult:
    """Mutable elapsed-time holder filled in when a Stopwatch exits."""

    def __init__(self) -> None:
        self.seconds: float = 0.0

    def __repr__(self) -> str:
        return f"StopwatchResult({self.seconds:.6f}s)"


class Stopwatch:
    """Context manager measuring elapsed time on a given clock.

    >>> clock = WallClock()
    >>> with Stopwatch(clock) as sw:
    ...     pass
    >>> sw.seconds >= 0.0
    True
    """

    def __init__(self, clock: Clock | None = None):
        self._clock = clock if clock is not None else WallClock()
        self._t0 = 0.0
        self.seconds = 0.0

    def __enter__(self) -> "Stopwatch":
        self._t0 = self._clock.now()
        return self

    def __exit__(self, *exc) -> None:
        self.seconds = self._clock.now() - self._t0
