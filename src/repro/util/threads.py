"""Sanctioned thread creation: the one place ``threading.Thread`` is built.

Every daemon/service thread in the library is created here via
:func:`spawn`, enforced by the ``bare-thread`` lint rule
(:mod:`repro.analysis.rules.threads`).  Funneling creation buys three
things for free at every call site:

* threads are always **named** (thread dumps stay readable at scale);
* threads default to **daemon=True** so a crashed test run cannot hang
  interpreter shutdown on a forgotten service loop;
* creation is **accounted** — :func:`spawned_total` exposes a counter
  that diagnostics and load tests can watch for thread leaks.
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Iterable, Mapping

from repro.util.sync import AtomicCounter

_spawned = AtomicCounter()


def spawn(
    target: Callable[..., Any],
    *,
    name: str,
    args: Iterable[Any] = (),
    kwargs: Mapping[str, Any] | None = None,
    daemon: bool = True,
    start: bool = True,
) -> threading.Thread:
    """Create (and by default start) a named service thread.

    ``start=False`` returns the constructed thread unstarted for the rare
    caller that must publish the thread object before it runs.
    """
    if not name:
        raise ValueError("spawn() requires a non-empty thread name")
    thread = threading.Thread(
        target=target,
        name=name,
        args=tuple(args),
        kwargs=dict(kwargs) if kwargs else None,
        daemon=daemon,
    )
    _spawned.increment()
    if start:
        thread.start()
    return thread


def spawned_total() -> int:
    """Number of threads created through :func:`spawn` since import."""
    return _spawned.value
