"""String codecs for the attribute space.

The paper (Section 3.2) constrains both attributes and values to
null-terminated C strings, and notes that structured values (for example
an argument vector like ``"-p1500 -P2000"``) are flattened to one string
with parsing left to the TDP client.  This module provides the standard
flattening/parsing helpers used across the library:

* :func:`validate_attribute_name` — the well-formedness rule for names.
* :func:`encode_value` / :func:`decode_value` — lossless round-trip of a
  Python string through the wire constraint (no NUL bytes).
* :func:`split_arguments` / :func:`join_arguments` — shell-like argument
  vector flattening (the paper's ``"-p1500 -P2000"`` case), with quoting
  so arguments containing spaces survive the round trip.
"""

from __future__ import annotations

import re
import shlex

from repro.errors import AttributeFormatError

# Attribute names: printable, no whitespace, no NUL.  The paper only says
# "a character string that names data"; we pin the conventional identifier
# shape used by its examples ("pid", "executable_name").  Dots and slashes
# allow hierarchical names like "tool.paradynd/0.port".
_NAME_RE = re.compile(r"^[A-Za-z0-9_.\-/%+]+$")

MAX_ATTRIBUTE_NAME = 255
#: Generous cap; the pilot exchanged small strings.  A cap exists so a
#: buggy daemon cannot wedge a LASS with an unbounded value.
MAX_VALUE_LENGTH = 1 << 20


def validate_attribute_name(name: str) -> str:
    """Validate an attribute name and return it.

    Raises :class:`~repro.errors.AttributeFormatError` for empty names,
    names with whitespace/NUL, or names longer than ``MAX_ATTRIBUTE_NAME``.
    """
    if not isinstance(name, str):
        raise AttributeFormatError(f"attribute name must be str, got {type(name).__name__}")
    if not name:
        raise AttributeFormatError("attribute name must be non-empty")
    if len(name) > MAX_ATTRIBUTE_NAME:
        raise AttributeFormatError(f"attribute name too long ({len(name)} > {MAX_ATTRIBUTE_NAME})")
    if not _NAME_RE.match(name):
        raise AttributeFormatError(f"invalid attribute name {name!r}")
    return name


def encode_value(value: str) -> str:
    """Validate a value for the attribute space and return it.

    Values are UTF-8 strings without NUL bytes (the C constraint the paper
    states).  Everything else — including empty strings and newlines — is
    legal, so tools may store small configuration blobs.
    """
    if not isinstance(value, str):
        raise AttributeFormatError(f"attribute value must be str, got {type(value).__name__}")
    if "\x00" in value:
        raise AttributeFormatError("attribute value may not contain NUL bytes")
    if len(value) > MAX_VALUE_LENGTH:
        raise AttributeFormatError(f"attribute value too long ({len(value)} > {MAX_VALUE_LENGTH})")
    return value


def decode_value(value: str) -> str:
    """Inverse of :func:`encode_value` (identity after validation)."""
    return encode_value(value)


def join_arguments(args: list[str] | tuple[str, ...]) -> str:
    """Flatten an argument vector to one attribute value.

    The paper's example stores ``-p1500 -P2000`` as a single value and
    "lets the TDP client handle the parsing"; this helper is that client
    convention.  Arguments containing whitespace or quotes are quoted so
    :func:`split_arguments` recovers them exactly.
    """
    return " ".join(shlex.quote(a) for a in args)


def split_arguments(value: str) -> list[str]:
    """Parse a flattened argument value back into a vector."""
    return shlex.split(value)


def substitute_percent(template: str, mapping: dict[str, str]) -> str:
    """Expand ``%name`` references in a ToolDaemonArgs-style template.

    The pilot used ``-a%pid`` in the submit file to mark where the starter
    should substitute information published in the LASS (paper Section
    4.3).  ``%%`` escapes a literal percent.  Unknown names raise
    ``KeyError`` so misspelled directives fail loudly.
    """
    out: list[str] = []
    i = 0
    n = len(template)
    while i < n:
        c = template[i]
        if c != "%":
            out.append(c)
            i += 1
            continue
        if i + 1 < n and template[i + 1] == "%":
            out.append("%")
            i += 2
            continue
        j = i + 1
        while j < n and (template[j].isalnum() or template[j] == "_"):
            j += 1
        name = template[i + 1 : j]
        if not name:
            raise KeyError("dangling '%' in template")
        if name not in mapping:
            raise KeyError(f"unknown %-substitution {name!r}")
        out.append(mapping[name])
        i = j
    return "".join(out)
