"""Shared utilities: id generation, clocks, logging, string codecs, sync."""

from repro.util.ids import IdAllocator, fresh_token
from repro.util.clock import Clock, WallClock, VirtualClock
from repro.util.strings import (
    encode_value,
    decode_value,
    split_arguments,
    join_arguments,
    validate_attribute_name,
)
from repro.util.sync import Latch, WaitableQueue

__all__ = [
    "IdAllocator",
    "fresh_token",
    "Clock",
    "WallClock",
    "VirtualClock",
    "encode_value",
    "decode_value",
    "split_arguments",
    "join_arguments",
    "validate_attribute_name",
    "Latch",
    "WaitableQueue",
]
