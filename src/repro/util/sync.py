"""Synchronization helpers shared by daemons, servers, and the sim kernel.

The library is deliberately thread-based (daemons are threads, simulated
application processes run on a scheduler thread), so correctness rests on
a small set of audited primitives rather than ad-hoc sleeps:

* :class:`Latch` — a one-shot level-triggered gate with a payload.
* :class:`WaitableQueue` — an unbounded FIFO whose ``close()`` wakes
  blocked readers, used for channel receive queues and event queues.

It also hosts the **runtime lockset witness** — the dynamic half of the
concurrency sanitizer.  Daemons create their locks through
:func:`tracked_lock` / :func:`tracked_rlock` / :func:`tracked_condition`,
naming them with the ``module.Class.attr`` keys of
:mod:`repro.analysis.lockorder`.  With ``TDP_SANITIZE`` unset the
factories return *plain* ``threading`` primitives — zero wrapper, zero
per-acquire overhead.  With ``TDP_SANITIZE=1`` they return
:class:`TrackedLock`/:class:`TrackedRLock` wrappers that keep a
per-thread lockset and raise :class:`~repro.errors.LockOrderError` the
moment any thread acquires out of rank order, touches an undeclared
lock, or blocks in :func:`witness_blocking` while holding a lock the
hierarchy does not sanction holding across blocking calls.  The static
lint passes check the same hierarchy from the AST, so each side
cross-checks the other.

The **field-access witness** is the same bargain for guarded state:
:func:`arm_guard_witness` reads the committed guard manifest
(``guards.lock.json``, the artifact of ``python -m repro guards``) and
wraps each witnessed field in a :class:`GuardedField` descriptor that
raises :class:`~repro.errors.GuardViolationError` on any
post-construction access made without the declared guard in the calling
thread's lockset — the dynamic half of the static
``guarded-field-unlocked`` pass.
"""

from __future__ import annotations

import collections
import os
import threading
from typing import Any, Generic, Iterable, TypeVar

from repro.errors import (
    ChannelClosedError,
    GetTimeoutError,
    GuardViolationError,
    LockOrderError,
)

T = TypeVar("T")


# ---------------------------------------------------------------------------
# runtime lockset witness (the dynamic half of the concurrency sanitizer)

_sanitize = os.environ.get("TDP_SANITIZE", "") not in ("", "0")


def sanitize_enabled() -> bool:
    """Is the lockset witness active (``TDP_SANITIZE=1``)?"""
    return _sanitize


def set_sanitize(enabled: bool) -> None:
    """Toggle the witness (tests; conftest honors the environment).

    Only locks created *after* enabling are tracked — the factories
    decide between plain and wrapped primitives at construction time.
    """
    global _sanitize
    _sanitize = bool(enabled)


def _hierarchy():
    # Imported lazily: the util layer must not pull the analysis package
    # in on the plain (sanitizer-off) path.
    from repro.analysis import lockorder

    return lockorder.active()


class _Lockset(threading.local):
    """Per-thread stack of (lock key, lock identity) currently held."""

    def __init__(self) -> None:
        self.held: list[tuple[str, int]] = []


_lockset = _Lockset()


def held_lock_keys() -> list[str]:
    """Keys the calling thread holds right now (diagnostics/tests)."""
    return [key for key, _ in _lockset.held]


def _witness_acquire(key: str) -> None:
    """Raise unless the calling thread may acquire ``key`` now."""
    hierarchy = _hierarchy()
    if not hierarchy.declared(key):
        raise LockOrderError(
            f"acquisition of lock {key!r} which is not declared in the "
            f"lockorder manifest (repro/analysis/lockorder.py)"
        )
    for held_key, _ in _lockset.held:
        if not hierarchy.may_acquire(held_key, key):
            raise LockOrderError(
                f"lock-order violation: acquiring {key} (rank "
                f"{hierarchy.rank(key)}) while holding {held_key} (rank "
                f"{hierarchy.rank(held_key)}); declared order requires "
                f"strictly increasing ranks"
            )


def _witness_push(key: str, lock_id: int) -> None:
    _lockset.held.append((key, lock_id))


def _witness_pop(key: str, lock_id: int) -> None:
    # Search from the top: releases need not mirror acquisition order.
    held = _lockset.held
    for i in range(len(held) - 1, -1, -1):
        if held[i] == (key, lock_id):
            del held[i]
            return


def witness_blocking(operation: str) -> None:
    """Flag a blocking call made while holding a non-exempt lock.

    Blocking primitives (latch waits, queue gets) call this on entry;
    locks declared ``blocking_ok`` in the hierarchy (audited frame-send
    locks) are exempt.  No-op unless the witness is active.
    """
    if not _sanitize or not _lockset.held:
        return
    hierarchy = _hierarchy()
    offenders = [
        key for key, _ in _lockset.held if not hierarchy.blocking_ok(key)
    ]
    if offenders:
        raise LockOrderError(
            f"blocking call {operation!r} while holding {offenders}; "
            f"holding a lock across a blocking call is only sanctioned "
            f"for blocking_ok locks in the lockorder manifest"
        )


class TrackedLock:
    """A named, witness-checked ``threading.Lock``.

    Implements ``_is_owned`` so it can back a ``threading.Condition``;
    wait/notify then route release/acquire through the witness too.
    """

    def __init__(self, key: str):
        self.key = key
        self._inner = threading.Lock()
        # tdp-guard: _owner -> volatile
        # (owner stamp trusted only when it equals the reader's own
        # thread id; a cross-thread read sees None or a foreign id,
        # both of which _is_owned correctly reports as "not mine")
        self._owner: int | None = None

    def __repr__(self) -> str:
        return f"<TrackedLock {self.key} locked={self._inner.locked()}>"

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        _witness_acquire(self.key)
        ok = self._inner.acquire(blocking, timeout)
        if ok:
            self._owner = threading.get_ident()
            _witness_push(self.key, id(self))
        return ok

    def release(self) -> None:
        self._owner = None
        _witness_pop(self.key, id(self))
        self._inner.release()

    def locked(self) -> bool:
        return self._inner.locked()

    def _is_owned(self) -> bool:
        return self._owner == threading.get_ident()

    def __enter__(self) -> bool:
        return self.acquire()

    def __exit__(self, *exc: object) -> None:
        self.release()


class TrackedRLock:
    """A named, witness-checked ``threading.RLock``.

    Only the outermost acquire is order-checked (re-entry is sanctioned
    for RLOCK-kind keys by definition); the witness entry lives for the
    whole ownership span.  ``_release_save``/``_acquire_restore`` keep
    ``threading.Condition`` compatibility: a wait fully releases the
    lock (witness entry popped), and the wake re-acquire restores it
    without an order re-check against locks taken while parked.
    """

    def __init__(self, key: str):
        self.key = key
        self._inner = threading.RLock()
        # tdp-guard: _count -> volatile
        # (mutated only while the mutating thread owns _inner; __repr__
        # reads it racily for diagnostics)
        self._count = 0

    def __repr__(self) -> str:
        return f"<TrackedRLock {self.key} count={self._count}>"

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        first = not self._inner._is_owned()
        if first:
            _witness_acquire(self.key)
        ok = self._inner.acquire(blocking, timeout)
        if ok:
            self._count += 1
            if first:
                _witness_push(self.key, id(self))
        return ok

    def release(self) -> None:
        self._count -= 1
        if self._count == 0:
            _witness_pop(self.key, id(self))
        self._inner.release()

    def __enter__(self) -> bool:
        return self.acquire()

    def __exit__(self, *exc: object) -> None:
        self.release()

    # -- threading.Condition protocol ----------------------------------
    def _release_save(self):
        count = self._count
        self._count = 0
        _witness_pop(self.key, id(self))
        return count, self._inner._release_save()

    def _acquire_restore(self, saved) -> None:
        count, inner_state = saved
        self._inner._acquire_restore(inner_state)
        self._count = count
        _witness_push(self.key, id(self))

    def _is_owned(self) -> bool:
        return self._inner._is_owned()


def tracked_lock(key: str) -> "threading.Lock | TrackedLock":
    """A mutex named ``key`` in the lock hierarchy.

    Plain ``threading.Lock`` when the sanitizer is off (zero overhead);
    a :class:`TrackedLock` under ``TDP_SANITIZE=1``.
    """
    return TrackedLock(key) if _sanitize else threading.Lock()


def tracked_rlock(key: str) -> "threading.RLock | TrackedRLock":
    """Re-entrant variant of :func:`tracked_lock` (RLOCK-kind keys)."""
    return TrackedRLock(key) if _sanitize else threading.RLock()


def tracked_condition(key: str, lock: Any = None) -> threading.Condition:
    """A condition variable whose underlying lock is witness-checked.

    With ``lock`` (an already-tracked lock) the condition *aliases* that
    lock — the ``Condition(self.lock)`` pattern — and ``key`` is the
    shared name.  Without it, the condition owns a fresh lock named
    ``key``.
    """
    if lock is None and _sanitize:
        lock = TrackedLock(key)
    return threading.Condition(lock)


# ---------------------------------------------------------------------------
# runtime field-access witness (the dynamic half of the guarded-by checker)

#: instance-dict flag set by the wrapped constructor once construction
#: finishes; unarmed instances (mid-construction, or subclasses with
#: their own __init__) are never checked
_GUARD_ARMED = "_tdp_guard_armed"

_MISSING = object()

#: class -> (saved class-dict entries, original __init__); install
#: registry so uninstall/disarm can restore the class exactly
_witnessed_classes: dict[type, tuple[dict[str, Any], Any]] = {}


class GuardedField:
    """Data descriptor enforcing a field's declared guard at runtime.

    Installed by :func:`install_guard_witness` over each lock-guarded
    field of the committed guard manifest (``guards.lock.json``).  The
    value lives in the instance ``__dict__`` under the field's own name
    — exactly where a plain attribute would put it — but because a data
    descriptor shadows the instance dict, every read, write, and delete
    routes through the lockset check.  A touch without ``guard_key`` in
    the calling thread's lockset raises
    :class:`~repro.errors.GuardViolationError`.

    Checks apply only when the sanitizer is on *and* the instance is
    armed (construction finished): constructor assignments run before
    arming, so ``__init__`` publishing fields without the lock stays
    legal, matching the static inference's construction-phase exclusion.
    """

    def __init__(self, owner_key: str, attr: str, guard_key: str):
        self.owner_key = owner_key
        self.attr = attr
        self.guard_key = guard_key

    def __repr__(self) -> str:
        return (
            f"<GuardedField {self.owner_key}.{self.attr} "
            f"guarded by {self.guard_key}>"
        )

    def _check(self, inst: Any, verb: str) -> None:
        if not _sanitize:
            return
        if not inst.__dict__.get(_GUARD_ARMED):
            return
        if self.guard_key in held_lock_keys():
            return
        raise GuardViolationError(
            f"{verb} of {self.owner_key}.{self.attr} without holding its "
            f"guard {self.guard_key} (held: {held_lock_keys() or 'no locks'}); "
            f"the guard manifest is guards.lock.json (python -m repro guards)"
        )

    def __get__(self, inst: Any, owner: type | None = None) -> Any:
        if inst is None:
            return self
        self._check(inst, "read")
        try:
            return inst.__dict__[self.attr]
        except KeyError:
            raise AttributeError(self.attr) from None

    def __set__(self, inst: Any, value: Any) -> None:
        self._check(inst, "write")
        inst.__dict__[self.attr] = value

    def __delete__(self, inst: Any) -> None:
        self._check(inst, "delete")
        try:
            del inst.__dict__[self.attr]
        except KeyError:
            raise AttributeError(self.attr) from None


def install_guard_witness(
    cls: type, fields: dict[str, str], owner_key: str | None = None
) -> None:
    """Wrap ``fields`` (attr -> guard lock key) of ``cls`` with
    :class:`GuardedField` descriptors and arm new instances.

    Arming happens in a wrapped ``__init__`` — but only when that
    wrapper is the *outermost* constructor (``type(inst).__init__`` is
    the wrapper).  A subclass with its own ``__init__`` keeps assigning
    fields after ``super().__init__`` returns, so arming there would
    flag construction-phase writes; such instances simply go
    unwitnessed, which can miss races but never invents one.

    Instances that predate the install keep working: their values
    already sit in the instance dict where the descriptor looks, and
    they are never armed.
    """
    if cls in _witnessed_classes:
        raise RuntimeError(f"guard witness already installed on {cls!r}")
    owner_key = owner_key or cls.__name__
    saved: dict[str, Any] = {}
    for attr, guard_key in fields.items():
        saved[attr] = cls.__dict__.get(attr, _MISSING)
        setattr(cls, attr, GuardedField(owner_key, attr, guard_key))
    original_init = cls.__init__

    def _arming_init(self: Any, *args: Any, **kwargs: Any) -> None:
        original_init(self, *args, **kwargs)
        if type(self).__init__ is _arming_init:
            self.__dict__[_GUARD_ARMED] = True

    _arming_init._tdp_guard_wrapper = True  # type: ignore[attr-defined]
    cls.__init__ = _arming_init  # type: ignore[method-assign]
    _witnessed_classes[cls] = (saved, original_init)


def uninstall_guard_witness(cls: type) -> None:
    """Undo :func:`install_guard_witness`, restoring the class exactly."""
    saved, original_init = _witnessed_classes.pop(cls)
    for attr, original in saved.items():
        if original is _MISSING:
            delattr(cls, attr)
        else:
            setattr(cls, attr, original)
    cls.__init__ = original_init  # type: ignore[method-assign]


def arm_guard_witness(lock_path: Any = None) -> list[str]:
    """Install the witness for every witnessed field of the committed
    guard manifest; returns the armed class qualnames.

    ``lock_path`` defaults to ``guards.lock.json`` at the repository
    root (three levels above this module's package).  The analysis
    package is imported lazily — like :func:`_hierarchy`, the plain
    (sanitizer-off) path never pays for it.
    """
    import importlib
    import pathlib

    from repro.analysis.guards import LOCK_FILENAME, load_lock, witnessed_fields

    if lock_path is None:
        lock_path = (
            pathlib.Path(__file__).resolve().parents[3] / LOCK_FILENAME
        )
    by_owner: dict[str, dict[str, str]] = {}
    for field_key, guard_key in witnessed_fields(load_lock(lock_path)).items():
        owner, _, attr = field_key.rpartition(".")
        by_owner.setdefault(owner, {})[attr] = guard_key
    armed: list[str] = []
    for owner, fields in sorted(by_owner.items()):
        modname, _, clsname = owner.rpartition(".")
        module = importlib.import_module(f"repro.{modname}")
        cls = getattr(module, clsname)
        if cls in _witnessed_classes:
            continue  # repeated arm (e.g. two pytest_configure calls)
        install_guard_witness(cls, fields, owner_key=owner)
        armed.append(owner)
    return armed


def disarm_guard_witness() -> None:
    """Uninstall every witness installed this process (test teardown)."""
    for cls in list(_witnessed_classes):
        uninstall_guard_witness(cls)


class Latch(Generic[T]):
    """One-shot gate: ``open(value)`` releases every ``wait()``.

    Re-opening is idempotent (the first value wins), so racing producers
    are safe.  ``wait`` raises :class:`~repro.errors.GetTimeoutError` on
    timeout, matching the blocking-get semantics it usually backs.
    """

    def __init__(self) -> None:
        self._event = threading.Event()
        self._value: T | None = None
        self._lock = tracked_lock("util.sync.Latch._lock")

    def open(self, value: T) -> bool:
        """Open the latch with ``value``; returns False if already open."""
        with self._lock:
            if self._event.is_set():
                return False
            self._value = value
            self._event.set()
            return True

    def is_open(self) -> bool:
        return self._event.is_set()

    def peek(self) -> T | None:
        """The latched value, or None if not yet open."""
        with self._lock:
            return self._value if self._event.is_set() else None

    def wait(self, timeout: float | None = None) -> T:
        """Block until open; return the latched value."""
        witness_blocking("Latch.wait")
        if not self._event.wait(timeout):
            raise GetTimeoutError(f"latch wait timed out after {timeout}s")
        assert self._event.is_set()
        return self._value  # type: ignore[return-value]


class WaitableQueue(Generic[T]):
    """Unbounded FIFO with close semantics.

    Unlike :class:`queue.Queue`, ``close()`` wakes every blocked reader
    with :class:`~repro.errors.ChannelClosedError` once the queue drains,
    which is what a channel receive loop needs on disconnect.  Items
    queued before close are still delivered (graceful drain).
    """

    def __init__(self) -> None:
        self._items: collections.deque[T] = collections.deque()
        self._cond = tracked_condition("util.sync.WaitableQueue._cond")
        self._closed = False

    def put(self, item: T) -> None:
        with self._cond:
            if self._closed:
                raise ChannelClosedError("put on closed queue")
            self._items.append(item)
            self._cond.notify()

    def offer(self, item: T, maxsize: int) -> bool:
        """Bounded non-blocking put: enqueue unless ``maxsize`` items are
        already queued.

        Returns False when the queue is full — the caller applies its
        overflow policy (the attribute-space server disconnects the slow
        subscriber).  Raises ``ChannelClosedError`` on a closed queue,
        like :meth:`put`.
        """
        with self._cond:
            if self._closed:
                raise ChannelClosedError("offer on closed queue")
            if len(self._items) >= maxsize:
                return False
            self._items.append(item)
            self._cond.notify()
            return True

    def get(self, timeout: float | None = None) -> T:
        """Pop the oldest item, blocking until one arrives.

        Raises ``ChannelClosedError`` when the queue is closed and empty,
        ``GetTimeoutError`` on timeout.
        """
        witness_blocking("WaitableQueue.get")
        with self._cond:
            if not self._cond.wait_for(lambda: self._items or self._closed, timeout):
                raise GetTimeoutError(f"queue get timed out after {timeout}s")
            if self._items:
                return self._items.popleft()
            raise ChannelClosedError("queue closed")

    def get_nowait(self) -> T:
        """Pop immediately; raises ``IndexError`` if empty (closed or not)."""
        with self._cond:
            if not self._items:
                if self._closed:
                    raise ChannelClosedError("queue closed")
                raise IndexError("queue empty")
            return self._items.popleft()

    def wait_nonempty(self, timeout: float | None = None) -> bool:
        """Block until an item is queued (without consuming it).

        Returns True when an item is available, False on timeout or when
        the queue closed empty.
        """
        witness_blocking("WaitableQueue.wait_nonempty")
        with self._cond:
            self._cond.wait_for(lambda: self._items or self._closed, timeout)
            return bool(self._items)

    def drain(self) -> list[T]:
        """Atomically remove and return all currently queued items."""
        with self._cond:
            items = list(self._items)
            self._items.clear()
            return items

    def close(self) -> None:
        """Close the queue; idempotent."""
        with self._cond:
            self._closed = True
            self._cond.notify_all()

    @property
    def closed(self) -> bool:
        with self._cond:
            return self._closed

    def __len__(self) -> int:
        with self._cond:
            return len(self._items)

    def extend(self, items: Iterable[T]) -> None:
        with self._cond:
            if self._closed:
                raise ChannelClosedError("extend on closed queue")
            self._items.extend(items)
            self._cond.notify_all()


def join_all(threads: Iterable[threading.Thread], timeout: float = 10.0) -> None:
    """Join each thread with a shared deadline; raise if any is still alive.

    Tests use this to guarantee daemon threads exit — a hung daemon is a
    bug, not something to leak past the test.
    """
    import time

    deadline = time.monotonic() + timeout
    stuck: list[str] = []
    for t in threads:
        remaining = deadline - time.monotonic()
        t.join(max(0.0, remaining))
        if t.is_alive():
            stuck.append(t.name)
    if stuck:
        raise RuntimeError(f"threads did not exit: {stuck}")


class AtomicCounter:
    """Thread-safe integer counter (used for statistics)."""

    def __init__(self, initial: int = 0):
        self._value = initial
        self._lock = tracked_lock("util.sync.AtomicCounter._lock")

    def increment(self, delta: int = 1) -> int:
        with self._lock:
            self._value += delta
            return self._value

    @property
    def value(self) -> int:
        with self._lock:
            return self._value
