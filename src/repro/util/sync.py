"""Synchronization helpers shared by daemons, servers, and the sim kernel.

The library is deliberately thread-based (daemons are threads, simulated
application processes run on a scheduler thread), so correctness rests on
a small set of audited primitives rather than ad-hoc sleeps:

* :class:`Latch` — a one-shot level-triggered gate with a payload.
* :class:`WaitableQueue` — an unbounded FIFO whose ``close()`` wakes
  blocked readers, used for channel receive queues and event queues.
"""

from __future__ import annotations

import collections
import threading
from typing import Any, Generic, Iterable, TypeVar

from repro.errors import ChannelClosedError, GetTimeoutError

T = TypeVar("T")


class Latch(Generic[T]):
    """One-shot gate: ``open(value)`` releases every ``wait()``.

    Re-opening is idempotent (the first value wins), so racing producers
    are safe.  ``wait`` raises :class:`~repro.errors.GetTimeoutError` on
    timeout, matching the blocking-get semantics it usually backs.
    """

    def __init__(self) -> None:
        self._event = threading.Event()
        self._value: T | None = None
        self._lock = threading.Lock()

    def open(self, value: T) -> bool:
        """Open the latch with ``value``; returns False if already open."""
        with self._lock:
            if self._event.is_set():
                return False
            self._value = value
            self._event.set()
            return True

    def is_open(self) -> bool:
        return self._event.is_set()

    def peek(self) -> T | None:
        """The latched value, or None if not yet open."""
        with self._lock:
            return self._value if self._event.is_set() else None

    def wait(self, timeout: float | None = None) -> T:
        """Block until open; return the latched value."""
        if not self._event.wait(timeout):
            raise GetTimeoutError(f"latch wait timed out after {timeout}s")
        assert self._event.is_set()
        return self._value  # type: ignore[return-value]


class WaitableQueue(Generic[T]):
    """Unbounded FIFO with close semantics.

    Unlike :class:`queue.Queue`, ``close()`` wakes every blocked reader
    with :class:`~repro.errors.ChannelClosedError` once the queue drains,
    which is what a channel receive loop needs on disconnect.  Items
    queued before close are still delivered (graceful drain).
    """

    def __init__(self) -> None:
        self._items: collections.deque[T] = collections.deque()
        self._cond = threading.Condition()
        self._closed = False

    def put(self, item: T) -> None:
        with self._cond:
            if self._closed:
                raise ChannelClosedError("put on closed queue")
            self._items.append(item)
            self._cond.notify()

    def get(self, timeout: float | None = None) -> T:
        """Pop the oldest item, blocking until one arrives.

        Raises ``ChannelClosedError`` when the queue is closed and empty,
        ``GetTimeoutError`` on timeout.
        """
        with self._cond:
            if not self._cond.wait_for(lambda: self._items or self._closed, timeout):
                raise GetTimeoutError(f"queue get timed out after {timeout}s")
            if self._items:
                return self._items.popleft()
            raise ChannelClosedError("queue closed")

    def get_nowait(self) -> T:
        """Pop immediately; raises ``IndexError`` if empty (closed or not)."""
        with self._cond:
            if not self._items:
                if self._closed:
                    raise ChannelClosedError("queue closed")
                raise IndexError("queue empty")
            return self._items.popleft()

    def wait_nonempty(self, timeout: float | None = None) -> bool:
        """Block until an item is queued (without consuming it).

        Returns True when an item is available, False on timeout or when
        the queue closed empty.
        """
        with self._cond:
            self._cond.wait_for(lambda: self._items or self._closed, timeout)
            return bool(self._items)

    def drain(self) -> list[T]:
        """Atomically remove and return all currently queued items."""
        with self._cond:
            items = list(self._items)
            self._items.clear()
            return items

    def close(self) -> None:
        """Close the queue; idempotent."""
        with self._cond:
            self._closed = True
            self._cond.notify_all()

    @property
    def closed(self) -> bool:
        with self._cond:
            return self._closed

    def __len__(self) -> int:
        with self._cond:
            return len(self._items)

    def extend(self, items: Iterable[T]) -> None:
        with self._cond:
            if self._closed:
                raise ChannelClosedError("extend on closed queue")
            self._items.extend(items)
            self._cond.notify_all()


def join_all(threads: Iterable[threading.Thread], timeout: float = 10.0) -> None:
    """Join each thread with a shared deadline; raise if any is still alive.

    Tests use this to guarantee daemon threads exit — a hung daemon is a
    bug, not something to leak past the test.
    """
    import time

    deadline = time.monotonic() + timeout
    stuck: list[str] = []
    for t in threads:
        remaining = deadline - time.monotonic()
        t.join(max(0.0, remaining))
        if t.is_alive():
            stuck.append(t.name)
    if stuck:
        raise RuntimeError(f"threads did not exit: {stuck}")


class AtomicCounter:
    """Thread-safe integer counter (used for statistics)."""

    def __init__(self, initial: int = 0):
        self._value = initial
        self._lock = threading.Lock()

    def increment(self, delta: int = 1) -> int:
        with self._lock:
            self._value += delta
            return self._value

    @property
    def value(self) -> int:
        with self._lock:
            return self._value
