"""Deterministic identifier allocation.

Simulated hosts need pid tables, the batch system needs cluster/job ids,
and the attribute space needs request ids.  All of them use
:class:`IdAllocator`, which is thread-safe and deterministic (monotonic
integers), so test runs produce stable ids without seeding a RNG.
"""

from __future__ import annotations

import itertools
import threading

from repro.util.sync import tracked_lock


class IdAllocator:
    """Thread-safe monotonically increasing integer allocator.

    Parameters
    ----------
    first:
        The first id handed out.  Pid tables conventionally start at 1
        (pid 0 is reserved, matching Unix), message ids at 1.
    """

    def __init__(self, first: int = 1):
        self._counter = itertools.count(first)
        self._lock = tracked_lock("util.ids.IdAllocator._lock")
        self._last: int | None = None

    def next(self) -> int:
        """Allocate and return the next id."""
        with self._lock:
            self._last = next(self._counter)
            return self._last

    @property
    def last(self) -> int | None:
        """The most recently allocated id, or ``None`` if none yet."""
        with self._lock:
            return self._last


_token_alloc = IdAllocator(first=1)


def fresh_token(prefix: str = "tok") -> str:
    """Return a process-unique string token like ``"tok-17"``.

    Used for TDP handle ids, proxy tunnel ids, and claim ids.  Tokens are
    unique within one Python process, which is the scope of one simulated
    cluster.
    """
    return f"{prefix}-{_token_alloc.next()}"
