"""Structured event logging.

Two consumers need run-time event records:

* Humans debugging a scenario — handled by the stdlib ``logging`` tree
  rooted at ``"repro"``.
* The figure-regeneration benches — the paper's "figures" are protocol
  traces (Figs. 3 and 6 are call sequences), so :class:`TraceRecorder`
  captures ordered, queryable event tuples that the benches assert on and
  pretty-print.
"""

from __future__ import annotations

import logging
import threading
from dataclasses import dataclass, field
from typing import Any, Iterator


def get_logger(name: str) -> logging.Logger:
    """Return a logger under the library's root (``repro.<name>``)."""
    return logging.getLogger(f"repro.{name}")


@dataclass(frozen=True)
class TraceEvent:
    """One protocol event: who did what, with what details, and when.

    ``seq`` is a recorder-global sequence number so cross-daemon ordering
    is well-defined even when timestamps tie.
    """

    seq: int
    time: float
    actor: str
    action: str
    details: dict[str, Any] = field(default_factory=dict)

    def matches(self, actor: str | None = None, action: str | None = None) -> bool:
        return (actor is None or self.actor == actor) and (
            action is None or self.action == action
        )

    def __str__(self) -> str:
        det = " ".join(f"{k}={v}" for k, v in self.details.items())
        return f"[{self.seq:4d}] {self.actor:<16} {self.action:<28} {det}"


class TraceRecorder:
    """Thread-safe ordered recorder of :class:`TraceEvent` objects.

    A single recorder is threaded through one scenario (e.g. one Parador
    run); every daemon that participates records into it.  The benches
    for Figures 3 and 6 then assert the exact sequences the paper draws.
    """

    def __init__(self, clock=None):
        from repro.util.clock import WallClock

        self._clock = clock if clock is not None else WallClock()
        self._events: list[TraceEvent] = []
        self._lock = threading.Lock()
        self._seq = 0

    def record(self, actor: str, action: str, **details: Any) -> TraceEvent:
        """Append one event and return it."""
        with self._lock:
            self._seq += 1
            ev = TraceEvent(
                seq=self._seq,
                time=self._clock.now(),
                actor=actor,
                action=action,
                details=dict(details),
            )
            self._events.append(ev)
        # Mirror into the flight recorder (outside our own lock) so one
        # obs dump interleaves protocol events with spans and daemon
        # records.  Imported lazily: util.log must be importable before
        # repro.obs exists (obs itself logs through here).
        from repro import obs

        obs.record(
            action, actor=actor,
            **{k: v for k, v in details.items() if k not in ("kind", "actor")},
        )
        return ev

    def events(
        self, actor: str | None = None, action: str | None = None
    ) -> list[TraceEvent]:
        """Snapshot of events, optionally filtered by actor and/or action."""
        with self._lock:
            evs = list(self._events)
        return [e for e in evs if e.matches(actor, action)]

    def actions(self, actor: str | None = None) -> list[str]:
        """Just the action names, in order (the shape Figures 3/6 show)."""
        return [e.action for e in self.events(actor=actor)]

    def first(self, action: str) -> TraceEvent | None:
        for e in self.events():
            if e.action == action:
                return e
        return None

    def index_of(self, action: str, actor: str | None = None) -> int:
        """Sequence number of the first matching event; -1 if absent."""
        for e in self.events(actor=actor):
            if e.action == action:
                return e.seq
        return -1

    def assert_order(self, *actions: str) -> None:
        """Assert the given actions occur in this relative order.

        Other events may interleave; only the relative order of the named
        actions is checked.  Raises ``AssertionError`` with a readable
        diff otherwise.
        """
        seqs = []
        for a in actions:
            idx = self.index_of(a)
            if idx < 0:
                raise AssertionError(f"action {a!r} never occurred.\n{self.format()}")
            seqs.append(idx)
        if seqs != sorted(seqs):
            raise AssertionError(
                "actions out of order: "
                + ", ".join(f"{a}@{s}" for a, s in zip(actions, seqs))
                + "\n"
                + self.format()
            )

    def format(self, title: str | None = None) -> str:
        """Human-readable rendering of the whole trace."""
        lines = []
        if title:
            lines.append(title)
            lines.append("-" * len(title))
        lines.extend(str(e) for e in self.events())
        return "\n".join(lines)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self.events())

    def __len__(self) -> int:
        with self._lock:
            return len(self._events)


class NullRecorder(TraceRecorder):
    """Recorder that drops everything (default when tracing is off)."""

    def record(self, actor: str, action: str, **details: Any) -> TraceEvent:
        return TraceEvent(seq=0, time=0.0, actor=actor, action=action, details=details)
