"""Transport abstraction: Channel / Listener / Transport.

Messages are JSON-serializable dictionaries.  A channel is reliable and
ordered (TCP-like), and ``close()`` from either side eventually surfaces
as :class:`~repro.errors.ChannelClosedError` at the peer once queued
messages drain — the graceful-drain semantics both the attribute space
server and the proxy forwarder rely on.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any

from repro.net.address import Endpoint

Message = dict[str, Any]


class Channel(ABC):
    """A bidirectional, reliable, ordered message channel."""

    @abstractmethod
    def send(self, message: Message) -> None:
        """Send one message; raises ``ChannelClosedError`` if closed."""

    @abstractmethod
    def recv(self, timeout: float | None = None) -> Message:
        """Receive the next message.

        Blocks until a message arrives; raises ``GetTimeoutError`` on
        timeout and ``ChannelClosedError`` once the peer has closed and
        all in-flight messages are drained.
        """

    @abstractmethod
    def close(self) -> None:
        """Close both directions; idempotent."""

    @property
    @abstractmethod
    def closed(self) -> bool: ...

    @property
    @abstractmethod
    def local_host(self) -> str:
        """Host name this end lives on."""

    @property
    @abstractmethod
    def remote_host(self) -> str:
        """Host name of the peer (as known at connect/accept time)."""

    # Convenience request/response helper used by thin RPC clients.
    def request(self, message: Message, timeout: float | None = None) -> Message:
        """Send ``message`` and return the next received message."""
        self.send(message)
        return self.recv(timeout=timeout)

    def send_many(self, messages) -> None:
        """Send a burst of messages in order.

        Semantically ``for m in messages: send(m)``; transports that can
        batch the write (TCP) override this to amortize the syscall.
        """
        for message in messages:
            self.send(message)

    def __enter__(self) -> "Channel":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class Listener(ABC):
    """A bound, listening endpoint that accepts inbound channels."""

    @property
    @abstractmethod
    def endpoint(self) -> Endpoint:
        """The (host, port) this listener is bound to."""

    @abstractmethod
    def accept(self, timeout: float | None = None) -> Channel:
        """Block for the next inbound channel."""

    @abstractmethod
    def close(self) -> None:
        """Stop accepting; idempotent.  Blocked ``accept`` calls raise."""

    @property
    @abstractmethod
    def closed(self) -> bool: ...

    def __enter__(self) -> "Listener":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class Transport(ABC):
    """Factory for listeners and outbound channels on some network."""

    @abstractmethod
    def listen(self, host: str, port: int = 0) -> Listener:
        """Bind a listener on ``host``.  ``port=0`` picks a free port."""

    @abstractmethod
    def connect(self, src_host: str, endpoint: Endpoint, timeout: float | None = None) -> Channel:
        """Open a channel from ``src_host`` to ``endpoint``.

        Raises ``FirewallBlockedError`` when the network forbids it and
        ``ConnectError`` when nothing is listening.
        """
