"""Deterministic fault injection over any transport.

The paper requires that "the RM must be able to detect these failures
[AP, RT, AS], respond to them" — and you cannot trust recovery code you
have never run.  This module wraps a :class:`~repro.transport.base.
Transport` (in-memory or TCP alike) with a **seeded fault plan** that
perturbs sends per channel:

* ``drop``   — the frame silently disappears (the channel stays up);
* ``delay``  — the frame is delivered after a pause;
* ``dup``    — the frame is delivered twice;
* ``sever``  — the frame is lost *and* the channel dies, as if the
  connection was cut mid-write.

Every decision comes from a per-channel ``random.Random`` seeded with
``(plan seed, channel sequence number)``, so a given seed replays the
same fault schedule run after run — chaos you can bisect.

Activation is either programmatic (build a :class:`FaultPlan`, wrap the
transport in :class:`FaultInjectTransport`) or environmental: set
``TDP_FAULTPLAN`` (e.g. ``seed:42`` or
``seed:7,sever:0.1,delay:0.2@0.005``) and pass transports through
:func:`from_env`.  By default only *outbound* (connect-side) channels
are perturbed — severing a server's push channel loses notifications
that no replay protocol can recover, while severing a client channel
exercises exactly the reconnect/replay machinery the attribute-space
session layer ships.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import Any

from repro import obs
from repro.errors import ChannelClosedError, ProtocolError
from repro.net.address import Endpoint
from repro.transport.base import Channel, Listener, Message, Transport
from repro.util.log import get_logger
from repro.util.sync import AtomicCounter, tracked_lock

_log = get_logger("transport.faultinject")

#: Environment variable consulted by :func:`from_env`.
ENV_VAR = "TDP_FAULTPLAN"

#: The four per-send actions a plan can inject.
ACTIONS = ("drop", "delay", "dup", "sever")

#: Which side(s) of a connection get the fault-injecting wrapper.
SCOPES = ("connect", "accept", "both")


@dataclass(frozen=True)
class FaultPlan:
    """A seeded, rate-based schedule of channel faults.

    Rates are per-send probabilities drawn from the channel's own seeded
    RNG.  ``script`` pins exact actions for tests: it maps
    ``(channel_seq, send_index)`` (both 0-based, counting channels in
    creation order and sends per channel) to an action name, and wins
    over the probabilistic rates for that send.
    """

    seed: int = 0
    drop_rate: float = 0.0
    dup_rate: float = 0.0
    sever_rate: float = 0.0
    delay_rate: float = 0.0
    delay_seconds: float = 0.002
    #: "connect" (default), "accept", or "both" — which channel ends to wrap.
    scope: str = "connect"
    #: (channel_seq, send_index) -> action, overriding the rates.
    script: dict[tuple[int, int], str] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.scope not in SCOPES:
            raise ValueError(f"scope must be one of {SCOPES}, got {self.scope!r}")
        for (_key, action) in self.script.items():
            if action not in ACTIONS:
                raise ValueError(f"unknown scripted action {action!r}")

    @staticmethod
    def parse(spec: str) -> "FaultPlan":
        """Parse a ``TDP_FAULTPLAN`` spec string.

        Comma-separated ``key:value`` entries: ``seed:int``, ``drop:p``,
        ``dup:p``, ``sever:p``, ``delay:p@seconds``, ``scope:name``.  A
        spec naming only a seed gets the default chaos mix (severs plus
        small delays — the faults a reliable-channel stack can actually
        recover from).
        """
        fields: dict[str, Any] = {}
        for part in spec.split(","):
            part = part.strip()
            if not part:
                continue
            if ":" not in part:
                raise ProtocolError(f"bad fault plan entry {part!r} in {spec!r}")
            key, _, value = part.partition(":")
            key = key.strip()
            value = value.strip()
            try:
                if key == "seed":
                    fields["seed"] = int(value)
                elif key == "drop":
                    fields["drop_rate"] = float(value)
                elif key == "dup":
                    fields["dup_rate"] = float(value)
                elif key == "sever":
                    fields["sever_rate"] = float(value)
                elif key == "delay":
                    prob, _, secs = value.partition("@")
                    fields["delay_rate"] = float(prob)
                    if secs:
                        fields["delay_seconds"] = float(secs)
                elif key == "scope":
                    fields["scope"] = value
                else:
                    raise ProtocolError(f"unknown fault plan key {key!r} in {spec!r}")
            except ValueError as e:
                raise ProtocolError(f"bad fault plan value {part!r}: {e}") from None
        if set(fields) <= {"seed", "scope"}:
            # Bare seed: the default recoverable-chaos mix.
            fields.setdefault("sever_rate", 0.04)
            fields.setdefault("delay_rate", 0.05)
            fields.setdefault("delay_seconds", 0.002)
        return FaultPlan(**fields)

    def wrap_side(self, side: str) -> bool:
        return self.scope == "both" or self.scope == side


class FaultInjectChannel(Channel):
    """A channel whose sends pass through the fault plan.

    Receives are never perturbed: every injected fault is modeled at the
    sender (where real networks lose, delay, and duplicate writes), so
    one wrapped end suffices to perturb one direction.
    """

    def __init__(
        self,
        inner: Channel,
        plan: FaultPlan,
        seq: int,
        counters: dict[str, obs.Counter],
    ):
        import random

        self._inner = inner
        self._plan = plan
        self.seq = seq
        self._counters = counters
        self._rng = random.Random(f"{plan.seed}:{seq}")
        self._send_index = 0
        self._lock = tracked_lock("transport.faultinject.FaultInjectChannel._lock")

    # -- fault decisions ------------------------------------------------------

    def _decide(self) -> str | None:
        """Pick the action for the next send (None = deliver normally)."""
        return self._decide_indexed()[0]

    def _decide_indexed(self) -> tuple[str | None, int]:
        """Decision plus the 0-based send index it applies to — the
        ``(channel_seq, send_index)`` pair is the fault's *site*, which
        with the plan seed fully identifies it for replay."""
        with self._lock:
            index = self._send_index
            self._send_index += 1
            scripted = self._plan.script.get((self.seq, index))
            if scripted is not None:
                return scripted, index
            p = self._plan
            if not (p.drop_rate or p.dup_rate or p.sever_rate or p.delay_rate):
                return None, index
            roll = self._rng.random()
            if roll < p.sever_rate:
                return "sever", index
            roll -= p.sever_rate
            if roll < p.drop_rate:
                return "drop", index
            roll -= p.drop_rate
            if roll < p.dup_rate:
                return "dup", index
            roll -= p.dup_rate
            if roll < p.delay_rate:
                return "delay", index
            return None, index

    def _count(self, action: str) -> None:
        counter = self._counters.get(action)
        if counter is not None:
            counter.increment()

    # -- Channel interface ----------------------------------------------------

    def send(self, message: Message) -> None:
        action, index = self._decide_indexed()
        if action is None:
            self._inner.send(message)
            return
        self._count(action)
        obs.record(
            "fault.injected", actor="faultinject", action=action,
            seed=self._plan.seed, channel=self.seq, send_index=index,
        )
        if action == "drop":
            _log.debug("fault drop on channel %d", self.seq)
            return
        if action == "sever":
            _log.info("fault sever on channel %d", self.seq)
            self._inner.close()
            raise ChannelClosedError(
                f"injected sever on channel {self.seq} "
                f"({self.local_host}->{self.remote_host})"
            )
        if action == "delay":
            time.sleep(self._plan.delay_seconds)
            self._inner.send(message)
            return
        # dup: deliver twice (a retransmission the receiver must absorb).
        self._inner.send(message)
        self._inner.send(message)

    def recv(self, timeout: float | None = None) -> Message:
        return self._inner.recv(timeout=timeout)

    def close(self) -> None:
        self._inner.close()

    @property
    def closed(self) -> bool:
        return self._inner.closed

    @property
    def local_host(self) -> str:
        return self._inner.local_host

    @property
    def remote_host(self) -> str:
        return self._inner.remote_host


class _FaultInjectListener(Listener):
    def __init__(self, transport: "FaultInjectTransport", inner: Listener):
        self._transport = transport
        self._inner = inner

    @property
    def endpoint(self) -> Endpoint:
        return self._inner.endpoint

    def accept(self, timeout: float | None = None) -> Channel:
        channel = self._inner.accept(timeout=timeout)
        if self._transport.plan.wrap_side("accept"):
            return self._transport._wrap(channel)
        return channel

    def close(self) -> None:
        self._inner.close()

    @property
    def closed(self) -> bool:
        return self._inner.closed


class FaultInjectTransport(Transport):
    """Wraps a transport so its channels execute a :class:`FaultPlan`.

    Unknown attributes delegate to the wrapped transport, so callers
    that poke backend-specific surface (``.network`` on the in-memory
    transport, say) keep working against the wrapped object.
    """

    def __init__(self, inner: Transport, plan: FaultPlan):
        self._inner_transport = inner
        self.plan = plan
        self._seq = AtomicCounter()
        #: per-transport registry: chaos counts stay distinguishable when
        #: a test wraps several transports in one process
        self.metrics = obs.MetricsRegistry("faultinject")
        #: action name -> injection count (always live — chaos assertions
        #: run with or without TDP_OBS; obs counters keep the old
        #: AtomicCounter ``increment``/``value`` surface)
        self.fault_counts: dict[str, obs.Counter] = {
            action: self.metrics.counter(f"faults.{action}") for action in ACTIONS
        }

    @property
    def inner(self) -> Transport:
        return self._inner_transport

    def _wrap(self, channel: Channel) -> FaultInjectChannel:
        seq = self._seq.increment() - 1
        return FaultInjectChannel(channel, self.plan, seq, self.fault_counts)

    def listen(self, host: str, port: int = 0) -> Listener:
        listener = self._inner_transport.listen(host, port)
        if not self.plan.wrap_side("accept"):
            # Accept-side injection is off: return the inner listener
            # unwrapped so backend-specific server surface (the TCP
            # listener's event-loop factory) stays reachable.  Connect-
            # side plans still perturb every channel end they wrap.
            return listener
        return _FaultInjectListener(self, listener)

    def connect(
        self, src_host: str, endpoint: Endpoint, timeout: float | None = None
    ) -> Channel:
        channel = self._inner_transport.connect(src_host, endpoint, timeout=timeout)
        if self.plan.wrap_side("connect"):
            return self._wrap(channel)
        return channel

    def injected_total(self) -> int:
        return sum(c.value for c in self.fault_counts.values())

    def __getattr__(self, name: str) -> Any:
        return getattr(self._inner_transport, name)


def from_env(transport: Transport, env_var: str = ENV_VAR) -> Transport:
    """Wrap ``transport`` when a fault plan is configured, else pass through.

    The activation point for seeded chaos runs: test fixtures and
    daemon bootstrap paths route their transports through here, and
    ``TDP_FAULTPLAN=seed:42`` turns the whole stack hostile without a
    code change.
    """
    spec = os.environ.get(env_var, "")
    if not spec:
        return transport
    return FaultInjectTransport(transport, FaultPlan.parse(spec))
