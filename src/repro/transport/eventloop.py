"""Selectors-based server event loop: many connections, one thread.

The thread-per-connection server costs two threads per peer (reader +
writer); ten thousand idle subscribers would need twenty thousand
threads.  This loop multiplexes everything a server socket does onto a
single thread:

* **accept** — the listening socket is non-blocking; a readiness event
  drains the whole accept backlog.
* **handshake** — each accepted connection gets a per-connection hello
  deadline (so one connected-but-silent client cannot stall admission
  for anyone else — the head-of-line block the old inline handshake
  had) and a bounded preamble buffer.  The hello negotiates the frame
  body codec exactly like the blocking accept path.
* **read** — ready sockets feed :class:`~repro.transport.framing.FrameReader`
  and every decoded frame is handed to the ``on_message`` callback on
  the loop thread.
* **write backpressure** — sends from any thread append encoded frames
  to a per-connection bounded buffer; the loop drains it as the socket
  accepts bytes, registering write interest only while a partial frame
  is stuck.  ``offer`` reports overflow to the caller, which applies
  its slow-subscriber policy (the loop never blocks and never drops
  silently).

Handler contract (all callbacks run on the loop thread; they must not
block):

* ``on_channel(channel) -> token | None`` — a peer completed its hello.
  Return any token to accept (it is passed back on later callbacks) or
  ``None`` to refuse, which closes the socket.
* ``on_message(token, message)`` — one decoded frame.
* ``on_closed(token)`` — fired exactly once per accepted connection,
  whatever closed it (peer EOF, protocol garbage, overflow policy,
  loop shutdown).
"""

from __future__ import annotations

import collections
import selectors
import socket
import threading
import time
from typing import Any, Callable

from repro import obs
from repro.errors import ChannelClosedError, ProtocolError
from repro.transport import framing
from repro.transport.base import Channel, Message
from repro.util.log import get_logger
from repro.util.sync import tracked_lock
from repro.util.threads import spawn

_log = get_logger("transport.eventloop")

#: Mirrors the blocking accept path (transport.tcp): hello deadline and
#: preamble cap per handshaking connection.
HELLO_TIMEOUT = 5.0
HELLO_MAX_BYTES = 64 * 1024

_RECV_CHUNK = 262144

#: cap on bytes joined into one coalesced send() — bounds the copy and
#: keeps a single fat connection from monopolizing the loop
_FLUSH_BATCH = 131072

# selector-key markers for the two non-connection fds
_ACCEPT = object()
_WAKER = object()


class _Conn:
    """Per-connection state; mutated on the loop thread.

    ``out``/``out_frames``/``closing`` are also touched by off-loop
    senders and close calls — those fields are only read or written
    under the loop's ``_lock`` (except volatile racy reads noted
    inline).
    """

    def __init__(self, sock: socket.socket, deadline: float):
        self.sock = sock
        self.fd = sock.fileno()
        self.reader = framing.FrameReader()
        # tdp-guard: peer -> volatile
        # (written once during the hello on the loop thread; off-loop
        # readers — remote_host, send-error messages — see either the
        # placeholder or the final name, both safe)
        self.peer = "?"
        # tdp-guard: codec -> volatile
        # (written once during the hello on the loop thread before
        # on_channel publishes the connection; off-loop senders read it
        # after that happens-before edge)
        self.codec: str | None = None
        self.established = False
        self.deadline = deadline
        # tdp-guard: token -> confined:transport.eventloop.ServerSocketLoop._run
        # (set at hello completion, cleared at teardown; _drain_closes
        # only runs teardown on the loop thread — off-loop closers just
        # enqueue and wake)
        self.token: Any = None
        self.channel: "LoopChannel | None" = None
        # outbound byte frames (bytes or memoryview tails); guarded by
        # the loop lock.  ``None`` when empty so 10k idle subscribers
        # keep no queue allocated — a deque costs ~0.7 KB each.
        self.out: collections.deque | None = None
        self.out_frames = 0
        # tdp-guard: closing -> volatile
        # (monotonic latch: set under the loop lock, read lock-free by
        # the loop thread between callbacks by design)
        self.closing = False
        # tdp-guard: want_write -> confined:transport.eventloop.ServerSocketLoop._run
        # (selector interest is loop-thread bookkeeping only)
        self.want_write = False


class LoopChannel(Channel):
    """Push-mode channel for one loop-managed connection.

    Inbound frames arrive via the loop's ``on_message`` callback, so
    ``recv`` is unsupported.  ``send``/``offer`` enqueue onto the loop's
    per-connection outbound buffer from any thread.
    """

    loop_managed = True

    def __init__(self, loop: "ServerSocketLoop", conn: _Conn):
        self._loop = loop
        self._conn = conn

    def send(self, message: Message) -> None:
        self._loop._enqueue(self._conn, message, None)

    def offer(self, message: Message, maxsize: int | None) -> bool:
        """Enqueue unless the outbound buffer holds ``maxsize`` frames.

        Mirrors ``WaitableQueue.offer`` so the server's slow-subscriber
        policy is transport-agnostic: ``False`` means the peer is not
        draining and the caller decides its fate.
        """
        return self._loop._enqueue(self._conn, message, maxsize)

    def recv(self, timeout: float | None = None) -> Message:
        raise ProtocolError("loop-managed channel delivers via on_message")

    def close(self) -> None:
        self._loop._close_conn(self._conn)

    @property
    def closed(self) -> bool:
        return self._conn.closing

    @property
    def local_host(self) -> str:
        return self._loop.local_host

    @property
    def remote_host(self) -> str:
        return self._conn.peer


class ServerSocketLoop:
    """One thread serving a listening socket and all its connections."""

    def __init__(
        self,
        sock: socket.socket,
        local_host: str,
        *,
        on_channel: Callable[[Channel], Any],
        on_message: Callable[[Any, Message], None],
        on_closed: Callable[[Any], None],
        name: str = "tdp-eventloop",
        hello_timeout: float = HELLO_TIMEOUT,
    ):
        self._sock = sock
        self._local = local_host
        self._on_channel = on_channel
        self._on_message = on_message
        self._on_closed = on_closed
        self._hello_timeout = hello_timeout
        self._lock = tracked_lock("transport.eventloop.ServerSocketLoop._lock")
        self._sel = selectors.DefaultSelector()
        # loop-thread-only state
        self._conns: dict[int, _Conn] = {}
        self._handshaking: set[_Conn] = set()
        # cross-thread state (guarded by _lock)
        self._pending_close: collections.deque[_Conn] = collections.deque()
        self._dirty: set[_Conn] = set()
        # tdp-guard: _stopped -> volatile
        # (monotonic stop latch: set under _lock, read lock-free by the
        # loop and by senders by design)
        self._stopped = False
        self._waker_r, self._waker_w = socket.socketpair()
        self._waker_r.setblocking(False)
        self._waker_w.setblocking(False)
        sock.setblocking(False)
        self._sel.register(sock, selectors.EVENT_READ, _ACCEPT)
        self._sel.register(self._waker_r, selectors.EVENT_READ, _WAKER)
        self._thread = spawn(self._run, name=name)

    @property
    def local_host(self) -> str:
        return self._local

    def connection_count(self) -> int:
        with self._lock:
            return len(self._conns)

    def stop(self) -> None:
        """Stop the loop, close every connection, join the thread."""
        with self._lock:
            if self._stopped:
                return
            self._stopped = True
        self._wake()
        if threading.get_ident() != self._thread.ident:
            self._thread.join(timeout=5.0)

    # -- outbound path (any thread) ------------------------------------------

    def _enqueue(self, st: _Conn, message: Message, maxsize: int | None) -> bool:
        payload = framing.encode_frame(message, codec=st.codec)
        if obs.enabled():
            reg = obs.registry()
            reg.counter("transport.tcp.frames").increment()
            reg.counter("transport.tcp.bytes").increment(len(payload))
        on_loop = threading.get_ident() == self._thread.ident
        with self._lock:
            if st.closing or self._stopped:
                raise ChannelClosedError(
                    f"send on closed channel {self._local}->{st.peer}"
                )
            if maxsize is not None and st.out_frames >= maxsize:
                return False
            if st.out is None:
                st.out = collections.deque()
            st.out.append(payload)
            st.out_frames += 1
            # Defer the actual write in both cases: on the loop thread
            # the batch-end _flush_dirty coalesces every frame produced
            # while dispatching one readable burst into one send().
            self._dirty.add(st)
        if not on_loop:
            self._wake()
        return True

    def _close_conn(self, st: _Conn) -> None:
        with self._lock:
            if st.closing:
                return
            st.closing = True
            self._pending_close.append(st)
        if threading.get_ident() == self._thread.ident:
            self._drain_closes()
        else:
            self._wake()

    def _wake(self) -> None:
        try:
            self._waker_w.send(b"\0")
        except OSError:
            pass  # waker full or closed: the loop is waking anyway

    # -- loop thread ---------------------------------------------------------

    def _run(self) -> None:
        try:
            while not self._stopped:
                events = self._sel.select(self._poll_timeout())
                if self._stopped:
                    break
                for key, mask in events:
                    data = key.data
                    if data is _ACCEPT:
                        self._do_accept()
                    elif data is _WAKER:
                        self._drain_waker()
                    else:
                        if mask & selectors.EVENT_WRITE and not data.closing:
                            self._flush(data)
                        if mask & selectors.EVENT_READ and not data.closing:
                            self._do_read(data)
                self._flush_dirty()
                self._expire_hellos()
                self._drain_closes()
        finally:
            self._teardown()

    def _poll_timeout(self) -> float | None:
        if not self._handshaking:
            return None
        soonest = min(st.deadline for st in self._handshaking)
        return max(0.0, soonest - time.monotonic())

    def _do_accept(self) -> None:
        while True:
            try:
                conn, _addr = self._sock.accept()
            except (BlockingIOError, InterruptedError):
                return
            except OSError:
                # Listener closed under us; stop() follows shortly.
                return
            conn.setblocking(False)
            try:
                conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            except OSError:
                pass
            st = _Conn(conn, time.monotonic() + self._hello_timeout)
            with self._lock:
                self._conns[st.fd] = st
            self._handshaking.add(st)
            self._sel.register(conn, selectors.EVENT_READ, st)

    def _do_read(self, st: _Conn) -> None:
        try:
            data = st.sock.recv(_RECV_CHUNK)
        except (BlockingIOError, InterruptedError):
            return
        except OSError:
            self._close_conn(st)
            return
        if not data:
            self._close_conn(st)
            return
        try:
            messages = st.reader.feed(data)
        except ProtocolError as e:
            _log.warning("%s: dropping %s: %s", self._local, st.peer, e)
            self._close_conn(st)
            return
        if not st.established:
            messages = self._complete_hello(st, messages)
            if messages is None:
                return
        token = st.token
        for message in messages:
            if st.closing:
                break
            self._on_message(token, message)

    def _complete_hello(self, st: _Conn, messages: list) -> list | None:
        """Process the hello; returns the coalesced trailing frames."""
        if not messages:
            if st.reader.pending_bytes > HELLO_MAX_BYTES:
                _log.warning(
                    "%s: dropping peer: %d preamble bytes without a hello",
                    self._local, st.reader.pending_bytes,
                )
                self._close_conn(st)
                return None
            return None
        hello = messages[0]
        if "hello" not in hello:
            _log.warning("%s: dropping peer: first frame was not a hello", self._local)
            self._close_conn(st)
            return None
        st.peer = str(hello["hello"])
        st.codec = framing.negotiate_codec(hello.get("codecs"))
        st.established = True
        self._handshaking.discard(st)
        st.channel = LoopChannel(self, st)
        token = self._on_channel(st.channel)
        if token is None:
            self._close_conn(st)
            return None
        st.token = token
        if "codecs" in hello:
            # Ack before any reply so the peer can adopt the codec for
            # everything after its hello.
            try:
                self._enqueue(st, {"hello_ack": self._local, "codec": st.codec}, None)
            except ChannelClosedError:
                return None
        return messages[1:]

    def _flush(self, st: _Conn) -> None:
        """Drain the outbound buffer until empty or the socket stalls.

        Queued frames are joined up to ``_FLUSH_BATCH`` bytes per
        ``send()`` — under a pipelining client one syscall carries a
        whole burst of replies instead of one each.
        """
        while True:
            with self._lock:
                if not st.out:
                    break
                bufs = []
                size = 0
                for frame in st.out:
                    bufs.append(frame)
                    size += len(frame)
                    if size >= _FLUSH_BATCH:
                        break
            payload = bufs[0] if len(bufs) == 1 else b"".join(bufs)
            try:
                sent = st.sock.send(payload)
            except (BlockingIOError, InterruptedError):
                self._set_write_interest(st, True)
                return
            except OSError:
                self._close_conn(st)
                return
            with self._lock:
                remaining = sent
                while remaining and st.out:
                    head = st.out[0]
                    if remaining >= len(head):
                        remaining -= len(head)
                        st.out.popleft()
                        st.out_frames -= 1
                    else:
                        st.out[0] = memoryview(head)[remaining:]
                        remaining = 0
                if not st.out:
                    st.out = None
            if sent < size:
                self._set_write_interest(st, True)
                return
        self._set_write_interest(st, False)

    def _set_write_interest(self, st: _Conn, on: bool) -> None:
        if st.closing or st.want_write == on:
            return
        st.want_write = on
        events = selectors.EVENT_READ | (selectors.EVENT_WRITE if on else 0)
        try:
            self._sel.modify(st.sock, events, st)
        except (KeyError, ValueError, OSError):
            pass

    def _flush_dirty(self) -> None:
        with self._lock:
            if not self._dirty:
                return
            dirty = list(self._dirty)
            self._dirty.clear()
        for st in dirty:
            if not st.closing:
                self._flush(st)

    def _expire_hellos(self) -> None:
        if not self._handshaking:
            return
        now = time.monotonic()
        for st in list(self._handshaking):
            if now >= st.deadline:
                _log.info("%s: dropping peer: no hello within %.1fs",
                          self._local, self._hello_timeout)
                self._close_conn(st)

    def _drain_waker(self) -> None:
        while True:
            try:
                if not self._waker_r.recv(4096):
                    return
            except (BlockingIOError, InterruptedError):
                return
            except OSError:
                return

    def _drain_closes(self) -> None:
        while True:
            with self._lock:
                st = self._pending_close.popleft() if self._pending_close else None
            if st is None:
                return
            self._teardown_conn(st)

    def _teardown_conn(self, st: _Conn) -> None:
        with self._lock:
            self._conns.pop(st.fd, None)
        self._handshaking.discard(st)
        try:
            self._sel.unregister(st.sock)
        except (KeyError, ValueError, OSError):
            pass
        self._final_flush(st)
        try:
            st.sock.close()
        except OSError:
            pass
        if st.token is not None:
            token, st.token = st.token, None
            self._on_closed(token)

    def _final_flush(self, st: _Conn) -> None:
        # Best-effort graceful drain: whatever replies were already
        # queued go out if the socket will take them without blocking.
        while True:
            with self._lock:
                buf = st.out.popleft() if st.out else None  # None-safe: falsy
            if buf is None:
                return
            try:
                sent = st.sock.send(buf)
            except OSError:
                return
            if sent < len(buf):
                return

    def _teardown(self) -> None:
        for st in list(self._conns.values()):
            with self._lock:
                st.closing = True
            self._teardown_conn(st)
        try:
            self._sel.unregister(self._sock)
        except (KeyError, ValueError, OSError):
            pass
        try:
            self._sel.unregister(self._waker_r)
        except (KeyError, ValueError, OSError):
            pass
        self._sel.close()
        self._waker_r.close()
        self._waker_w.close()
