"""Message transport: channels, listeners, in-memory and TCP backends, proxy.

Every daemon-to-daemon conversation in the library (attribute space
clients to LASS/CASS, tool daemons to their front-end, proxy tunnels)
runs over the :class:`~repro.transport.base.Channel` abstraction, so the
same protocol code works on the simulated network (with firewalls and
latency) and on real localhost TCP sockets.
"""

from repro.transport.base import Channel, Listener, Transport
from repro.transport.inmem import InMemoryTransport
from repro.transport.tcp import TcpTransport
from repro.transport.proxy import ProxyServer, connect_via_proxy
from repro.transport.faultinject import FaultInjectTransport, FaultPlan, from_env

__all__ = [
    "Channel",
    "Listener",
    "Transport",
    "InMemoryTransport",
    "TcpTransport",
    "ProxyServer",
    "connect_via_proxy",
    "FaultInjectTransport",
    "FaultPlan",
    "from_env",
]
