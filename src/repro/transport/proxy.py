"""Proxy tunnel: the RM-provided path across a private network.

Paper Section 2.4: "Process managers, such as Condor and Globus, provide
proxy mechanisms to forward their connections in and out of a private
network.  TDP provides a standard interface to these mechanisms."

The :class:`ProxyServer` runs on a gateway host that the firewall lets
through (in the Condor pilot, the starter's host can reach the submit
machine).  A client inside the private zone connects to the proxy and
sends a ``proxy_connect`` preamble naming the real target; the proxy
dials the target *from its own host* and then pumps frames both ways.
:func:`connect_via_proxy` wraps this handshake so callers get back an
ordinary :class:`~repro.transport.base.Channel`.
"""

from __future__ import annotations

import threading

from repro import obs
from repro.errors import ChannelClosedError, ConnectError, ProxyError, TdpError
from repro.net.address import Endpoint, parse_endpoint
from repro.transport.base import Channel, Listener, Message, Transport
from repro.util.ids import fresh_token
from repro.util.log import get_logger
from repro.util.threads import spawn

_log = get_logger("transport.proxy")


class ProxyServer:
    """Frame-forwarding proxy bound on a gateway host.

    Thread model: one acceptor thread, plus two pump threads per tunnel
    (one per direction).  ``stop()`` closes the listener and every live
    tunnel.
    """

    def __init__(self, transport: Transport, host: str, port: int = 0):
        self._transport = transport
        self._host = host
        self._listener: Listener = transport.listen(host, port)
        self._tunnels: dict[str, tuple[Channel, Channel]] = {}
        self._lock = threading.Lock()
        self._stopped = False
        self._acceptor = spawn(self._accept_loop, name=f"proxy-accept-{host}")

    @property
    def endpoint(self) -> Endpoint:
        """Where clients must connect to reach this proxy."""
        return self._listener.endpoint

    @property
    def tunnel_count(self) -> int:
        with self._lock:
            return len(self._tunnels)

    def _accept_loop(self) -> None:
        while True:
            try:
                inbound = self._listener.accept()
            except TdpError:
                return  # listener closed
            spawn(self._handshake, args=(inbound,), name=f"proxy-handshake-{self._host}")

    def _handshake(self, inbound: Channel) -> None:
        try:
            first = inbound.recv(timeout=10.0)
        except TdpError:
            inbound.close()
            return
        target_s = first.get("proxy_connect")
        if not isinstance(target_s, str):
            inbound.send({"proxy_error": "expected proxy_connect preamble"})
            inbound.close()
            return
        try:
            target = parse_endpoint(target_s)
            outbound = self._transport.connect(self._host, target)
        except TdpError as e:
            try:
                inbound.send({"proxy_error": str(e)})
            except TdpError:
                pass
            inbound.close()
            return
        tunnel_id = fresh_token("tunnel")
        with self._lock:
            if self._stopped:
                inbound.close()
                outbound.close()
                return
            self._tunnels[tunnel_id] = (inbound, outbound)
        inbound.send({"proxy_ok": True, "tunnel": tunnel_id})
        _log.debug("tunnel %s: %s -> %s", tunnel_id, inbound.remote_host, target)
        for src, dst, tag in ((inbound, outbound, "in->out"), (outbound, inbound, "out->in")):
            spawn(self._pump, args=(tunnel_id, src, dst), name=f"proxy-pump-{tag}")

    def _pump(self, tunnel_id: str, src: Channel, dst: Channel) -> None:
        try:
            while True:
                message = src.recv()
                if obs.enabled():
                    obs.registry().counter("transport.proxy.forwarded").increment()
                dst.send(message)
        except TdpError:
            pass
        finally:
            src.close()
            dst.close()
            with self._lock:
                self._tunnels.pop(tunnel_id, None)

    def stop(self) -> None:
        with self._lock:
            self._stopped = True
            tunnels = list(self._tunnels.values())
            self._tunnels.clear()
        self._listener.close()
        for a, b in tunnels:
            a.close()
            b.close()


def connect_via_proxy(
    transport: Transport,
    src_host: str,
    proxy: Endpoint,
    target: Endpoint,
    timeout: float | None = 10.0,
) -> Channel:
    """Open a channel to ``target`` tunneled through ``proxy``.

    The returned channel behaves exactly like a direct one; the proxy
    handshake is consumed here.  Raises :class:`ProxyError` when the
    proxy cannot reach the target.
    """
    channel = transport.connect(src_host, proxy, timeout=timeout)
    try:
        channel.send({"proxy_connect": str(target)})
        reply = channel.recv(timeout=timeout)
    except ChannelClosedError as e:
        raise ProxyError(f"proxy {proxy} dropped the handshake: {e}") from e
    if not reply.get("proxy_ok"):
        channel.close()
        raise ProxyError(
            f"proxy {proxy} could not reach {target}: {reply.get('proxy_error', 'unknown error')}"
        )
    return channel


def connect_maybe_proxied(
    transport: Transport,
    src_host: str,
    target: Endpoint,
    proxy: Endpoint | None,
    timeout: float | None = 10.0,
) -> Channel:
    """Connect directly when the network allows it, else via the proxy.

    This is the decision rule the paper assigns to TDP: hand the daemon a
    host/port that is either the real address or the RM proxy's, without
    the daemon caring which (Section 2.4).  Here the fallback is dynamic:
    try direct, and on a firewall block use the proxy if one was given.
    """
    try:
        return transport.connect(src_host, target, timeout=timeout)
    except ConnectError:
        if proxy is None:
            raise
        return connect_via_proxy(transport, src_host, proxy, target, timeout=timeout)
