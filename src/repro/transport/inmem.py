"""In-memory transport over the simulated network.

Channels are queue pairs; ``connect`` consults the
:class:`~repro.net.topology.Network` firewall rules and (optionally)
sleeps for the modeled link latency, so timing experiments see zone
boundaries.  Every message round-trips through the JSON frame codec to
guarantee wire-serializability (see :mod:`repro.transport.framing`).
"""

from __future__ import annotations

import threading

from repro import obs
from repro.errors import (
    ChannelClosedError,
    ConnectError,
    GetTimeoutError,
    ProtocolError,
)
from repro.net.address import Endpoint
from repro.net.topology import Network
from repro.transport import framing
from repro.transport.base import Channel, Listener, Message, Transport
from repro.util.sync import WaitableQueue


class _InMemChannel(Channel):
    """One end of a queue-pair channel."""

    def __init__(self, local_host: str, remote_host: str, latency: float):
        self._local = local_host
        self._remote = remote_host
        self._latency = latency
        self._rx: WaitableQueue[Message] = WaitableQueue()
        self._peer: _InMemChannel | None = None  # set by _pair()
        self._closed = False
        self._lock = threading.Lock()

    @staticmethod
    def pair(host_a: str, host_b: str, latency: float = 0.0) -> tuple["_InMemChannel", "_InMemChannel"]:
        """Create a connected channel pair (a on host_a, b on host_b)."""
        a = _InMemChannel(host_a, host_b, latency)
        b = _InMemChannel(host_b, host_a, latency)
        a._peer = b
        b._peer = a
        return a, b

    def send(self, message: Message) -> None:
        if obs.enabled():
            reg = obs.registry()
            reg.counter("transport.inmem.frames").increment()
            reg.counter("transport.inmem.bytes").increment(
                len(framing.encode_frame(message))
            )
        message = framing.roundtrip(message)  # enforce serializability
        with self._lock:
            if self._closed:
                raise ChannelClosedError(f"send on closed channel {self._local}->{self._remote}")
            peer = self._peer
        assert peer is not None
        if self._latency > 0:
            import time

            time.sleep(self._latency)
        try:
            peer._rx.put(message)
        except ChannelClosedError:
            raise ChannelClosedError(
                f"peer {self._remote} closed channel from {self._local}"
            ) from None

    def recv(self, timeout: float | None = None) -> Message:
        try:
            return self._rx.get(timeout=timeout)
        except GetTimeoutError:
            raise
        except ChannelClosedError:
            raise ChannelClosedError(
                f"channel {self._local}<-{self._remote} closed"
            ) from None

    def close(self) -> None:
        with self._lock:
            if self._closed:
                return
            self._closed = True
            peer = self._peer
        # Close our receive side immediately and the peer's receive side so
        # its blocked readers wake after draining in-flight messages.
        self._rx.close()
        if peer is not None:
            peer._rx.close()
            with peer._lock:
                peer._closed = True

    @property
    def closed(self) -> bool:
        with self._lock:
            return self._closed

    @property
    def local_host(self) -> str:
        return self._local

    @property
    def remote_host(self) -> str:
        return self._remote


class _InMemListener(Listener):
    def __init__(self, transport: "InMemoryTransport", endpoint: Endpoint):
        self._transport = transport
        self._endpoint = endpoint
        self._backlog: WaitableQueue[Channel] = WaitableQueue()
        self._closed = False

    @property
    def endpoint(self) -> Endpoint:
        return self._endpoint

    def accept(self, timeout: float | None = None) -> Channel:
        try:
            return self._backlog.get(timeout=timeout)
        except ChannelClosedError:
            raise ChannelClosedError(f"listener {self._endpoint} closed") from None

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self._transport._unbind(self._endpoint)
        self._backlog.close()

    @property
    def closed(self) -> bool:
        return self._closed

    def _enqueue(self, channel: Channel) -> None:
        self._backlog.put(channel)


class InMemoryTransport(Transport):
    """Transport over a simulated :class:`Network`.

    Port numbers are per-host; ``listen(host, 0)`` allocates ephemeral
    ports starting at 30000 (mirroring an OS ephemeral range, and keeping
    well-known service ports free for explicit binds).
    """

    EPHEMERAL_BASE = 30000

    def __init__(self, network: Network, apply_latency: bool = False):
        self._network = network
        self._apply_latency = apply_latency
        self._listeners: dict[tuple[str, int], _InMemListener] = {}
        self._next_port: dict[str, int] = {}
        self._lock = threading.Lock()

    @property
    def network(self) -> Network:
        return self._network

    def listen(self, host: str, port: int = 0) -> Listener:
        # Validates the host exists in the topology.
        self._network.zone_of(host)
        with self._lock:
            if port == 0:
                port = self._next_port.get(host, self.EPHEMERAL_BASE)
                while (host, port) in self._listeners:
                    port += 1
                self._next_port[host] = port + 1
            key = (host, port)
            if key in self._listeners:
                raise ConnectError(f"address in use: {host}:{port}")
            listener = _InMemListener(self, Endpoint(host, port))
            self._listeners[key] = listener
            return listener

    def connect(self, src_host: str, endpoint: Endpoint, timeout: float | None = None) -> Channel:
        self._network.check(src_host, endpoint.host, endpoint.port)
        with self._lock:
            listener = self._listeners.get((endpoint.host, endpoint.port))
        if listener is None or listener.closed:
            raise ConnectError(f"connection refused: nothing listening at {endpoint}")
        latency = self._network.latency(src_host, endpoint.host) if self._apply_latency else 0.0
        client_end, server_end = _InMemChannel.pair(src_host, endpoint.host, latency)
        try:
            listener._enqueue(server_end)
        except ChannelClosedError:
            raise ConnectError(f"connection refused: listener at {endpoint} closed") from None
        return client_end

    def _unbind(self, endpoint: Endpoint) -> None:
        with self._lock:
            self._listeners.pop((endpoint.host, endpoint.port), None)

    def open_listeners(self) -> list[Endpoint]:
        """Endpoints currently bound (diagnostics/tests)."""
        with self._lock:
            return sorted(l.endpoint for l in self._listeners.values())

    def close_all(self) -> None:
        """Close every listener (scenario teardown)."""
        with self._lock:
            listeners = list(self._listeners.values())
        for l in listeners:
            l.close()


def loopback_transport(hostname: str = "localhost") -> InMemoryTransport:
    """Single-host in-memory transport (unit-test convenience)."""
    from repro.net.topology import flat_network

    return InMemoryTransport(flat_network([hostname]))
