"""Real TCP transport (127.0.0.1).

Demonstrates that the protocol stack is not simulation-bound: the same
attribute-space server and TDP client code run over genuine sockets.
Host names are logical labels carried in a small connect preamble (all
sockets physically bind to loopback), so code written against the
simulated network runs unchanged.

The connect hello also negotiates the frame-body codec: the client
advertises ``{"codecs": [...]}``, the server picks the first name it
supports (JSON is the mandatory fallback) and answers with a
``{"hello_ack": ..., "codec": ...}`` frame before any reply.  A peer
that advertises nothing gets no ack and stays on JSON — old clients
keep working unchanged.

Channels here are threadless: ``recv`` reads the socket directly (a
``select`` wait gives queue-identical timeout semantics), so a client
connection costs one file descriptor, not a reader thread.  Server-side
connection multiplexing lives in :mod:`repro.transport.eventloop`; the
blocking ``accept()`` below remains for handler-thread servers and
fault-injection wrapping.
"""

from __future__ import annotations

import collections
import select
import socket
import time

from repro import obs
from repro.errors import ChannelClosedError, ConnectError, GetTimeoutError, ProtocolError
from repro.net.address import Endpoint
from repro.transport import framing
from repro.transport.base import Channel, Listener, Message, Transport
from repro.util.sync import tracked_lock

_BIND_ADDR = "127.0.0.1"

#: How long an accepted connection gets to complete its hello.
HELLO_TIMEOUT = 5.0

#: Preamble cap: a peer that buffers this much without completing a
#: hello frame is garbage, not slow (a real hello is tens of bytes).
HELLO_MAX_BYTES = 64 * 1024


def _set_nodelay(sock: socket.socket) -> None:
    # Nagle batches small frames; every TDP frame is a small
    # request/reply, so delayed-ack interaction would add up to 40ms
    # to the latency percentiles the bench records.
    try:
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
    except OSError:
        pass


class _TcpChannel(Channel):
    """Channel over a connected socket, read directly (no reader thread).

    ``recv`` pulls from the socket under ``_recv_lock``; timeouts use a
    ``select`` readiness wait so the socket itself stays blocking and a
    concurrent ``sendall`` is never perturbed.  ``close`` (or peer EOF)
    wakes a blocked reader via ``shutdown``.  Decoded-but-undelivered
    frames queue in ``_pending`` and drain before a close is reported,
    preserving the graceful-drain semantics of the old reader thread.
    """

    def __init__(
        self,
        sock: socket.socket,
        local_host: str,
        remote_host: str,
        *,
        frame_reader: framing.FrameReader | None = None,
        pending: tuple[Message, ...] = (),
        send_codec: str | None = None,
        expect_ack: bool = False,
    ):
        self._sock = sock
        self._local = local_host
        self._remote = remote_host
        # Frames the accept-side preamble read pulled off the socket
        # along with the hello (one recv can return several coalesced
        # frames) — they must reach the receiver, in order, ahead of
        # anything read later.  ``None`` when empty: an idle connection
        # keeps no queue allocated (the 10k-subscriber scaling case).
        self._pending: collections.deque[Message] | None = (
            collections.deque(pending) if pending else None
        )
        self._frame_reader = (
            frame_reader if frame_reader is not None else framing.FrameReader()
        )
        self._send_lock = tracked_lock("transport.tcp._TcpChannel._send_lock")
        self._recv_lock = tracked_lock("transport.tcp._TcpChannel._recv_lock")
        # tdp-guard: _closed -> volatile
        # (monotonic close latch: writes serialize under _send_lock, the
        # lock-free `closed` property read races with close by design)
        self._closed = False
        # tdp-guard: _send_codec -> volatile
        # (adopted once from the hello_ack on the receive path; a sender
        # racing the adoption just encodes one more JSON frame — the
        # per-frame header flag keeps the peer's decode correct)
        self._send_codec = send_codec
        self._expect_ack = expect_ack

    @property
    def codec(self) -> str:
        """Negotiated body-codec name (JSON until an ack says otherwise)."""
        return self._send_codec if self._send_codec is not None else framing.json_codec()

    def send(self, message: Message) -> None:
        frame = framing.encode_frame(message, codec=self._send_codec)
        if obs.enabled():
            reg = obs.registry()
            reg.counter("transport.tcp.frames").increment()
            reg.counter("transport.tcp.bytes").increment(len(frame))
        with self._send_lock:
            if self._closed:
                raise ChannelClosedError(f"send on closed channel {self._local}->{self._remote}")
            try:
                self._sock.sendall(frame)
            except OSError as e:
                # Latch closed: once one write fails, every later one
                # would too — make them fail fast rather than poke the
                # dead socket again.
                self._closed = True
                raise ChannelClosedError(f"peer {self._remote} gone: {e}") from e

    def send_many(self, messages) -> None:
        """Send a burst of frames with one write.

        Same wire bytes as repeated :meth:`send`, but the frames are
        concatenated into a single ``sendall`` — a pipelining caller
        pays one syscall per burst instead of one per frame.
        """
        frames = [
            framing.encode_frame(m, codec=self._send_codec) for m in messages
        ]
        if not frames:
            return
        payload = frames[0] if len(frames) == 1 else b"".join(frames)
        if obs.enabled():
            reg = obs.registry()
            reg.counter("transport.tcp.frames").increment(len(frames))
            reg.counter("transport.tcp.bytes").increment(len(payload))
        with self._send_lock:
            if self._closed:
                raise ChannelClosedError(f"send on closed channel {self._local}->{self._remote}")
            try:
                self._sock.sendall(payload)
            except OSError as e:
                self._closed = True
                raise ChannelClosedError(f"peer {self._remote} gone: {e}") from e

    def recv(self, timeout: float | None = None) -> Message:
        with self._recv_lock:
            return self._recv_locked(timeout)

    def _recv_locked(self, timeout: float | None) -> Message:
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            pending = self._pending
            if pending:
                message = pending.popleft()
                if not pending:
                    self._pending = None
                if self._expect_ack:
                    # The first frame after our hello may be the codec
                    # ack; it belongs to the transport, not the caller.
                    self._expect_ack = False
                    if "hello_ack" in message:
                        self._adopt_codec(message.get("codec"))
                        continue
                return message
            if self._closed:
                raise ChannelClosedError(
                    f"channel {self._local}<-{self._remote} closed"
                )
            if deadline is not None:
                remaining = deadline - time.monotonic()
                if remaining <= 0 or not _readable(self._sock, remaining):
                    raise GetTimeoutError(f"recv timed out after {timeout}s")
            try:
                data = self._sock.recv(65536)
            except OSError:
                data = b""
            if not data:
                # EOF or error: latch closed, then loop back so any
                # frames decoded from earlier chunks still deliver.
                self._latch_closed()
                continue
            try:
                frames = self._frame_reader.feed(data)
            except ProtocolError:
                self._latch_closed()
                raise
            if not frames:
                continue
            if len(frames) == 1 and not self._expect_ack:
                return frames[0]
            self._pending = collections.deque(frames)

    def _adopt_codec(self, codec: object) -> None:
        if isinstance(codec, str) and codec in framing.supported_codecs():
            self._send_codec = codec

    def _latch_closed(self) -> None:
        with self._send_lock:
            self._closed = True

    def close(self) -> None:
        with self._send_lock:
            if self._closed:
                return
            self._closed = True
        # Shutdown wakes a reader blocked in recv/select before the fd
        # is released.
        try:
            self._sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        self._sock.close()

    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def local_host(self) -> str:
        return self._local

    @property
    def remote_host(self) -> str:
        return self._remote


def _readable(sock: socket.socket, timeout: float) -> bool:
    try:
        ready, _, _ = select.select([sock], [], [], timeout)
    except (OSError, ValueError):
        return True  # let recv surface the real error
    return bool(ready)


class _TcpListener(Listener):
    def __init__(self, transport: "TcpTransport", host: str, sock: socket.socket, port: int):
        self._transport = transport
        self._host = host
        self._sock = sock
        self._endpoint = Endpoint(host, port)
        self._closed = False

    @property
    def endpoint(self) -> Endpoint:
        return self._endpoint

    def accept(self, timeout: float | None = None) -> Channel:
        self._sock.settimeout(timeout)
        try:
            conn, _addr = self._sock.accept()
        except socket.timeout:
            raise GetTimeoutError(f"accept timed out after {timeout}s") from None
        except OSError:
            raise ChannelClosedError(f"listener {self._endpoint} closed") from None
        _set_nodelay(conn)
        # Preamble: the client announces its logical host name and
        # codec support.  The recv can return protocol frames coalesced
        # behind the hello (the client sends its first request
        # immediately after connecting); everything past the hello —
        # decoded frames and the reader's partial-frame buffer — is
        # handed to the channel, not dropped.  A peer that dies, stalls
        # past the deadline, or sends garbage never becomes a channel:
        # the caller sees ChannelClosedError, not a half-dead peer "?".
        conn.settimeout(HELLO_TIMEOUT)
        reader = framing.FrameReader()
        try:
            hello, extra = self._read_hello(conn, reader)
        except (OSError, ProtocolError) as e:
            conn.close()
            raise ChannelClosedError(f"hello handshake failed: {e}") from e
        conn.settimeout(None)
        peer_host = str(hello["hello"])
        codec = framing.negotiate_codec(hello.get("codecs"))
        channel = _TcpChannel(
            conn, self._host, peer_host,
            frame_reader=reader, pending=extra, send_codec=codec,
        )
        if "codecs" in hello:
            channel.send({"hello_ack": self._host, "codec": codec})
        return channel

    @staticmethod
    def _read_hello(
        conn: socket.socket, reader: framing.FrameReader
    ) -> tuple[Message, tuple[Message, ...]]:
        while True:
            if reader.pending_bytes > HELLO_MAX_BYTES:
                raise ProtocolError(
                    f"{reader.pending_bytes} preamble bytes without a hello"
                )
            data = conn.recv(4096)
            if not data:
                raise ProtocolError("peer closed before hello")
            msgs = reader.feed(data)
            if msgs:
                if "hello" not in msgs[0]:
                    raise ProtocolError("first frame was not a hello")
                return msgs[0], tuple(msgs[1:])

    def serve_loop(self, **kwargs) -> "ServerSocketLoop":
        """Hand the listening socket to a selectors event loop.

        The returned loop owns accept + per-connection IO on one
        thread; the listener keeps ownership of the socket for
        ``close()``.  ``accept()`` must not be called once a loop is
        serving.  See :class:`repro.transport.eventloop.ServerSocketLoop`
        for the handler contract.
        """
        from repro.transport.eventloop import ServerSocketLoop

        return ServerSocketLoop(self._sock, self._host, **kwargs)

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self._transport._unbind(self._endpoint)
        # Shutdown before close: a thread blocked in accept() does not
        # wake on close() alone (Linux), and once the fd number is
        # recycled for a new listener the stale accept steals its
        # connections.  shutdown() forces the blocked accept to return.
        try:
            self._sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        self._sock.close()

    @property
    def closed(self) -> bool:
        return self._closed


class TcpTransport(Transport):
    """Transport over real loopback TCP sockets.

    Logical host names map to the single physical loopback interface;
    port allocation is delegated to the OS (``port=0``).  There is no
    firewall — the point of this backend is end-to-end realism of the
    byte protocol, not topology modeling.
    """

    def __init__(self) -> None:
        self._bound: dict[Endpoint, int] = {}  # logical endpoint -> real port
        self._lock = tracked_lock("transport.tcp.TcpTransport._lock")

    def listen(self, host: str, port: int = 0) -> Listener:
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        sock.bind((_BIND_ADDR, 0))
        sock.listen(1024)
        real_port = sock.getsockname()[1]
        logical_port = port if port != 0 else real_port
        listener = _TcpListener(self, host, sock, logical_port)
        with self._lock:
            self._bound[Endpoint(host, logical_port)] = real_port
        return listener

    def connect(self, src_host: str, endpoint: Endpoint, timeout: float | None = None) -> Channel:
        with self._lock:
            real_port = self._bound.get(endpoint)
        if real_port is None:
            raise ConnectError(f"connection refused: nothing listening at {endpoint}")
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        sock.settimeout(timeout if timeout is not None else 10.0)
        try:
            sock.connect((_BIND_ADDR, real_port))
        except OSError as e:
            sock.close()
            raise ConnectError(f"connect to {endpoint} failed: {e}") from e
        sock.settimeout(None)
        _set_nodelay(sock)
        channel = _TcpChannel(sock, src_host, endpoint.host, expect_ack=True)
        channel.send({"hello": src_host, "codecs": list(framing.supported_codecs())})
        return channel

    def _unbind(self, endpoint: Endpoint) -> None:
        with self._lock:
            self._bound.pop(endpoint, None)
