"""Real TCP transport (127.0.0.1).

Demonstrates that the protocol stack is not simulation-bound: the same
attribute-space server and TDP client code run over genuine sockets.
Host names are logical labels carried in a small connect preamble (all
sockets physically bind to loopback), so code written against the
simulated network runs unchanged.
"""

from __future__ import annotations

import socket

from repro import obs
from repro.errors import ChannelClosedError, ConnectError, GetTimeoutError
from repro.net.address import Endpoint
from repro.transport import framing
from repro.transport.base import Channel, Listener, Message, Transport
from repro.util.sync import WaitableQueue, tracked_lock
from repro.util.threads import spawn

_BIND_ADDR = "127.0.0.1"


class _TcpChannel(Channel):
    """Channel over a connected socket with a reader thread.

    A dedicated reader thread keeps ``recv`` timeout semantics identical
    to the in-memory backend (queue-based), and lets ``close`` wake
    blocked readers deterministically.
    """

    def __init__(
        self,
        sock: socket.socket,
        local_host: str,
        remote_host: str,
        *,
        frame_reader: framing.FrameReader | None = None,
        pending: tuple[Message, ...] = (),
    ):
        self._sock = sock
        self._local = local_host
        self._remote = remote_host
        self._rx: WaitableQueue[Message] = WaitableQueue()
        # Frames the accept-side preamble read pulled off the socket
        # along with the hello (one recv can return several coalesced
        # frames) — they must reach the receiver, in order, ahead of
        # anything the reader thread decodes.
        for message in pending:
            self._rx.put(message)
        self._frame_reader = (
            frame_reader if frame_reader is not None else framing.FrameReader()
        )
        self._send_lock = tracked_lock("transport.tcp._TcpChannel._send_lock")
        # tdp-guard: _closed -> volatile
        # (monotonic close latch: writes serialize under _send_lock, the
        # lock-free `closed` property read races with close by design)
        self._closed = False
        self._reader = spawn(self._read_loop, name=f"tcp-reader-{local_host}")

    def _read_loop(self) -> None:
        # Continue from the preamble's reader: its buffer may hold the
        # partial tail of a frame whose head arrived with the hello.
        reader = self._frame_reader
        try:
            while True:
                data = self._sock.recv(65536)
                if not data:
                    break
                for message in reader.feed(data):
                    self._rx.put(message)
        except (OSError, ChannelClosedError):
            pass
        finally:
            # The socket is dead (EOF or error): latch the channel closed
            # so senders fail fast instead of retrying a doomed socket.
            with self._send_lock:
                self._closed = True
            self._rx.close()

    def send(self, message: Message) -> None:
        frame = framing.encode_frame(message)
        if obs.enabled():
            reg = obs.registry()
            reg.counter("transport.tcp.frames").increment()
            reg.counter("transport.tcp.bytes").increment(len(frame))
        with self._send_lock:
            if self._closed:
                raise ChannelClosedError(f"send on closed channel {self._local}->{self._remote}")
            try:
                self._sock.sendall(frame)
            except OSError as e:
                # Latch closed: once one write fails, every later one
                # would too — make them fail fast rather than poke the
                # dead socket again.
                self._closed = True
                raise ChannelClosedError(f"peer {self._remote} gone: {e}") from e

    def recv(self, timeout: float | None = None) -> Message:
        try:
            return self._rx.get(timeout=timeout)
        except GetTimeoutError:
            raise
        except ChannelClosedError:
            raise ChannelClosedError(f"channel {self._local}<-{self._remote} closed") from None

    def close(self) -> None:
        with self._send_lock:
            if self._closed:
                return
            self._closed = True
        try:
            self._sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        self._sock.close()

    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def local_host(self) -> str:
        return self._local

    @property
    def remote_host(self) -> str:
        return self._remote


class _TcpListener(Listener):
    def __init__(self, transport: "TcpTransport", host: str, sock: socket.socket, port: int):
        self._transport = transport
        self._host = host
        self._sock = sock
        self._endpoint = Endpoint(host, port)
        self._closed = False

    @property
    def endpoint(self) -> Endpoint:
        return self._endpoint

    def accept(self, timeout: float | None = None) -> Channel:
        self._sock.settimeout(timeout)
        try:
            conn, _addr = self._sock.accept()
        except socket.timeout:
            raise GetTimeoutError(f"accept timed out after {timeout}s") from None
        except OSError:
            raise ChannelClosedError(f"listener {self._endpoint} closed") from None
        # Preamble: the client announces its logical host name.  The
        # recv can return protocol frames coalesced behind the hello
        # (the client sends its first request immediately after
        # connecting); everything past the hello — decoded frames and
        # the reader's partial-frame buffer — is handed to the channel,
        # not dropped.
        conn.settimeout(5.0)
        reader = framing.FrameReader()
        peer_host = "?"
        extra: tuple[Message, ...] = ()
        try:
            while True:
                data = conn.recv(4096)
                if not data:
                    break
                msgs = reader.feed(data)
                if msgs:
                    peer_host = str(msgs[0].get("hello", "?"))
                    extra = tuple(msgs[1:])
                    break
        except OSError:
            pass
        conn.settimeout(None)
        return _TcpChannel(
            conn, self._host, peer_host, frame_reader=reader, pending=extra
        )

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self._transport._unbind(self._endpoint)
        # Shutdown before close: a thread blocked in accept() does not
        # wake on close() alone (Linux), and once the fd number is
        # recycled for a new listener the stale accept steals its
        # connections.  shutdown() forces the blocked accept to return.
        try:
            self._sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        self._sock.close()

    @property
    def closed(self) -> bool:
        return self._closed


class TcpTransport(Transport):
    """Transport over real loopback TCP sockets.

    Logical host names map to the single physical loopback interface;
    port allocation is delegated to the OS (``port=0``).  There is no
    firewall — the point of this backend is end-to-end realism of the
    byte protocol, not topology modeling.
    """

    def __init__(self) -> None:
        self._bound: dict[Endpoint, int] = {}  # logical endpoint -> real port
        self._lock = tracked_lock("transport.tcp.TcpTransport._lock")

    def listen(self, host: str, port: int = 0) -> Listener:
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        sock.bind((_BIND_ADDR, 0))
        sock.listen(64)
        real_port = sock.getsockname()[1]
        logical_port = port if port != 0 else real_port
        listener = _TcpListener(self, host, sock, logical_port)
        with self._lock:
            self._bound[Endpoint(host, logical_port)] = real_port
        return listener

    def connect(self, src_host: str, endpoint: Endpoint, timeout: float | None = None) -> Channel:
        with self._lock:
            real_port = self._bound.get(endpoint)
        if real_port is None:
            raise ConnectError(f"connection refused: nothing listening at {endpoint}")
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        sock.settimeout(timeout if timeout is not None else 10.0)
        try:
            sock.connect((_BIND_ADDR, real_port))
        except OSError as e:
            sock.close()
            raise ConnectError(f"connect to {endpoint} failed: {e}") from e
        sock.settimeout(None)
        channel = _TcpChannel(sock, src_host, endpoint.host)
        channel.send({"hello": src_host})
        return channel

    def _unbind(self, endpoint: Endpoint) -> None:
        with self._lock:
            self._bound.pop(endpoint, None)
