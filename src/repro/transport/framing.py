"""Wire framing: length-prefixed frame bodies (JSON or negotiated binary).

Both transports speak the same frame format so a message captured on one
can be replayed on the other:

* 4-byte big-endian unsigned header: bit 31 is the body-codec flag
  (0 = UTF-8 JSON, 1 = the negotiated ``tdpb1`` binary codec), the low
  31 bits are the body length.  The flag rides every frame, so decoding
  never depends on per-connection negotiation state.
* The body must decode to an object (mapping), mirroring the
  :data:`~repro.transport.base.Message` type.

The in-memory transport also round-trips every message through this
codec.  That costs a little copying but guarantees that anything that
works on the simulated network is actually serializable — a class of bug
that otherwise only shows up when switching to real sockets.

Body serialization is delegated to the sanctioned codec in
``repro.attrspace.protocol`` (imported lazily — the attrspace package
sits above the transports in the layering); this module owns only the
length-prefix framing and size limits.
"""

from __future__ import annotations

import struct
from typing import Any

from repro.errors import ProtocolError

_codec = None


def _body_codec():
    global _codec
    if _codec is None:
        from repro.attrspace import protocol

        _codec = protocol
    return _codec


_LEN = struct.Struct(">I")

#: Upper bound on one frame; protects servers from a runaway peer.
#: Must stay below 2**31 — bit 31 of the length prefix is the codec flag.
MAX_FRAME_BYTES = 16 * 1024 * 1024

#: Header bit marking a binary (``tdpb1``) body; low bits are the length.
_BINARY_FLAG = 0x80000000
_LENGTH_MASK = 0x7FFFFFFF


def supported_codecs() -> tuple[str, ...]:
    """Codec names to advertise in a connect hello (preference order)."""
    return _body_codec().SUPPORTED_CODECS


def negotiate_codec(offered: Any) -> str:
    """Pick the body codec for a peer's advertisement (JSON fallback)."""
    return _body_codec().negotiate_codec(offered)


def json_codec() -> str:
    """Name of the mandatory fallback codec."""
    return _body_codec().CODEC_JSON


def encode_frame(message: dict[str, Any], codec: str | None = None) -> bytes:
    """Serialize one message to a length-prefixed frame.

    ``codec=None`` means the default JSON body.  The chosen codec is
    recorded in the frame header, so mixed-codec streams decode cleanly.
    """
    if not isinstance(message, dict):
        raise ProtocolError(f"message must be a dict, got {type(message).__name__}")
    P = _body_codec()
    if codec is None or codec == P.CODEC_JSON:
        body = P.encode_body(message)
        flag = 0
    else:
        body = P.encode_body(message, codec)
        flag = _BINARY_FLAG
    if len(body) > MAX_FRAME_BYTES:
        raise ProtocolError(f"frame too large: {len(body)} bytes")
    return _LEN.pack(len(body) | flag) + body


def decode_body(body: bytes, binary: bool = False) -> dict[str, Any]:
    """Deserialize a frame body back into a message dict."""
    if binary:
        return _body_codec().decode_body(body, True)
    return _body_codec().decode_body(body)


def roundtrip(message: dict[str, Any]) -> dict[str, Any]:
    """Encode+decode a message (serializability check for in-mem channels)."""
    frame = encode_frame(message)
    return decode_body(frame[_LEN.size :])


class FrameReader:
    """Incremental frame parser for a byte stream (used by the TCP backend).

    Feed it arbitrary chunks; it yields complete messages as they become
    available.  Keeps at most one partial frame of state.
    """

    def __init__(self) -> None:
        self._buf = bytearray()

    def feed(self, data: bytes) -> list[dict[str, Any]]:
        """Append ``data`` and return all now-complete messages."""
        self._buf.extend(data)
        out: list[dict[str, Any]] = []
        while True:
            if len(self._buf) < _LEN.size:
                break
            (header,) = _LEN.unpack_from(self._buf, 0)
            binary = bool(header & _BINARY_FLAG)
            length = header & _LENGTH_MASK
            if length > MAX_FRAME_BYTES:
                raise ProtocolError(f"peer announced oversized frame: {length} bytes")
            if len(self._buf) < _LEN.size + length:
                break
            body = bytes(self._buf[_LEN.size : _LEN.size + length])
            del self._buf[: _LEN.size + length]
            out.append(decode_body(body, binary))
        return out

    @property
    def pending_bytes(self) -> int:
        """Bytes buffered but not yet forming a complete frame."""
        return len(self._buf)
