"""Tool configuration and data file staging (paper Section 1).

"The RT may need configuration files transferred to the execution
nodes.  The RT might also generate output files that contain traces or
summary data; … they must be transferred from the execution nodes after
the application completes."

The :class:`FileStager` performs both directions over per-host
filesystems (the sim hosts' ``filesystem`` dicts) and records every
transfer so scenarios can assert and report what was staged.  The RM
calls ``stage_in`` before launching the tool daemon and ``stage_out``
after the application completes — exactly where Condor's
``transfer_input_files``/output transfer hooks sit in the pilot.
"""

from __future__ import annotations

import fnmatch
import threading
from dataclasses import dataclass

from repro.errors import StagingError
from repro.sim.cluster import SimCluster


@dataclass(frozen=True)
class TransferRecord:
    """One completed file transfer."""

    src_host: str
    dst_host: str
    path: str
    size: int
    direction: str  # "in" (to execution node) | "out" (back from it)


class FileStager:
    """Stage files between hosts of one simulated cluster."""

    def __init__(self, cluster: SimCluster):
        self._cluster = cluster
        self._lock = threading.Lock()
        self.transfers: list[TransferRecord] = []

    def _copy(
        self, src_host: str, dst_host: str, paths: list[str], direction: str
    ) -> list[TransferRecord]:
        src_fs = self._cluster.host(src_host).filesystem
        dst_fs = self._cluster.host(dst_host).filesystem
        records = []
        for path in paths:
            if path not in src_fs:
                raise StagingError(
                    f"cannot stage {path!r}: not present on {src_host}"
                )
            content = src_fs[path]
            dst_fs[path] = content
            record = TransferRecord(
                src_host=src_host,
                dst_host=dst_host,
                path=path,
                size=len(content),
                direction=direction,
            )
            records.append(record)
        with self._lock:
            self.transfers.extend(records)
        return records

    def stage_in(
        self, submit_host: str, exec_host: str, paths: list[str]
    ) -> list[TransferRecord]:
        """Copy tool config/input files to the execution node (pre-launch)."""
        return self._copy(submit_host, exec_host, paths, "in")

    def stage_out(
        self, exec_host: str, submit_host: str, patterns: list[str]
    ) -> list[TransferRecord]:
        """Copy tool output/trace files back after the job completes.

        ``patterns`` are globs over the execution host's filesystem, so a
        tool can say "everything matching ``trace.*``" without knowing
        how many trace files it produced.
        """
        exec_fs = self._cluster.host(exec_host).filesystem
        matched: list[str] = []
        for pattern in patterns:
            hits = [p for p in sorted(exec_fs) if fnmatch.fnmatchcase(p, pattern)]
            if not hits and not any(ch in pattern for ch in "*?["):
                raise StagingError(
                    f"cannot stage out {pattern!r}: not present on {exec_host}"
                )
            matched.extend(hits)
        # De-duplicate while preserving order (overlapping patterns).
        seen: set[str] = set()
        unique = [p for p in matched if not (p in seen or seen.add(p))]
        return self._copy(exec_host, submit_host, unique, "out")

    def transfer_log(self, direction: str | None = None) -> list[TransferRecord]:
        with self._lock:
            records = list(self.transfers)
        if direction is not None:
            records = [r for r in records if r.direction == direction]
        return records

    def bytes_transferred(self) -> int:
        with self._lock:
            return sum(r.size for r in self.transfers)
