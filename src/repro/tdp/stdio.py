"""Standard input/output management (paper Section 1, interface list).

"This operation properly belongs to the RM, but must be coordinated
with the RT": the RM owns the application's stdio and forwards it to
wherever the job's owner is — typically the submit-side host.  TDP's
part is (a) a standard attribute (``stdio.endpoint``) naming where the
stream goes and (b) a relay that ships lines over a channel, proxy-aware
like all tool communication.

Wire format: ``{"stream": "stdout", "line": ...}`` frames outbound;
``{"stream": "stdin", "line": ...}`` and ``{"stream": "stdin",
"eof": true}`` inbound.
"""

from __future__ import annotations

import threading
from typing import Callable

from repro import errors
from repro.net.address import Endpoint
from repro.transport.base import Channel, Listener, Transport
from repro.transport.proxy import connect_maybe_proxied
from repro.util.log import get_logger
from repro.util.sync import WaitableQueue, tracked_lock
from repro.util.threads import spawn

_log = get_logger("tdp.stdio")


class StdioCollector:
    """Front-end side: listens for one job's stdio relay and collects lines.

    The paper's scenario: the user's desktop shows the application's
    output "at the same location as the RT's front-end".
    """

    def __init__(self, transport: Transport, host: str, port: int = 0):
        self._listener: Listener = transport.listen(host, port)
        self.lines: list[str] = []
        self._line_queue: WaitableQueue[str] = WaitableQueue()
        self._channel: Channel | None = None
        self._lock = tracked_lock("tdp.stdio.StdioCollector._lock")
        self._stdin_pending: list[dict] = []
        self._accepted = threading.Event()
        spawn(self._accept_and_pump, name=f"stdio-collect-{host}")

    @property
    def endpoint(self) -> Endpoint:
        """Publish this (as ``Attr.STDIO_ENDPOINT``) for the RM to dial."""
        return self._listener.endpoint

    def _accept_and_pump(self) -> None:
        try:
            channel = self._listener.accept()
        except errors.TdpError:
            return
        with self._lock:
            self._channel = channel
            backlog, self._stdin_pending = self._stdin_pending, []
        for frame in backlog:
            try:
                channel.send(frame)
            except errors.TdpError:
                return
        self._accepted.set()
        try:
            while True:
                frame = channel.recv()
                if frame.get("stream") == "stdout":
                    line = str(frame.get("line", ""))
                    self.lines.append(line)
                    self._line_queue.put(line)
        except errors.TdpError:
            pass
        finally:
            self._line_queue.close()

    def wait_line(self, timeout: float | None = 10.0) -> str:
        """Block for the next stdout line from the job."""
        return self._line_queue.get(timeout=timeout)

    def send_stdin(self, line: str) -> None:
        """Queue a stdin line for the job (buffered until the relay dials in)."""
        frame = {"stream": "stdin", "line": line}
        with self._lock:
            if self._channel is None:
                self._stdin_pending.append(frame)
                return
            channel = self._channel
        channel.send(frame)

    def send_eof(self) -> None:
        frame = {"stream": "stdin", "eof": True}
        with self._lock:
            if self._channel is None:
                self._stdin_pending.append(frame)
                return
            channel = self._channel
        channel.send(frame)

    def close(self) -> None:
        self._listener.close()
        with self._lock:
            if self._channel is not None:
                self._channel.close()


class StdioRelay:
    """RM side: bridges one application's stdio to the collector endpoint.

    ``attach_stdout`` registers a sink with the process (the sim backend
    exposes per-process stdout sinks; the POSIX backend pumps pipes into
    the same call), and inbound stdin frames are pushed through
    ``feed_stdin``/``close_stdin`` callables supplied by the backend.
    """

    def __init__(
        self,
        transport: Transport,
        src_host: str,
        endpoint: Endpoint,
        *,
        proxy: Endpoint | None = None,
        feed_stdin: Callable[[str], None] | None = None,
        close_stdin: Callable[[], None] | None = None,
    ):
        self._channel = connect_maybe_proxied(transport, src_host, endpoint, proxy)
        self._feed_stdin = feed_stdin
        self._close_stdin = close_stdin
        self._send_lock = tracked_lock("tdp.stdio.StdioRelay._send_lock")
        spawn(self._stdin_pump, name=f"stdio-relay-{src_host}")

    def forward_stdout(self, line: str) -> None:
        """Ship one application stdout line to the collector."""
        try:
            # _send_lock only serializes frames onto the collector channel;
            # no other state is guarded by it.
            with self._send_lock:
                self._channel.send({"stream": "stdout", "line": line})  # tdp-lint: off(blocking-call-under-lock)
        except errors.TdpError:
            _log.warning("stdio relay lost its collector; dropping output")

    def _stdin_pump(self) -> None:
        try:
            while True:
                frame = self._channel.recv()
                if frame.get("stream") != "stdin":
                    continue
                if frame.get("eof"):
                    if self._close_stdin is not None:
                        self._close_stdin()
                    continue
                if self._feed_stdin is not None:
                    self._feed_stdin(str(frame.get("line", "")))
        except errors.TdpError:
            pass

    def close(self) -> None:
        self._channel.close()
