"""Auxiliary services (paper Section 1, "Auxiliary services (AS)").

"There are entities in addition to the RM and RT that may be required
for the proper execution of a RT in a distributed environment.  For
example, software multicast/reduction networks are crucial to scalable
tool use.  The RM must be aware of and willing to launch this second
kind of non-application entity."

This module provides (a) the generic :class:`AuxServiceSpec`/launch hook
the RM uses, and (b) a concrete MRNet-style :class:`ReductionNetwork`
— a k-ary tree of forwarding daemons that aggregates values from one
leaf per execution host up to a root on the front-end host, used by the
scaling experiments.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Callable

from repro import errors
from repro.net.address import Endpoint
from repro.tdp.handle import TdpHandle
from repro.tdp.wellknown import Attr
from repro.transport.base import Channel, Listener, Transport
from repro.util.log import get_logger
from repro.util.sync import Latch
from repro.util.threads import spawn

_log = get_logger("tdp.aux")


@dataclass
class AuxServiceSpec:
    """What the RM needs to know to launch one auxiliary service."""

    name: str
    start: Callable[[], Endpoint]  # launches the service, returns its endpoint
    stop: Callable[[], None] = lambda: None


class AuxServiceManager:
    """RM-side registry: launch aux services and advertise their endpoints."""

    def __init__(self, handle: TdpHandle):
        self._handle = handle
        self._running: dict[str, AuxServiceSpec] = {}
        self._lock = threading.Lock()

    def launch(self, spec: AuxServiceSpec) -> Endpoint:
        with self._lock:
            if spec.name in self._running:
                raise errors.TdpError(f"aux service {spec.name!r} already running")
            self._running[spec.name] = spec
        endpoint = spec.start()
        self._handle.attrs.put(Attr.aux_endpoint(spec.name), str(endpoint))
        self._handle.attrs.put(Attr.aux_status(spec.name), "running")
        return endpoint

    def stop_all(self) -> None:
        with self._lock:
            specs = list(self._running.values())
            self._running.clear()
        for spec in specs:
            spec.stop()
            try:
                self._handle.attrs.put(Attr.aux_status(spec.name), "stopped")
            except errors.TdpError:
                pass

    def running(self) -> list[str]:
        with self._lock:
            return sorted(self._running)


# ---------------------------------------------------------------------------
# A concrete auxiliary service: an MRNet-style reduction tree
# ---------------------------------------------------------------------------

@dataclass
class _TreeNode:
    host: str
    listener: Listener
    parent_channel: Channel | None = None
    expected_children: int = 0
    expected_direct: int = 0
    children_received: int = 0
    direct_received: int = 0
    partial: float = 0.0
    count: int = 0
    sent_up: bool = False
    lock: threading.Lock = field(default_factory=threading.Lock)


class ReductionNetwork:
    """A k-ary reduction tree over the cluster's hosts (MRNet-style).

    Every node is a leaf endpoint for daemons on its host AND an
    aggregation point: it absorbs its direct contributions and its
    children's partials, and only when *complete* sends one combined
    partial upward.  The root resolves a :class:`Latch` with the global
    (sum, count).  This is the property that makes trees scale — each
    node processes at most ``fanout + expected_direct`` messages,
    instead of the root processing all N.

    ``per_message_cost`` models the front-end's per-message processing
    work (seconds of wall time per absorbed message); the SCALE bench
    uses it to locate the tree-vs-flat crossover.
    """

    def __init__(
        self,
        transport: Transport,
        root_host: str,
        leaf_hosts: list[str],
        *,
        fanout: int = 4,
        per_message_cost: float = 0.0,
    ):
        if fanout < 2:
            raise ValueError("fanout must be >= 2")
        self._transport = transport
        self.fanout = fanout
        self.per_message_cost = per_message_cost
        self.result: Latch[tuple[float, int]] = Latch()
        self._nodes: list[_TreeNode] = []
        self._armed = threading.Event()

        # Build the tree level by level: root first, then hosts in the
        # given order breadth-first under it.
        self._root = self._make_node(root_host, parent=None)
        frontier: list[_TreeNode] = [self._root]
        remaining = list(leaf_hosts)
        while remaining:
            next_frontier: list[_TreeNode] = []
            for parent in frontier:
                for _ in range(self.fanout):
                    if not remaining:
                        break
                    node = self._make_node(remaining.pop(0), parent=parent)
                    parent.expected_children += 1
                    next_frontier.append(node)
            frontier = next_frontier
        self.leaves = {n.host: n.listener.endpoint for n in self._nodes}

    def _make_node(self, host: str, parent: _TreeNode | None) -> _TreeNode:
        listener = self._transport.listen(host)
        node = _TreeNode(host=host, listener=listener)
        if parent is not None:
            node.parent_channel = self._transport.connect(
                host, parent.listener.endpoint
            )
        self._nodes.append(node)
        spawn(self._serve_node, args=(node,), name=f"mrnet-{host}")
        return node

    def start_collection(
        self, expected_contributions: int, *, contributions_per_host: int | None = None
    ) -> None:
        """Arm the tree: each node learns how many direct contributions
        to expect (default: spread evenly, one per leaf host)."""
        per_host = (
            contributions_per_host
            if contributions_per_host is not None
            else max(1, expected_contributions // max(1, len(self._nodes) - 1))
        )
        non_root = [n for n in self._nodes if n is not self._root]
        remaining = expected_contributions
        for node in non_root:
            share = min(per_host, remaining)
            node.expected_direct = share
            remaining -= share
        self._root.expected_direct = max(0, remaining)
        self._armed.set()
        # A node with nothing to wait for must still report (empty partial).
        for node in self._nodes:
            self._maybe_complete(node)

    def _serve_node(self, node: _TreeNode) -> None:
        while True:
            try:
                channel = node.listener.accept()
            except errors.TdpError:
                return
            spawn(self._pump, args=(node, channel), name=f"mrnet-pump-{node.host}")

    def _pump(self, node: _TreeNode, channel: Channel) -> None:
        try:
            while True:
                frame = channel.recv()
                if self.per_message_cost > 0:
                    import time

                    time.sleep(self.per_message_cost)
                if "sum" in frame:  # a child's combined partial
                    self._absorb(
                        node,
                        float(frame["sum"]),
                        int(frame["count"]),
                        from_child=True,
                    )
                else:  # a daemon's direct contribution
                    self._absorb(node, float(frame["value"]), 1, from_child=False)
        except errors.TdpError:
            return

    def _absorb(self, node: _TreeNode, value: float, count: int, *, from_child: bool) -> None:
        with node.lock:
            node.partial += value
            node.count += count
            if from_child:
                node.children_received += 1
            else:
                node.direct_received += 1
        self._maybe_complete(node)

    def _maybe_complete(self, node: _TreeNode) -> None:
        if not self._armed.is_set():
            return
        with node.lock:
            complete = (
                not node.sent_up
                and node.children_received >= node.expected_children
                and node.direct_received >= node.expected_direct
            )
            if not complete:
                return
            node.sent_up = True
            payload = {"sum": node.partial, "count": node.count}
        if node.parent_channel is not None:
            node.parent_channel.send(payload)
        else:
            self.result.open((payload["sum"], payload["count"]))

    def contribute(self, src_host: str, value: float) -> None:
        """One daemon's contribution, sent to its host's tree node."""
        endpoint = self.leaves.get(src_host, self._root.listener.endpoint)
        channel = self._transport.connect(src_host, endpoint)
        channel.send({"value": value})
        channel.close()

    def wait_result(self, timeout: float | None = 30.0) -> tuple[float, int]:
        """Block for the aggregated (sum, count)."""
        return self.result.wait(timeout=timeout)

    @property
    def node_count(self) -> int:
        return len(self._nodes)

    def depth(self) -> int:
        """Levels in the built tree (root = 1)."""
        import math

        n = len(self._nodes) - 1  # non-root nodes
        if n <= 0:
            return 1
        return 1 + math.ceil(math.log(n * (self.fanout - 1) + 1, self.fanout))

    def stop(self) -> None:
        for node in self._nodes:
            node.listener.close()
            if node.parent_channel is not None:
                node.parent_channel.close()
