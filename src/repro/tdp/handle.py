"""TdpHandle: the object ``tdp_init`` returns.

"On success, tdp_init will return a tdp handle, which will be used in
any TDP subsequent action" (Section 3.2).  A handle bundles:

* the daemon's identity (member name, role);
* its LASS session (an :class:`AttributeSpaceClient` bound to one
  context) and optionally a CASS session;
* for RM-role handles, the :class:`ProcessControlService` over the local
  process backend;
* the event machinery serviced by ``tdp_service_events``.
"""

from __future__ import annotations

import enum
import threading

from repro import errors, obs
from repro.attrspace.client import AttributeSpaceClient, ReconnectPolicy
from repro.net.address import Endpoint
from repro.tdp.process import ProcessBackend, ProcessControlService
from repro.transport.base import Transport
from repro.util.log import get_logger
from repro.util.sync import tracked_lock
from repro.util.threads import spawn

_log = get_logger("tdp.handle")


class Role(enum.Enum):
    """Which kind of daemon holds this handle."""

    RM = "rm"    # resource manager daemon: owns process control
    RT = "rt"    # run-time tool daemon: requests control via the RM
    AP = "ap"    # application-side helper (stdio endpoints etc.)
    AS = "as"    # auxiliary service daemon


class TdpHandle:
    """One daemon's TDP session.  Create via :func:`repro.tdp.api.tdp_init`."""

    def __init__(
        self,
        *,
        member: str,
        role: Role,
        context: str,
        lass: AttributeSpaceClient,
        cass: AttributeSpaceClient | None = None,
        backend: ProcessBackend | None = None,
    ):
        self.member = member
        self.role = role
        self.context = context
        self.lass = lass
        self.cass = cass
        # tdp-guard: _closed -> volatile
        # (monotonic close latch: writes serialize under _lock, the
        # lock-free reads in _check_open/closed race with tdp_exit by
        # design — a stale open answer is indistinguishable from the
        # call having happened just before the close)
        self._closed = False
        self._lock = tracked_lock("tdp.handle.TdpHandle._lock")
        self._service_thread: threading.Thread | None = None
        self._service_stop = threading.Event()

        self.control: ProcessControlService | None = None
        if backend is not None:
            if role is not Role.RM:
                raise errors.HandleError(
                    "only RM-role handles may own a process backend "
                    "(paper Section 2.3: process control belongs to the RM)"
                )
            self.control = ProcessControlService(backend, lass)

    # -- attribute space views ----------------------------------------------------

    @property
    def attrs(self) -> AttributeSpaceClient:
        """The local space session (every daemon has one)."""
        return self.lass

    def central(self) -> AttributeSpaceClient:
        """The central (CASS) session; raises if this daemon has none."""
        if self.cass is None:
            raise errors.HandleError(f"{self.member}: no CASS session on this handle")
        return self.cass

    def _clients(self) -> list[AttributeSpaceClient]:
        return [c for c in (self.lass, self.cass) if c is not None]

    # -- event servicing -----------------------------------------------------------

    def service_events(self, max_events: int | None = None) -> int:
        """Run pending callbacks at this (safe) point; returns the count."""
        self._check_open()
        count = 0
        for client in self._clients():
            budget = None if max_events is None else max_events - count
            if budget is not None and budget <= 0:
                break
            count += client.service_events(max_events=budget)
        return count

    def has_pending_events(self) -> bool:
        return any(c.has_pending_events() for c in self._clients())

    def poll(self, timeout: float | None = None) -> bool:
        """Block until any session has a serviceable event (or timeout)."""
        clients = self._clients()
        if len(clients) == 1:
            # Fast path: wait on the single event queue's condition.
            return clients[0].wait_event(timeout=timeout)
        import time

        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            if self.has_pending_events():
                return True
            if deadline is not None and time.monotonic() >= deadline:
                return False
            time.sleep(0.001)

    def start_service_loop(self, interval: float = 0.005) -> None:
        """Run ``service_events`` continuously on a background thread.

        Daemons in this library that have no other main loop (e.g. the
        Condor starter while a job runs) use this instead of a hand-
        written poll loop; it preserves the safe-point discipline because
        all callbacks for this handle run on this single thread.
        """
        with self._lock:
            if self._service_thread is not None:
                return
            self._service_stop.clear()
            self._service_thread = spawn(
                self._service_loop,
                args=(interval,),
                name=f"tdp-service-{self.member}",
            )

    def _service_loop(self, interval: float) -> None:
        while not self._service_stop.is_set():
            try:
                if not self.service_events():
                    # Wake promptly on event arrival; the interval only
                    # bounds how often the stop flag is re-checked.
                    self.poll(timeout=interval)
            except errors.TdpError:
                return

    def stop_service_loop(self) -> None:
        with self._lock:
            thread = self._service_thread
            self._service_thread = None
        if thread is not None:
            self._service_stop.set()
            thread.join(timeout=5.0)

    # -- lifecycle --------------------------------------------------------------------

    def _check_open(self) -> None:
        if self._closed:
            raise errors.HandleError(f"handle {self.member} is closed (tdp_exit)")

    @property
    def closed(self) -> bool:
        return self._closed

    def close(self) -> None:
        """``tdp_exit``: leave the context(s) and release resources."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
        obs.record("handle.close", actor=self.member, role=self.role.value)
        self.stop_service_loop()
        for client in self._clients():
            client.close()

    def __enter__(self) -> "TdpHandle":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"<TdpHandle {self.member} role={self.role.value} "
            f"context={self.context!r}{' closed' if self._closed else ''}>"
        )


def open_handle(
    transport: Transport,
    lass_endpoint: Endpoint,
    *,
    member: str,
    role: Role,
    context: str = "default",
    src_host: str | None = None,
    cass_endpoint: Endpoint | None = None,
    cass_context: str = "default",
    backend: ProcessBackend | None = None,
    connect_timeout: float = 10.0,
    reconnect: ReconnectPolicy | None = None,
    lease_ttl: float | None = None,
) -> TdpHandle:
    """Implementation behind ``tdp_init``: connect session(s), build handle.

    ``src_host`` defaults to the backend's host (RM case) and must be
    given otherwise — it determines which side of the firewall the
    daemon connects from.  The CASS session joins ``cass_context``
    (default: the global ``"default"`` context — central attributes like
    the tool front-end's endpoint are pool-global, not per-job).

    Passing ``reconnect`` (a :class:`ReconnectPolicy`) makes both
    sessions self-healing: a dead channel is re-dialed, the attach
    handshake re-run, and subscriptions/in-flight requests replayed.
    ``lease_ttl`` sets the server-side session lease (defaults to 30 s
    when reconnection is on), bounding how long the server preserves a
    silent daemon's membership and ephemeral attributes.
    """
    if src_host is None:
        if backend is None:
            raise errors.HandleError("src_host required when no backend is given")
        src_host = backend.hostname
    if reconnect is not None and lease_ttl is None:
        lease_ttl = 30.0

    def _open(endpoint: Endpoint, ctx: str) -> AttributeSpaceClient:
        if reconnect is not None:
            return AttributeSpaceClient.connect(
                transport, src_host, endpoint,
                context=ctx, member=member, reconnect=reconnect,
                lease_ttl=lease_ttl, connect_timeout=connect_timeout,
            )
        channel = transport.connect(src_host, endpoint, timeout=connect_timeout)
        return AttributeSpaceClient(
            channel, context=ctx, member=member, lease_ttl=lease_ttl
        )

    lass = _open(lass_endpoint, context)
    cass = None
    if cass_endpoint is not None:
        try:
            cass = _open(cass_endpoint, cass_context)
        except errors.TdpError:
            lass.close()
            raise
    obs.record(
        "handle.open", actor=member, role=role.value, context=context,
        cass=cass is not None,
    )
    return TdpHandle(
        member=member,
        role=role,
        context=context,
        lass=lass,
        cass=cass,
        backend=backend,
    )
