"""Well-known attribute names and enums of the TDP protocol.

Paper Section 3.2: "there is a standard list of attribute names for the
set of data commonly exchanged between the different daemons (every RT
and RM must understand this set)"; tools and RMs may extend it with
situation-specific names.  This module is that standard list.
"""

from __future__ import annotations

import enum


class CreateMode(enum.Enum):
    """How ``tdp_create_process`` launches the application (Section 2.2)."""

    RUN = "run"        # create and start immediately (scheme 1)
    PAUSED = "paused"  # create but stop before main (scheme 2)


class Attr:
    """The standard attribute names.

    Process-scoped names are templates taking the pid; tool-scoped names
    take a tool daemon index.  The plain names (``PID``,
    ``EXECUTABLE_NAME``) are the ones the pilot exchanged (Section 4.3).
    """

    # -- the pilot's core exchange (starter -> paradynd) --------------------
    PID = "pid"                          # application process id
    EXECUTABLE_NAME = "executable_name"  # application executable
    APP_HOST = "app_host"                # host the AP runs on
    APP_ARGS = "app_args"                # flattened argument vector

    # -- tool communication (Section 2.4) -----------------------------------
    RT_FRONTEND = "rt.frontend"          # host:port of the tool front-end
    RM_PROXY = "rm.proxy"                # host:port of the RM's proxy, if any
    STDIO_ENDPOINT = "stdio.endpoint"    # host:port where job stdio connects

    # -- process status stream (Section 2.3) ----------------------------------
    @staticmethod
    def proc_status(pid: int) -> str:
        """Status attribute for one process: values ``created``,
        ``running``, ``stopped``, ``exited:<code>``."""
        return f"proc.{pid}.status"

    @staticmethod
    def proc_exit_code(pid: int) -> str:
        return f"proc.{pid}.exit_code"

    #: subscription pattern covering every process status attribute
    PROC_STATUS_PATTERN = "proc.*.status"

    # -- process control requests (RT -> RM, Section 2.3) ----------------------
    CTL_REQUEST_PREFIX = "ctl.req."

    @staticmethod
    def ctl_request(token: str) -> str:
        return f"ctl.req.{token}"

    @staticmethod
    def ctl_request_token(attribute: str) -> str:
        """Inverse of :meth:`ctl_request`: the token inside a request name."""
        return attribute[len(Attr.CTL_REQUEST_PREFIX):]

    @staticmethod
    def ctl_reply(token: str) -> str:
        return f"ctl.rep.{token}"

    CTL_REQUEST_PATTERN = "ctl.req.*"

    # -- tool metric samples (extension; pilot sent samples only on the
    # -- tool's private channel) ------------------------------------------------
    @staticmethod
    def metric_sample(metric: str, focus: str) -> str:
        """Latest sampled value of one (metric, focus) pair, published
        by the tool daemon each sampling pass so any TDP participant
        can read live performance data through the space.

        Focus strings embed ``host:pid``; ``:`` is not legal in
        attribute names, so it maps to ``+`` (legal, unused by foci).
        """
        return f"paradyn.sample.{metric}.{focus.replace(':', '+')}"

    METRIC_SAMPLE_PATTERN = "paradyn.sample.*"

    # -- heartbeats / fault detection (extension; paper defers fault model) -----
    @staticmethod
    def heartbeat(entity: str) -> str:
        return f"hb.{entity}"

    @staticmethod
    def fault(entity: str) -> str:
        return f"fault.{entity}"

    FAULT_PATTERN = "fault.*"

    # -- server statistics (observability; extension) ---------------------------
    #: prefix of the attributes a server publishes its own metrics under
    STATS_PREFIX = "tdp.stats."

    @staticmethod
    def stat(name: str) -> str:
        """Attribute carrying one server statistic, e.g. ``tdp.stats.puts``.

        A (blocking or non-blocking) get of any ``tdp.stats.*`` attribute
        makes the serving LASS/CASS refresh its whole statistics snapshot
        into the requesting context first, so tools read live values.
        """
        return f"tdp.stats.{name}"

    STATS_PATTERN = "tdp.stats.*"

    # -- auxiliary services (Section 1 "Auxiliary services") ----------------------
    @staticmethod
    def aux_endpoint(name: str) -> str:
        return f"aux.{name}.endpoint"

    @staticmethod
    def aux_status(name: str) -> str:
        return f"aux.{name}.status"


class ProcStatus:
    """Values of the ``proc.<pid>.status`` attribute."""

    CREATED = "created"    # exists, never started (create-paused window)
    RUNNING = "running"
    STOPPED = "stopped"
    EXITED_PREFIX = "exited:"

    @staticmethod
    def exited(code: int) -> str:
        return f"{ProcStatus.EXITED_PREFIX}{code}"

    @staticmethod
    def is_exited(status: str) -> bool:
        return status.startswith(ProcStatus.EXITED_PREFIX)

    @staticmethod
    def exit_code(status: str) -> int:
        if not ProcStatus.is_exited(status):
            raise ValueError(f"not an exited status: {status!r}")
        return int(status[len(ProcStatus.EXITED_PREFIX):])
