"""The Tool Dæmon Protocol library — the paper's primary contribution.

The API mirrors the C library of the paper (Section 3), grouped exactly
as the paper groups its services:

* **process management** — ``tdp_create_process`` (run/paused),
  ``tdp_attach``, ``tdp_continue_process``, ``tdp_pause_process``,
  ``tdp_kill``; control executes in the RM, requests from tools are
  forwarded through the attribute space (Section 2.3);
* **inter-daemon communication** — ``tdp_init``/``tdp_exit``, blocking
  ``tdp_put``/``tdp_get``, asynchronous ``tdp_async_put``/``tdp_async_get``
  (Section 3.2);
* **event notification** — ``tdp_service_events`` at the daemon's safe
  point, with the event queue as the pollable "descriptor" (Section 3.3).

Plus the supporting services the paper's interface list calls for
(Section 1): stdio management, proxy-aware tool communication, config
and data file staging, auxiliary services, and a pragmatic fault model.
"""

from repro.tdp.wellknown import Attr, CreateMode
from repro.tdp.handle import TdpHandle
from repro.tdp.api import (
    tdp_init,
    tdp_exit,
    tdp_put,
    tdp_put_many,
    tdp_get,
    tdp_try_get,
    tdp_remove,
    tdp_async_get,
    tdp_async_put,
    tdp_subscribe,
    tdp_service_events,
    tdp_poll,
    tdp_create_process,
    tdp_attach,
    tdp_continue_process,
    tdp_pause_process,
    tdp_detach,
    tdp_kill,
    tdp_process_status,
    tdp_wait_exit,
)
from repro.tdp.process import (
    ProcessBackend,
    ProcessControlService,
    ProcessInfo,
    SimHostBackend,
)

__all__ = [
    "Attr",
    "CreateMode",
    "TdpHandle",
    "tdp_init",
    "tdp_exit",
    "tdp_put",
    "tdp_put_many",
    "tdp_get",
    "tdp_try_get",
    "tdp_remove",
    "tdp_async_get",
    "tdp_async_put",
    "tdp_subscribe",
    "tdp_service_events",
    "tdp_poll",
    "tdp_create_process",
    "tdp_attach",
    "tdp_continue_process",
    "tdp_pause_process",
    "tdp_detach",
    "tdp_kill",
    "tdp_process_status",
    "tdp_wait_exit",
    "ProcessBackend",
    "ProcessControlService",
    "ProcessInfo",
    "SimHostBackend",
]
