"""Fault detection and notification (extension beyond the paper's scope).

The paper's interface list requires that "the RM must be able to detect
these failures [AP, RT, AS], respond to them, and perhaps communicate
their occurrence to the other entities", while noting a full fault model
is "ongoing work and beyond the scope of this paper".  We ship the
pragmatic subset that the interface list implies:

* **AP faults** via backend exit listeners (abnormal exit / signal);
* **RT and AS faults** via heartbeat attributes with deadlines —
  daemons ``beat()`` periodically; a missed deadline is a fault;
* **propagation** via ``fault.<entity>`` attributes, so every TDP
  participant can subscribe to ``fault.*`` and react.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass

from repro import errors
from repro.tdp.handle import TdpHandle
from repro.tdp.wellknown import Attr, ProcStatus
from repro.util.log import get_logger
from repro.util.sync import tracked_lock
from repro.util.threads import spawn

_log = get_logger("tdp.faults")


@dataclass(frozen=True)
class FaultRecord:
    entity_kind: str  # "ap" | "rt" | "as"
    entity_id: str
    reason: str


def heartbeat_item(entity_id: str) -> tuple[str, str, bool]:
    """The ``(attribute, value, ephemeral)`` triple of one liveness beat.

    Hot publishers batch this into their existing ``put_many`` (one
    frame carries the samples *and* the beat); :func:`heartbeat` wraps
    it for daemons with nothing else to send.
    """
    return (Attr.heartbeat(entity_id), repr(time.monotonic()), True)


def heartbeat(handle: TdpHandle, entity_id: str) -> None:
    """Daemon-side: record liveness (a monotonically fresh timestamp).

    Ephemeral: the heartbeat is tied to the daemon's session, so a dead
    daemon's last beat is purged when its lease expires instead of
    lingering as a stale claim of liveness.
    """
    handle.attrs.put_many([heartbeat_item(entity_id)])


class FaultMonitor:
    """RM-side watcher: declares faults and publishes them to the space.

    ``watch_process`` covers the AP; ``watch_heartbeat`` covers RT/AS
    daemons.  Detected faults are published as ``fault.<entity>``
    attributes and recorded locally for the RM's own response logic.
    """

    def __init__(self, handle: TdpHandle, *, check_interval: float = 0.05):
        self._handle = handle
        self._interval = check_interval
        self._lock = tracked_lock("tdp.faults.FaultMonitor._lock")
        self._deadlines: dict[str, tuple[str, float, float]] = {}
        # entity_id -> (kind, max_silence, last_seen_monotonic)
        self.faults: list[FaultRecord] = []
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    # -- AP monitoring ----------------------------------------------------------

    def watch_process(self, pid: int) -> None:
        """Declare a fault if the managed process exits abnormally."""
        control = self._handle.control
        if control is None:
            raise errors.HandleError("watch_process requires an RM handle")

        def on_exit(info) -> None:
            if info.exit_code not in (0, None):
                self._declare("ap", str(pid), f"abnormal exit code {info.exit_code}")

        control._backend.on_exit(pid, on_exit)

    # -- heartbeat monitoring ------------------------------------------------------

    def watch_heartbeat(
        self, entity_kind: str, entity_id: str, max_silence: float
    ) -> None:
        """Declare a fault if no heartbeat arrives for ``max_silence`` s."""
        with self._lock:
            self._deadlines[entity_id] = (entity_kind, max_silence, time.monotonic())
        self._ensure_thread()

    def _ensure_thread(self) -> None:
        with self._lock:
            if self._thread is not None:
                return
            self._thread = spawn(self._watch_loop, name="fault-monitor")

    def _watch_loop(self) -> None:
        try:
            while not self._stop.wait(self._interval):
                now = time.monotonic()
                with self._lock:
                    entries = list(self._deadlines.items())
                for entity_id, (kind, max_silence, last_seen) in entries:
                    # Refresh last_seen from the space.
                    try:
                        raw = self._handle.attrs.try_get(Attr.heartbeat(entity_id))
                        seen = float(raw)
                    except (errors.NoSuchAttributeError, ValueError):
                        seen = last_seen
                    except errors.TdpError:
                        return  # space gone: monitor dies with the session
                    with self._lock:
                        if entity_id not in self._deadlines:
                            continue
                        self._deadlines[entity_id] = (kind, max_silence, max(seen, last_seen))
                        effective = self._deadlines[entity_id][2]
                    if now - effective > max_silence:
                        with self._lock:
                            self._deadlines.pop(entity_id, None)
                        self._declare(kind, entity_id, f"no heartbeat for {max_silence}s")
        finally:
            # However the loop exits — stop(), or a transient space error
            # — release the thread slot so the next watch_heartbeat can
            # respawn the monitor instead of trusting a dead thread.
            with self._lock:
                if self._thread is threading.current_thread():
                    self._thread = None

    def unwatch(self, entity_id: str) -> None:
        """Stop watching (clean shutdown is not a fault)."""
        with self._lock:
            self._deadlines.pop(entity_id, None)

    # -- fault declaration -------------------------------------------------------------

    def _declare(self, kind: str, entity_id: str, reason: str) -> None:
        record = FaultRecord(entity_kind=kind, entity_id=entity_id, reason=reason)
        with self._lock:
            self.faults.append(record)
        _log.warning("fault: %s %s — %s", kind, entity_id, reason)
        try:
            self._handle.attrs.put(Attr.fault(entity_id), f"{kind}:{reason}")
        except errors.TdpError:
            pass

    def stop(self) -> None:
        self._stop.set()
        with self._lock:
            thread = self._thread
            self._thread = None
        if thread is not None:
            thread.join(timeout=5.0)
