"""TDP process management (paper Sections 2.2, 2.3, 3.1).

Two layers:

* :class:`ProcessBackend` — the OS-neutral mechanism interface the paper
  asks for ("TDP provides its own set of interfaces that are OS
  neutral"), with :class:`SimHostBackend` for the simulated substrate
  (and :class:`repro.osproc.backend.PosixBackend` for real processes).

* :class:`ProcessControlService` — the *policy*: it runs inside the RM,
  which is the single owner of process control (Section 2.3).  It
  executes control requests, publishes ``proc.<pid>.status`` updates to
  the attribute space, and services control requests that run-time tools
  submit through the space ("When the RT needs to perform a process
  management operation, it contacts the RM").
"""

from __future__ import annotations

import threading
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Callable

from repro import errors, obs
from repro.attrspace import protocol
from repro.attrspace.client import AttributeSpaceClient
from repro.attrspace.notify import Notification
from repro.tdp.wellknown import Attr, CreateMode, ProcStatus
from repro.util.ids import fresh_token
from repro.util.log import get_logger

_log = get_logger("tdp.process")


@dataclass
class ProcessInfo:
    """Backend-independent snapshot of one managed process."""

    pid: int
    host: str
    executable: str
    status: str  # a ProcStatus value
    exit_code: int | None = None


class ProcessBackend(ABC):
    """Mechanism interface over some process substrate (sim or POSIX)."""

    @abstractmethod
    def create(
        self,
        executable: str,
        argv: list[str],
        *,
        env: dict[str, str] | None = None,
        mode: CreateMode = CreateMode.RUN,
    ) -> ProcessInfo:
        """Create a process; ``CreateMode.PAUSED`` stops it pre-``main``."""

    @abstractmethod
    def attach(self, pid: int, tracer: str) -> ProcessInfo:
        """Attach a tracer: stop the process at its current point."""

    @abstractmethod
    def detach(self, pid: int, *, resume: bool = True) -> None: ...

    @abstractmethod
    def continue_process(self, pid: int) -> None: ...

    @abstractmethod
    def pause(self, pid: int) -> None:
        """Stop the process; returns after it has actually stopped."""

    @abstractmethod
    def kill(self, pid: int, signal: int = 15) -> None: ...

    @abstractmethod
    def status(self, pid: int) -> ProcessInfo: ...

    @abstractmethod
    def wait_exit(self, pid: int, timeout: float | None = None) -> int: ...

    @abstractmethod
    def on_exit(self, pid: int, listener: Callable[[ProcessInfo], None]) -> None:
        """Register an exit listener (fires at most once)."""

    @property
    @abstractmethod
    def hostname(self) -> str: ...


class SimHostBackend(ProcessBackend):
    """Backend over one :class:`~repro.sim.host.SimHost`."""

    #: how long pause() waits for the scheduler to park the process
    PAUSE_TIMEOUT = 10.0

    def __init__(self, host) -> None:  # host: repro.sim.host.SimHost
        self._host = host

    @property
    def hostname(self) -> str:
        return self._host.name

    def _info(self, proc) -> ProcessInfo:
        from repro.sim.process import ProcessState

        state = proc.state
        if state is ProcessState.EXITED:
            status = ProcStatus.exited(proc.exit_code)
        elif state is ProcessState.STOPPED:
            status = ProcStatus.CREATED if not proc.started else ProcStatus.STOPPED
        else:
            status = ProcStatus.RUNNING
        return ProcessInfo(
            pid=proc.pid,
            host=self._host.name,
            executable=proc.executable,
            status=status,
            exit_code=proc.exit_code,
        )

    def create(self, executable, argv, *, env=None, mode=CreateMode.RUN) -> ProcessInfo:
        proc = self._host.create_process(
            executable, argv, env=env, paused=(mode is CreateMode.PAUSED)
        )
        return self._info(proc)

    def attach(self, pid: int, tracer: str) -> ProcessInfo:
        from repro.sim.process import ProcessState

        proc = self._host.get_process(pid)
        proc.attach(tracer)
        proc.wait_for_state(
            ProcessState.STOPPED, ProcessState.EXITED, timeout=self.PAUSE_TIMEOUT
        )
        return self._info(proc)

    def detach(self, pid: int, *, resume: bool = True) -> None:
        self._host.get_process(pid).detach(resume=resume)

    def continue_process(self, pid: int) -> None:
        self._host.get_process(pid).continue_process()

    def pause(self, pid: int) -> None:
        from repro.sim.process import ProcessState

        proc = self._host.get_process(pid)
        proc.request_stop()
        proc.wait_for_state(
            ProcessState.STOPPED, ProcessState.EXITED, timeout=self.PAUSE_TIMEOUT
        )

    def kill(self, pid: int, signal: int = 15) -> None:
        self._host.get_process(pid).terminate(signal)

    def status(self, pid: int) -> ProcessInfo:
        return self._info(self._host.get_process(pid))

    def wait_exit(self, pid: int, timeout: float | None = None) -> int:
        return self._host.get_process(pid).wait_for_exit(timeout=timeout)

    def on_exit(self, pid: int, listener: Callable[[ProcessInfo], None]) -> None:
        proc = self._host.get_process(pid)
        proc.on_exit(lambda p: listener(self._info(p)))

    # Extra (sim-only) surface used by the dyninst engine.
    def raw_process(self, pid: int):
        return self._host.get_process(pid)


# ---------------------------------------------------------------------------
# The RM-side control service (ownership + status publication + RT requests)
# ---------------------------------------------------------------------------

class ProcessControlService:
    """RM-owned process control with attribute-space integration.

    * Direct calls (the RM's own code path) execute on the backend and
      publish status to the attribute space.
    * Tool requests arrive as ``ctl.req.<token>`` attributes carrying a
      JSON-encoded operation; the service executes them and answers in
      ``ctl.rep.<token>`` — the paper's "the RT ... contacts the RM".
    * Exit codes flow to ``proc.<pid>.status`` so status monitoring has
      a single, OS-independent source of truth (Section 2.3's answer to
      the "which process gets the termination code" mess).
    """

    def __init__(self, backend: ProcessBackend, attrs: AttributeSpaceClient):
        self._backend = backend
        self._attrs = attrs
        self._owner = attrs.member
        self._lock = threading.Lock()
        self._managed: dict[int, ProcessInfo] = {}
        # tdp-guard: _sub_id -> volatile
        # (subscribe-once publish; the unsubscribe path tolerates a
        # concurrent None read by skipping)
        self._sub_id: int | None = None

    # -- publication helpers ----------------------------------------------------

    def _publish_status(self, pid: int, status: str) -> None:
        self._attrs.put(Attr.proc_status(pid), status)

    def _register_exit_publisher(self, pid: int) -> None:
        def on_exit(info: ProcessInfo) -> None:
            try:
                self._publish_status(pid, info.status)
                self._attrs.put(Attr.proc_exit_code(pid), str(info.exit_code))
            except errors.TdpError:
                _log.debug("could not publish exit of pid %s (handle closed)", pid)

        self._backend.on_exit(pid, on_exit)

    # -- RM-direct operations ------------------------------------------------------

    def create(
        self,
        executable: str,
        argv: list[str],
        *,
        env: dict[str, str] | None = None,
        mode: CreateMode = CreateMode.RUN,
    ) -> ProcessInfo:
        info = self._backend.create(executable, argv, env=env, mode=mode)
        with self._lock:
            self._managed[info.pid] = info
        self._register_exit_publisher(info.pid)
        self._publish_status(info.pid, info.status)
        return info

    def attach(self, pid: int, tracer: str) -> ProcessInfo:
        info = self._backend.attach(pid, tracer)
        with self._lock:
            self._managed.setdefault(pid, info)
        self._publish_status(pid, ProcStatus.STOPPED)
        return info

    def detach(self, pid: int, *, resume: bool = True) -> None:
        self._backend.detach(pid, resume=resume)
        if resume:
            self._publish_status(pid, ProcStatus.RUNNING)

    def continue_process(self, pid: int) -> None:
        self._backend.continue_process(pid)
        self._publish_status(pid, ProcStatus.RUNNING)

    def pause(self, pid: int) -> None:
        self._backend.pause(pid)
        self._publish_status(pid, ProcStatus.STOPPED)

    def kill(self, pid: int, signal: int = 15) -> None:
        self._backend.kill(pid, signal)

    def status(self, pid: int) -> ProcessInfo:
        return self._backend.status(pid)

    def wait_exit(self, pid: int, timeout: float | None = None) -> int:
        return self._backend.wait_exit(pid, timeout=timeout)

    def managed_pids(self) -> list[int]:
        with self._lock:
            return sorted(self._managed)

    # -- the RT-request channel -------------------------------------------------------

    #: operations a tool may request; "create" stays RM-only by design
    TOOL_OPS = ("attach", "continue", "pause", "kill", "detach")

    def serve_tool_requests(self) -> None:
        """Subscribe to ``ctl.req.*`` and execute tool control requests.

        Replies are delivered when the RM services its event queue
        (callbacks run from ``tdp_service_events`` on the RM's handle) —
        the same safe-point discipline as every other TDP callback.
        """
        if self._sub_id is not None:
            return
        self._sub_id = self._attrs.subscribe(
            Attr.CTL_REQUEST_PATTERN, self._on_request, None
        )

    def _on_request(self, notification: Notification, _arg) -> None:
        if notification.kind != "put" or notification.value is None:
            return
        token = Attr.ctl_request_token(notification.attribute)
        try:
            request = protocol.decode_payload(notification.value)
            op = request["op"]
            pid = int(request["pid"])
            requester = str(request.get("requester", "?"))
        except (errors.ProtocolError, ValueError, KeyError, TypeError) as e:
            self._attrs.put(Attr.ctl_reply(token), f"error:malformed request ({e})")
            return
        if op not in self.TOOL_OPS:
            self._attrs.put(
                Attr.ctl_reply(token),
                f"error:operation {op!r} not permitted for tools",
            )
            return
        try:
            if op == "attach":
                self.attach(pid, tracer=requester)
            elif op == "continue":
                self.continue_process(pid)
            elif op == "pause":
                self.pause(pid)
            elif op == "kill":
                self.kill(pid)
            elif op == "detach":
                self.detach(pid)
        except errors.TdpError as e:
            self._attrs.put(Attr.ctl_reply(token), f"error:{e}")
            return
        self._attrs.put(Attr.ctl_reply(token), "ok")


def submit_tool_request(
    attrs: AttributeSpaceClient, op: str, pid: int, *, timeout: float | None = 30.0
) -> None:
    """Tool-side: submit a control request and block for the RM's reply.

    Raises :class:`~repro.errors.NotProcessOwnerError` when the RM
    rejects the operation and propagates other RM-side failures as
    :class:`~repro.errors.ProcessError`.
    """
    token = fresh_token("ctl")
    with obs.span("ctl.request", actor=attrs.member, op=op, pid=pid):
        attrs.put(
            Attr.ctl_request(token),
            protocol.encode_payload({"op": op, "pid": pid, "requester": attrs.member}),
        )
        reply = attrs.get(Attr.ctl_reply(token), timeout=timeout)
    if reply == "ok":
        return
    message = reply[len("error:"):] if reply.startswith("error:") else reply
    if "not permitted" in message:
        raise errors.NotProcessOwnerError(message)
    raise errors.ProcessError(message)
