"""The TDP C-style API (paper Section 3).

Thin, flat functions mirroring the paper's library so daemon code reads
like the pseudo-code in the paper::

    handle = tdp_init(transport, lass_ep, member="starter", role=Role.RM,
                      backend=SimHostBackend(host))
    info = tdp_create_process(handle, "foo", ["1", "2", "3"],
                              mode=CreateMode.PAUSED)
    tdp_put(handle, "pid", str(info.pid))
    ...
    tdp_exit(handle)

Each function validates the handle's role where the paper assigns
responsibility (process *creation* is RM-only; control requests from
tools are forwarded to the RM via the attribute space).
"""

from __future__ import annotations

from typing import Any, Callable

from repro import errors, obs
from repro.attrspace.client import ReconnectPolicy
from repro.net.address import Endpoint
from repro.tdp.handle import Role, TdpHandle, open_handle
from repro.tdp.process import ProcessBackend, ProcessInfo, submit_tool_request
from repro.tdp.wellknown import Attr, CreateMode, ProcStatus
from repro.transport.base import Transport

# ---------------------------------------------------------------------------
# Initialization / teardown (Section 3.2)
# ---------------------------------------------------------------------------

def tdp_init(
    transport: Transport,
    lass_endpoint: Endpoint,
    *,
    member: str,
    role: Role,
    context: str = "default",
    src_host: str | None = None,
    cass_endpoint: Endpoint | None = None,
    backend: ProcessBackend | None = None,
    reconnect: ReconnectPolicy | None = None,
    lease_ttl: float | None = None,
) -> TdpHandle:
    """Initialize the TDP framework for one daemon; returns the handle.

    The RM passes a distinct ``context`` per tool it manages ("A
    different context parameter is used by the RM in each tdp_init call
    to create a different space", Section 3.2).  RM daemons also pass
    their process ``backend``; tool daemons do not (control is requested
    through the RM).  ``reconnect``/``lease_ttl`` opt the sessions into
    transparent recovery from transport faults (see ``open_handle``).
    """
    with obs.span("tdp_init", actor=member, context=context):
        return open_handle(
            transport,
            lass_endpoint,
            member=member,
            role=role,
            context=context,
            src_host=src_host,
            cass_endpoint=cass_endpoint,
            backend=backend,
            reconnect=reconnect,
            lease_ttl=lease_ttl,
        )


def tdp_exit(handle: TdpHandle) -> None:
    """Disengage from the TDP library and attribute space (Section 3.2).

    The context is destroyed at the server when its last member exits.
    """
    with obs.span("tdp_exit", actor=handle.member):
        handle.close()


# ---------------------------------------------------------------------------
# Attribute space: blocking (Section 3.2)
# ---------------------------------------------------------------------------

def tdp_put(
    handle: TdpHandle, attribute: str, value: str, *, ephemeral: bool = False
) -> None:
    """Blocking put: returns once the attribute is stored in the space.

    ``ephemeral`` ties the attribute to this daemon's session: the server
    purges it when the daemon detaches or its session lease expires, so
    liveness claims (heartbeats, endpoint advertisements) cannot outlive
    their author.
    """
    handle._check_open()
    with obs.span("tdp_put", actor=handle.member, attribute=attribute):
        handle.attrs.put(attribute, value, ephemeral=ephemeral)


def tdp_put_many(
    handle: TdpHandle,
    items: Any,
    *,
    ephemeral: bool = False,
) -> list[int]:
    """Batched blocking put: many attributes, one round trip.

    ``items`` is an iterable of ``(attribute, value)`` pairs or
    ``(attribute, value, ephemeral)`` triples (per-item override of the
    batch-wide flag).  Returns stored version numbers positionally.
    Equivalent to a ``tdp_put`` per item, but the server applies the
    whole list under one store-lock hold and concurrent readers see it
    atomically — the bulk-state-operation lever of the hot publishers
    (metric samples, heartbeats, process-launch attribute sets).
    """
    handle._check_open()
    items = list(items)
    with obs.span("tdp_put_many", actor=handle.member, count=len(items)):
        return handle.attrs.put_many(items, ephemeral=ephemeral)


def tdp_get(handle: TdpHandle, attribute: str, timeout: float | None = None) -> str:
    """Blocking get: waits until the attribute exists, then returns it."""
    handle._check_open()
    with obs.span("tdp_get", actor=handle.member, attribute=attribute):
        return handle.attrs.get(attribute, timeout=timeout)


def tdp_try_get(handle: TdpHandle, attribute: str) -> str:
    """Non-blocking get; raises ``NoSuchAttributeError`` when absent."""
    handle._check_open()
    with obs.span("tdp_try_get", actor=handle.member, attribute=attribute):
        return handle.attrs.try_get(attribute)


def tdp_remove(handle: TdpHandle, attribute: str) -> bool:
    handle._check_open()
    with obs.span("tdp_remove", actor=handle.member, attribute=attribute):
        return handle.attrs.remove(attribute)


# ---------------------------------------------------------------------------
# Attribute space: asynchronous + event notification (Sections 3.2, 3.3)
# ---------------------------------------------------------------------------

def tdp_async_get(
    handle: TdpHandle,
    attribute: str,
    callback: Callable[[Any, Exception | None, Any], None],
    callback_arg: Any = None,
) -> None:
    """Asynchronous get: returns immediately; the callback runs from
    :func:`tdp_service_events` once the value is available."""
    handle._check_open()
    with obs.span("tdp_async_get", actor=handle.member, attribute=attribute):
        handle.attrs.async_get(attribute, callback, callback_arg)


def tdp_async_put(
    handle: TdpHandle,
    attribute: str,
    value: str,
    callback: Callable[[Any, Exception | None, Any], None],
    callback_arg: Any = None,
) -> None:
    """Asynchronous put with completion callback (same delivery rules)."""
    handle._check_open()
    with obs.span("tdp_async_put", actor=handle.member, attribute=attribute):
        handle.attrs.async_put(attribute, value, callback, callback_arg)


def tdp_subscribe(
    handle: TdpHandle,
    pattern: str,
    callback: Callable[..., None],
    callback_arg: Any = None,
) -> int:
    """Subscribe to change notifications for attributes matching ``pattern``."""
    handle._check_open()
    with obs.span("tdp_subscribe", actor=handle.member, pattern=pattern):
        return handle.attrs.subscribe(pattern, callback, callback_arg)


def tdp_service_events(handle: TdpHandle, max_events: int | None = None) -> int:
    """Run pending callbacks at the daemon's safe point (Section 3.3)."""
    handle._check_open()
    return handle.service_events(max_events=max_events)


def tdp_poll(handle: TdpHandle, timeout: float | None = None) -> bool:
    """Block until the handle has serviceable events — the library's
    version of "activity on the tdp descriptor"."""
    handle._check_open()
    return handle.poll(timeout=timeout)


# ---------------------------------------------------------------------------
# Process management (Sections 2.2, 2.3, 3.1)
# ---------------------------------------------------------------------------

def _require_rm(handle: TdpHandle, operation: str) -> None:
    if handle.control is None:
        raise errors.NotProcessOwnerError(
            f"{operation} requires an RM-role handle with a process backend; "
            f"{handle.member} has role={handle.role.value}"
        )


def tdp_create_process(
    handle: TdpHandle,
    executable: str,
    argv: list[str] | None = None,
    *,
    env: dict[str, str] | None = None,
    mode: CreateMode = CreateMode.RUN,
) -> ProcessInfo:
    """Create a process; ``CreateMode.PAUSED`` stops it before ``main``.

    RM-only: "the RM creates, but does not start, the application
    process" (Section 1).  Tools needing a process created go through
    the RM (as in the pilot's submit-file flow).
    """
    handle._check_open()
    _require_rm(handle, "tdp_create_process")
    assert handle.control is not None
    with obs.span(
        "tdp_create_process", actor=handle.member,
        executable=executable, mode=mode.value,
    ):
        return handle.control.create(executable, list(argv or []), env=env, mode=mode)


def tdp_attach(handle: TdpHandle, pid: int) -> None:
    """Attach to a process: obtain control and pause it (Section 2.2 case 3).

    On an RM handle this acts directly; on a tool handle the request is
    forwarded to the RM through the attribute space and this call blocks
    until the RM confirms the process is stopped.
    """
    handle._check_open()
    with obs.span("tdp_attach", actor=handle.member, pid=pid):
        if handle.control is not None:
            handle.control.attach(pid, tracer=handle.member)
            return
        submit_tool_request(handle.attrs, "attach", pid)


def tdp_continue_process(handle: TdpHandle, pid: int) -> None:
    """Resume a stopped process (both Figure 3 scenarios end with this)."""
    handle._check_open()
    with obs.span("tdp_continue_process", actor=handle.member, pid=pid):
        if handle.control is not None:
            handle.control.continue_process(pid)
            return
        submit_tool_request(handle.attrs, "continue", pid)


def tdp_pause_process(handle: TdpHandle, pid: int) -> None:
    """Stop a running process; coordinated through the RM for tools
    (Section 2.3: pausing must not look like a fault to the RM)."""
    handle._check_open()
    with obs.span("tdp_pause_process", actor=handle.member, pid=pid):
        if handle.control is not None:
            handle.control.pause(pid)
            return
        submit_tool_request(handle.attrs, "pause", pid)


def tdp_detach(handle: TdpHandle, pid: int) -> None:
    handle._check_open()
    with obs.span("tdp_detach", actor=handle.member, pid=pid):
        if handle.control is not None:
            handle.control.detach(pid)
            return
        submit_tool_request(handle.attrs, "detach", pid)


def tdp_kill(handle: TdpHandle, pid: int) -> None:
    handle._check_open()
    with obs.span("tdp_kill", actor=handle.member, pid=pid):
        if handle.control is not None:
            handle.control.kill(pid)
            return
        submit_tool_request(handle.attrs, "kill", pid)


def tdp_process_status(handle: TdpHandle, pid: int) -> str:
    """Current ``ProcStatus`` value for a pid, read from the space.

    Any daemon may call this: status is published by the RM, the single
    source of truth, so tools never race the OS for it.
    """
    handle._check_open()
    with obs.span("tdp_process_status", actor=handle.member, pid=pid):
        return handle.attrs.get(Attr.proc_status(pid), timeout=10.0)


def tdp_wait_exit(handle: TdpHandle, pid: int, timeout: float | None = None) -> int:
    """Block until the process exits; returns the exit code.

    RM handles wait on the backend; tool handles wait for the
    ``proc.<pid>.exit_code`` attribute the RM publishes.
    """
    handle._check_open()
    with obs.span("tdp_wait_exit", actor=handle.member, pid=pid):
        if handle.control is not None:
            return handle.control.wait_exit(pid, timeout=timeout)
        return int(handle.attrs.get(Attr.proc_exit_code(pid), timeout=timeout))
