"""Tool daemon ↔ front-end communication setup (paper Section 2.4).

"In general, TDP will provide a host/port number pair to the RT to
contact its front-end … If the private networks block such connections,
then the host/port number will be that of the RM's proxy."

The front-end publishes its endpoint (``rt.frontend``); the RM publishes
its proxy endpoint (``rm.proxy``) when one exists; and the tool daemon
calls :func:`connect_to_frontend`, which hides the direct-vs-proxied
decision entirely — the paper's transparency requirement.
"""

from __future__ import annotations

from repro import errors
from repro.net.address import Endpoint, parse_endpoint
from repro.tdp.handle import TdpHandle
from repro.tdp.wellknown import Attr
from repro.transport.base import Channel, Transport
from repro.transport.proxy import connect_maybe_proxied


def publish_frontend_endpoint(handle: TdpHandle, endpoint: Endpoint) -> None:
    """Front-end side: advertise where tool daemons should connect.

    In the pilot this information was wired into the submit file
    (``-p2090 -P2091``); "in a complete TDP framework, port arguments
    should be published … and disseminated to remote sites as attribute
    values" (Section 4.3) — which is what this function does.
    """
    handle.attrs.put(Attr.RT_FRONTEND, str(endpoint))


def publish_proxy_endpoint(handle: TdpHandle, endpoint: Endpoint) -> None:
    """RM side: advertise the proxy usable for crossing the private network.

    TDP "does not require a new proxy facility …; it merely leverages
    existing ones (if present)" — the RM names its own here.
    """
    handle.attrs.put(Attr.RM_PROXY, str(endpoint))


def frontend_endpoint(handle: TdpHandle, timeout: float | None = 30.0) -> Endpoint:
    """Read the advertised front-end endpoint (blocking until published)."""
    return parse_endpoint(handle.attrs.get(Attr.RT_FRONTEND, timeout=timeout))


def proxy_endpoint(handle: TdpHandle) -> Endpoint | None:
    """The RM's advertised proxy, or ``None`` when not published."""
    try:
        return parse_endpoint(handle.attrs.try_get(Attr.RM_PROXY))
    except errors.NoSuchAttributeError:
        return None


def connect_to_frontend(
    handle: TdpHandle,
    transport: Transport,
    src_host: str,
    *,
    timeout: float | None = 30.0,
) -> Channel:
    """Tool-daemon side: open a channel to the front-end, however reachable.

    Tries the direct path; when the firewall refuses it and the RM has
    published a proxy, tunnels through it.  The caller cannot tell the
    difference — both return an ordinary channel.
    """
    target = frontend_endpoint(handle, timeout=timeout)
    proxy = proxy_endpoint(handle)
    return connect_maybe_proxied(transport, src_host, target, proxy, timeout=timeout)
