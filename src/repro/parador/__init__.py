"""Parador: Paradyn + Condor through TDP (paper Section 4).

This package is the pilot integration: the ~500-modified-lines' worth of
adapter code that teaches our Condor to launch tool daemons and our
Paradyn to find its application through the attribute space.  The
:mod:`~repro.parador.run` module assembles complete scenarios (vanilla
and MPI universes, firewalled topologies) used by the examples, the
integration tests, and the figure-regeneration benches.
"""

from repro.parador.adapters import make_tool_registry, register_paradynd
from repro.parador.run import ParadorScenario, run_monitored_job

__all__ = [
    "make_tool_registry",
    "register_paradynd",
    "ParadorScenario",
    "run_monitored_job",
]
