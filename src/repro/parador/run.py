"""End-to-end Parador scenarios: the pilot, assembled.

:class:`ParadorScenario` builds the full Figure 5A world on a simulated
cluster: a Condor pool, the Paradyn front-end started first (as in the
pilot: "the Paradyn Front-end was started first … the front-end
publishes two port numbers"), and submit files with the ``+ToolDaemon*``
extensions.  :func:`run_monitored_job` is the one-call version used by
the quickstart example.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.condor.job import JobRecord, JobStatus
from repro.condor.pool import CondorPool
from repro.condor.submit import SubmitDescription, ToolDaemonSpec
from repro.mpisim.programs import register_mpi_programs
from repro.paradyn.frontend import DaemonSession, ParadynFrontend
from repro.parador.adapters import make_tool_registry
from repro.sim.cluster import SimCluster
from repro.util.log import TraceRecorder


def monitored_submit_text(
    executable: str,
    arguments: str = "",
    *,
    frontend_host: str | None,
    port1: int | None,
    port2: int | None,
    output: str = "outfile",
) -> str:
    """Build a Figure-5B-shaped submit file for a monitored job.

    With ``frontend_host=None`` the ``-m/-p/-P`` arguments are omitted —
    the "complete TDP framework" configuration where the front-end's
    address travels through the attribute space instead of the command
    line.
    """
    if frontend_host is not None:
        endpoint_args = f"-m{frontend_host} -p{port1} -P{port2} "
    else:
        endpoint_args = ""
    return (
        f"universe = Vanilla\n"
        f"executable = {executable}\n"
        f"output = {output}\n"
        f"arguments = {arguments}\n"
        f"+SuspendJobAtExec = True\n"
        f'+ToolDaemonCmd = "paradynd"\n'
        f'+ToolDaemonArgs = "-zunix -l3 {endpoint_args}-a%pid"\n'
        f'+ToolDaemonOutput = "daemon.out"\n'
        f'+ToolDaemonError = "daemon.err"\n'
        f"queue\n"
    )


@dataclass
class MonitoredRun:
    """Everything a finished (or running) monitored job exposes."""

    job: JobRecord
    session: DaemonSession


class ParadorScenario:
    """A complete Parador world on one simulated cluster.

    Use as a context manager::

        with ParadorScenario(execute_hosts=["node1"]) as scenario:
            run = scenario.submit_monitored("foo", "1 2 3")
            run.job.wait_terminal(timeout=60)
    """

    def __init__(
        self,
        *,
        execute_hosts: list[str] | None = None,
        submit_host: str = "submit",
        auto_run: bool = True,
        use_cass: bool = False,
        trace: TraceRecorder | None = None,
        cluster: SimCluster | None = None,
    ):
        hosts = execute_hosts if execute_hosts is not None else ["node1"]
        self.cluster = (
            cluster
            if cluster is not None
            else SimCluster.flat([submit_host, *hosts])
        )
        self._owns_cluster = cluster is None
        self.submit_host = submit_host
        # Default trace timestamps come from the scenario's virtual clock,
        # not wall time: simulated daemons record simulated instants.
        self.trace = (
            trace if trace is not None else TraceRecorder(clock=self.cluster.clock)
        )
        self.cluster.start()
        register_mpi_programs(self.cluster.registry)
        # The pilot started the Paradyn front-end first; it publishes the
        # two port numbers that appear in the submit file.
        self.frontend = ParadynFrontend(self.cluster.transport, submit_host)
        self.port1 = self.frontend.endpoint.port
        self.port2 = self.port1 + 1  # the pilot's second (data) port
        self.pool = CondorPool(
            self.cluster,
            submit_host=submit_host,
            execute_hosts=hosts,
            tool_registry=make_tool_registry(auto_run=auto_run),
            trace=self.trace,
        )
        self._daemons_seen = 0
        self.use_cass = use_cass
        self._cass_client = None
        if use_cass:
            # The "complete TDP framework": the Paradyn front-end
            # publishes its endpoint into the pool-global CASS instead of
            # the submit file; starters disseminate it to each LASS.
            from repro.attrspace.client import AttributeSpaceClient
            from repro.tdp.wellknown import Attr

            cass = self.pool.schedd.cass
            assert cass is not None, "CASS mode requires the schedd's CASS"
            channel = self.cluster.transport.connect(submit_host, cass.endpoint)
            self._cass_client = AttributeSpaceClient(
                channel, member="paradyn-frontend"
            )
            self._cass_client.put(Attr.RT_FRONTEND, str(self.frontend.endpoint))

    # -- submission --------------------------------------------------------------

    def submit_monitored(
        self, executable: str, arguments: str = "", *, output: str = "outfile"
    ) -> MonitoredRun:
        """Submit a monitored vanilla job and wait for its paradynd."""
        text = monitored_submit_text(
            executable,
            arguments,
            frontend_host=None if self.use_cass else self.submit_host,
            port1=None if self.use_cass else self.port1,
            port2=None if self.use_cass else self.port2,
            output=output,
        )
        job = self.pool.submit_file(text)[0]
        self._daemons_seen += 1
        sessions = self.frontend.wait_for_daemons(self._daemons_seen, timeout=60.0)
        return MonitoredRun(job=job, session=sessions[-1])

    def submit_unmonitored(self, executable: str, arguments: str = "") -> JobRecord:
        desc = SubmitDescription(
            executable=executable,
            arguments=arguments.split() if arguments else [],
        )
        return self.pool.submit_description(desc)

    # -- lifecycle ----------------------------------------------------------------

    def stop(self) -> None:
        if self._cass_client is not None:
            self._cass_client.close()
        self.pool.stop()
        self.frontend.stop()
        if self._owns_cluster:
            self.cluster.stop()

    def __enter__(self) -> "ParadorScenario":
        return self

    def __exit__(self, *exc) -> None:
        self.stop()


def run_monitored_job(
    executable: str = "foo",
    arguments: str = "1 2 3",
    *,
    timeout: float = 60.0,
) -> MonitoredRun:
    """One-call pilot run: submit, monitor, wait for completion.

    Returns after the job completed and the paradynd observed its exit;
    the scenario is torn down before returning.  The returned record and
    session remain readable (their data is final).
    """
    with ParadorScenario() as scenario:
        run = scenario.submit_monitored(executable, arguments)
        run.job.wait_terminal(timeout=timeout)
        run.session.wait_state("exited", timeout=timeout)
        return run


def job_completed(run: MonitoredRun) -> bool:
    return run.job.status is JobStatus.COMPLETED
