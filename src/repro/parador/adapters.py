"""The Parador adapters: wire Paradyn into Condor's tool launch path.

Paper Section 4.3: "The process control of both Paradyn and Condor were
modified to use the TDP library.  While these modifications involved
some re-arranging of the related code in each system, the total code
involved was less than 500 lines."

In this reproduction the equivalents of those modified lines are:

* this module (registering ``paradynd`` as a launchable tool daemon and
  adapting launch options);
* the TDP-specific blocks inside :mod:`repro.condor.starter` (the
  create-paused + publish-pid path, guarded by the submit-file
  extensions);
* the TDP mode of :mod:`repro.paradyn.daemon` (the ``-a%pid`` branch).

The EFFORT bench counts these lines and checks the pilot's claim.
"""

from __future__ import annotations

from repro.condor.tools import ToolLaunchContext, ToolRegistry
from repro.paradyn.daemon import launch_paradynd


def register_paradynd(
    registry: ToolRegistry, *, auto_run: bool = True, name: str = "paradynd"
) -> ToolRegistry:
    """Register the Paradyn daemon under its pilot command name.

    ``auto_run=False`` reproduces the interactive pilot flow: the
    application stops at the start of ``main`` and waits for the user's
    run command from the Paradyn front-end.
    """

    def launcher(ctx: ToolLaunchContext):
        effective_auto_run = auto_run or bool(ctx.extras.get("force_auto_run"))
        return launch_paradynd(ctx, auto_run=effective_auto_run)

    registry.register(name, launcher)
    return registry


def make_tool_registry(*, auto_run: bool = True) -> ToolRegistry:
    """A tool registry with paradynd pre-registered (the common case)."""
    return register_paradynd(ToolRegistry(), auto_run=auto_run)
