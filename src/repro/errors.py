"""Exception hierarchy for the TDP reproduction.

Every error raised by the public API derives from :class:`TdpError` so
callers can catch one base class.  The hierarchy mirrors the three service
groups of the paper (Section 3): process management, inter-daemon
communication (attribute space / transport), and event notification —
plus the substrates (cluster simulation, resource manager, run-time tool).
"""

from __future__ import annotations


class TdpError(Exception):
    """Base class for every error raised by this library."""


# ---------------------------------------------------------------------------
# Attribute space / communication errors (paper Section 2.1, 3.2)
# ---------------------------------------------------------------------------

class AttributeSpaceError(TdpError):
    """Base class for attribute-space failures."""


class NoSuchAttributeError(AttributeSpaceError, KeyError):
    """``tdp_get`` on an attribute absent from the space (non-blocking mode).

    The paper specifies that a blocking ``tdp_get`` waits; the non-blocking
    variant instead reports this error, matching the C library's error
    return.
    """

    def __init__(self, attribute: str, context: str | None = None):
        self.attribute = attribute
        self.context = context
        super().__init__(attribute)

    def __str__(self) -> str:  # KeyError quotes its arg; keep messages clean
        if self.context is not None:
            return f"no attribute {self.attribute!r} in context {self.context!r}"
        return f"no attribute {self.attribute!r}"


class AttributeFormatError(AttributeSpaceError, ValueError):
    """Attribute names/values must be non-empty strings without NUL bytes."""


class ContextError(AttributeSpaceError):
    """Unknown or already-destroyed attribute-space context."""


class SpaceClosedError(AttributeSpaceError):
    """Operation on an attribute space whose server has shut down."""


class GetTimeoutError(AttributeSpaceError, TimeoutError):
    """A blocking ``tdp_get`` exceeded its caller-supplied timeout."""


class ReconnectFailedError(SpaceClosedError):
    """A reconnecting session exhausted its :class:`ReconnectPolicy`.

    Subclasses :class:`SpaceClosedError` so existing handlers that treat
    a dead space as fatal keep working; catching this type specifically
    distinguishes "the server went away and recovery was attempted" from
    a session that never had reconnection enabled.
    """


# ---------------------------------------------------------------------------
# Transport / network errors
# ---------------------------------------------------------------------------

class TransportError(TdpError):
    """Base class for channel/listener failures."""


class ChannelClosedError(TransportError):
    """Send/receive on a closed channel."""


class ConnectError(TransportError):
    """Could not establish a channel to the requested address."""


class FirewallBlockedError(ConnectError):
    """The simulated firewall/NAT refused the connection.

    This is the failure mode that motivates the TDP proxy interface
    (paper Section 2.4): direct tool-daemon to front-end connections out
    of a private network are blocked and must go through the RM's proxy.
    """


class ProxyError(TransportError):
    """Proxy tunnel establishment or forwarding failed."""


class ProtocolError(TransportError):
    """Malformed or unexpected wire message."""


# ---------------------------------------------------------------------------
# TDP handle / lifecycle errors
# ---------------------------------------------------------------------------

class HandleError(TdpError):
    """Invalid, closed, or foreign TDP handle."""


class AlreadyInitializedError(HandleError):
    """``tdp_init`` called twice for the same daemon/context pair."""


# ---------------------------------------------------------------------------
# Process management errors (paper Section 2.2, 2.3, 3.1)
# ---------------------------------------------------------------------------

class ProcessError(TdpError):
    """Base class for process-management failures."""


class NoSuchProcessError(ProcessError):
    """Operation on a pid that does not exist on the target host."""

    def __init__(self, pid: int, host: str | None = None):
        self.pid = pid
        self.host = host
        where = f" on host {host!r}" if host else ""
        super().__init__(f"no such process {pid}{where}")


class InvalidProcessStateError(ProcessError):
    """Operation illegal in the process's current state.

    e.g. ``tdp_continue_process`` on a process that is not stopped, or
    attaching twice.
    """


class NotProcessOwnerError(ProcessError):
    """A daemon other than the controlling RM attempted a control operation.

    Paper Section 2.3: process control belongs to the RM; the single point
    of responsibility eliminates conflicting control races.  The library
    enforces it by rejecting control calls from non-owners that have not
    been delegated control.
    """


class AttachError(ProcessError):
    """``tdp_attach`` failed (already traced, bad pid, permission)."""


class ExecutableNotFoundError(ProcessError):
    """``tdp_create_process`` could not resolve the executable/program."""


# ---------------------------------------------------------------------------
# File staging errors (paper Section 1, "Tool daemon configuration and data
# files")
# ---------------------------------------------------------------------------

class StagingError(TdpError):
    """Configuration or output file transfer failed."""


# ---------------------------------------------------------------------------
# Simulation substrate errors
# ---------------------------------------------------------------------------

class SimulationError(TdpError):
    """Base class for simulated-cluster failures."""


class NoSuchHostError(SimulationError):
    """Unknown host name in the simulated cluster."""

    def __init__(self, hostname: str):
        self.hostname = hostname
        super().__init__(f"no such host {hostname!r}")


class ProgramFault(SimulationError):
    """A simulated program raised an uncaught fault (crash)."""


# ---------------------------------------------------------------------------
# Resource manager (Condor-like) errors
# ---------------------------------------------------------------------------

class ResourceManagerError(TdpError):
    """Base class for batch-system failures."""


class SubmitError(ResourceManagerError):
    """Malformed submit description file."""


class MatchmakingError(ResourceManagerError):
    """No machine matched the job's requirements."""


class ClaimError(ResourceManagerError):
    """The claiming protocol between schedd and startd failed."""


class UniverseError(ResourceManagerError):
    """Unknown or unsupported execution universe."""


# ---------------------------------------------------------------------------
# Run-time tool (Paradyn-like) errors
# ---------------------------------------------------------------------------

class ToolError(TdpError):
    """Base class for run-time tool failures."""


class InstrumentationError(ToolError):
    """Dynamic instrumentation request could not be applied."""


class MetricError(ToolError):
    """Unknown metric or invalid focus for metric collection."""


# ---------------------------------------------------------------------------
# MPI substrate errors
# ---------------------------------------------------------------------------

class MpiError(TdpError):
    """Base class for simulated-MPI failures."""


class RankError(MpiError):
    """Invalid rank in a communicator operation."""


# ---------------------------------------------------------------------------
# Fault model (extension; the paper calls fault modeling ongoing work)
# ---------------------------------------------------------------------------

class FaultDetected(TdpError):
    """Raised/reported when a monitored entity (AP, RT, AS) fails."""

    def __init__(self, entity_kind: str, entity_id: str, reason: str):
        self.entity_kind = entity_kind
        self.entity_id = entity_id
        self.reason = reason
        super().__init__(f"{entity_kind} {entity_id} failed: {reason}")


# ---------------------------------------------------------------------------
# Concurrency sanitizer (TDP_SANITIZE=1 runtime lockset witness)
# ---------------------------------------------------------------------------

class LockOrderError(TdpError):
    """A thread violated the declared lock hierarchy.

    Raised only when the runtime lockset witness is active
    (``TDP_SANITIZE=1``): acquiring a lock out of rank order, acquiring
    an undeclared lock, or blocking while holding a lock the hierarchy
    does not sanction holding across blocking calls.  The same hierarchy
    (``repro.analysis.lockorder``) backs the static ``lock-order-cycle``
    / ``undeclared-lock-edge`` lint passes, so a witness report should
    always correspond to a fixable ordering bug, not test noise.
    """


class GuardViolationError(TdpError):
    """A shared field was touched without its declared guard held.

    Raised only by the runtime field-access witness (``TDP_SANITIZE=1``
    plus :func:`repro.util.sync.arm_guard_witness`): the committed guard
    manifest (``guards.lock.json``, maintained by ``python -m repro
    guards``) names the lock guarding each witnessed field, and the
    witness descriptor checks the calling thread's lockset on every
    post-construction read/write.  The static ``guarded-field-unlocked``
    lint pass proves the same invariant from the AST; the witness
    catches what static reachability cannot see (dynamic dispatch,
    monkeypatching, test harness threads).
    """
