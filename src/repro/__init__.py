"""Reproduction of *The Tool Daemon Protocol (TDP)*, SC 2003.

TDP is a standard interface between resource managers (batch systems),
run-time tools (debuggers/profilers), and the application processes they
share — turning the m x n tool-porting problem into m + n.  This package
provides:

* the TDP library itself (:mod:`repro.tdp`): ``tdp_init``, the attribute
  space (``tdp_put``/``tdp_get`` and async variants), safe-point event
  servicing, and split-ownership process management;
* the attribute space servers (:mod:`repro.attrspace`): per-host LASS
  and central CASS;
* a simulated distributed substrate (:mod:`repro.sim`) plus a real-POSIX
  backend (:mod:`repro.osproc`);
* a Condor-like batch system (:mod:`repro.condor`), a Paradyn-like
  performance tool (:mod:`repro.paradyn`), an MPICH-ch_p4-style MPI
  runtime (:mod:`repro.mpisim`);
* the Parador pilot joining them (:mod:`repro.parador`) and the
  baselines the paper argues against (:mod:`repro.baselines`).

Quickstart::

    from repro.parador import run_monitored_job
    run = run_monitored_job("foo", "10 0.1")
    print(run.job.exit_code, run.session.latest("proc_cpu"))
"""

from repro.errors import TdpError
from repro.tdp import (
    Attr,
    CreateMode,
    TdpHandle,
    tdp_init,
    tdp_exit,
    tdp_put,
    tdp_put_many,
    tdp_get,
    tdp_try_get,
    tdp_remove,
    tdp_async_get,
    tdp_async_put,
    tdp_subscribe,
    tdp_service_events,
    tdp_poll,
    tdp_create_process,
    tdp_attach,
    tdp_continue_process,
    tdp_pause_process,
    tdp_detach,
    tdp_kill,
    tdp_process_status,
    tdp_wait_exit,
)
from repro.tdp.handle import Role

__version__ = "1.0.0"

__all__ = [
    "TdpError",
    "Attr",
    "CreateMode",
    "Role",
    "TdpHandle",
    "tdp_init",
    "tdp_exit",
    "tdp_put",
    "tdp_put_many",
    "tdp_get",
    "tdp_try_get",
    "tdp_remove",
    "tdp_async_get",
    "tdp_async_put",
    "tdp_subscribe",
    "tdp_service_events",
    "tdp_poll",
    "tdp_create_process",
    "tdp_attach",
    "tdp_continue_process",
    "tdp_pause_process",
    "tdp_detach",
    "tdp_kill",
    "tdp_process_status",
    "tdp_wait_exit",
    "__version__",
]
