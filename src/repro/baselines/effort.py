"""The m x n vs m + n integration-effort model (paper Section 1).

"each run-time tool must be individually ported to run under a
particular job management system; for m tools and n environments, the
problem becomes an m x n effort, rather than the hoped-for m + n
effort."

:class:`EffortModel` turns that argument into numbers, parameterized by
per-port effort measured from THIS repository: the size of one
hard-wired integration (the direct baseline) versus the size of the
one-time TDP adapters per tool and per RM.  :func:`count_adapter_lines`
measures the adapter code so the Section 4.3 claim ("less than 500
lines") is checkable against our own pilot.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from pathlib import Path


def count_source_lines(path: Path) -> int:
    """Non-blank, non-comment, non-docstring source lines of one file.

    This approximates the paper's "lines of code" (they counted modified
    C statements, not comments).
    """
    text = path.read_text()
    tree = ast.parse(text)
    doc_lines: set[int] = set()
    for node in ast.walk(tree):
        if isinstance(node, (ast.Module, ast.ClassDef, ast.FunctionDef, ast.AsyncFunctionDef)):
            body = getattr(node, "body", [])
            if body and isinstance(body[0], ast.Expr) and isinstance(
                body[0].value, ast.Constant
            ) and isinstance(body[0].value.value, str):
                expr = body[0]
                for line in range(expr.lineno, (expr.end_lineno or expr.lineno) + 1):
                    doc_lines.add(line)
    count = 0
    for lineno, line in enumerate(text.splitlines(), start=1):
        stripped = line.strip()
        if not stripped or stripped.startswith("#") or lineno in doc_lines:
            continue
        count += 1
    return count


def count_region_lines(path: Path, qualnames: list[str]) -> int:
    """Source lines of the named defs/classes in one file.

    ``qualnames`` are dotted paths like ``"Starter._launch_tool_daemon"``;
    lines are counted with the same rules as :func:`count_source_lines`
    (no blanks, comments, or docstrings).
    """
    text = path.read_text()
    tree = ast.parse(text)

    def walk(node, prefix=""):
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                qual = f"{prefix}{child.name}"
                yield qual, child
                yield from walk(child, prefix=qual + ".")

    wanted_spans: list[tuple[int, int]] = []
    found: set[str] = set()
    for qual, node in walk(tree):
        if qual in qualnames:
            found.add(qual)
            wanted_spans.append((node.lineno, node.end_lineno or node.lineno))
    missing = set(qualnames) - found
    if missing:
        raise ValueError(f"regions not found in {path}: {sorted(missing)}")

    lines = text.splitlines()
    count = 0
    for start, end in wanted_spans:
        region = "\n".join(lines[start - 1 : end])
        # Reuse the docstring/comment-aware counter on the region alone.
        # Dedent so ast.parse accepts a method body extracted mid-class.
        import textwrap

        region_path_text = textwrap.dedent(region)
        try:
            region_tree = ast.parse(region_path_text)
        except SyntaxError:
            # Fall back to raw non-blank/non-comment counting.
            for line in region.splitlines():
                stripped = line.strip()
                if stripped and not stripped.startswith("#"):
                    count += 1
            continue
        doc_lines: set[int] = set()
        for node in ast.walk(region_tree):
            if isinstance(
                node, (ast.Module, ast.ClassDef, ast.FunctionDef, ast.AsyncFunctionDef)
            ):
                body = getattr(node, "body", [])
                if body and isinstance(body[0], ast.Expr) and isinstance(
                    body[0].value, ast.Constant
                ) and isinstance(body[0].value.value, str):
                    expr = body[0]
                    for line in range(
                        expr.lineno, (expr.end_lineno or expr.lineno) + 1
                    ):
                        doc_lines.add(line)
        for lineno, line in enumerate(region_path_text.splitlines(), start=1):
            stripped = line.strip()
            if stripped and not stripped.startswith("#") and lineno not in doc_lines:
                count += 1
    return count


#: The code that corresponds to the pilot's "modified lines": the
#: TDP-specific additions to our Condor (submit-file extensions and the
#: starter's tool-launch path), to our Paradyn (the TDP entry mode), and
#: the registration glue — everything a non-TDP build would not contain.
INTEGRATION_REGIONS: dict[str, list[str]] = {
    "parador/adapters.py": ["register_paradynd", "make_tool_registry"],
    "condor/starter.py": [
        "Starter._launch_tool_daemon",
        "Starter._make_tool_output_sink",
    ],
    "condor/submit.py": ["ToolDaemonSpec", "_parse_bool"],
    "condor/tools.py": ["percent_names", "ToolLaunchContext"],
    "paradyn/daemon.py": [
        "ParadynDaemon.run",
        "ParadyndArgs.tdp_mode",
        "launch_paradynd",
    ],
}


def count_adapter_lines(package_root: Path | None = None) -> dict[str, int]:
    """Measured integration sizes: {relative_path: source_lines, 'total': n}.

    This is the reproduction's analogue of the paper's "total code
    involved was less than 500 lines": the regions listed in
    :data:`INTEGRATION_REGIONS` are exactly the TDP-aware additions.
    """
    if package_root is None:
        import repro

        package_root = Path(repro.__file__).parent
    sizes: dict[str, int] = {}
    for rel, regions in INTEGRATION_REGIONS.items():
        sizes[rel] = count_region_lines(package_root / rel, regions)
    sizes["total"] = sum(sizes.values())
    return sizes


@dataclass
class EffortModel:
    """Integration effort in source lines for m tools and n RMs.

    * Without TDP: every (tool, RM) pair needs its own port of size
      ``port_cost`` -> ``m * n * port_cost``.
    * With TDP: each tool is adapted once (``tool_adapter_cost``) and
      each RM once (``rm_adapter_cost``) ->
      ``m * tool_adapter_cost + n * rm_adapter_cost``.
    """

    port_cost: int
    tool_adapter_cost: int
    rm_adapter_cost: int

    def without_tdp(self, m: int, n: int) -> int:
        return m * n * self.port_cost

    def with_tdp(self, m: int, n: int) -> int:
        return m * self.tool_adapter_cost + n * self.rm_adapter_cost

    def savings_factor(self, m: int, n: int) -> float:
        with_ = self.with_tdp(m, n)
        return self.without_tdp(m, n) / with_ if with_ else float("inf")

    def crossover(self, max_dim: int = 100) -> tuple[int, int] | None:
        """Smallest symmetric (m, n) where TDP wins, or None below max_dim."""
        for k in range(1, max_dim + 1):
            if self.with_tdp(k, k) < self.without_tdp(k, k):
                return (k, k)
        return None

    def table(self, dims: list[int]) -> list[dict[str, float]]:
        """Rows for the EFFORT bench: m=n sweeps."""
        rows = []
        for k in dims:
            rows.append(
                {
                    "m=n": k,
                    "without_tdp": self.without_tdp(k, k),
                    "with_tdp": self.with_tdp(k, k),
                    "savings": round(self.savings_factor(k, k), 2),
                }
            )
        return rows


def measured_model(package_root: Path | None = None) -> EffortModel:
    """EffortModel parameterized from this repository's own code sizes.

    ``port_cost`` is the size of the hard-wired direct integration;
    adapter costs split the measured Parador adapter between the tool
    and RM sides (the paper's <500 modified lines covered both).
    """
    if package_root is None:
        import repro

        package_root = Path(repro.__file__).parent
    port = count_source_lines(package_root / "baselines" / "direct.py")
    sizes = count_adapter_lines(package_root)
    tool_side = sizes.get("paradyn/daemon.py", 0) + sizes.get(
        "parador/adapters.py", 0
    )
    rm_side = sizes["total"] - tool_side
    return EffortModel(
        port_cost=max(port, 1),
        tool_adapter_cost=max(tool_side, 1),
        rm_adapter_cost=max(rm_side, 1),
    )
