"""Baselines the paper argues against.

* :mod:`~repro.baselines.direct` — a hard-wired, point-solution
  integration of the tool with the batch system (the "Totalview under
  MPICH" style the paper cites): functionally equivalent for ONE
  (RM, RT) pair, but structurally unreusable.
* :mod:`~repro.baselines.effort` — the m x n vs m + n integration-effort
  model from the paper's introduction, parameterized by measured
  adapter sizes from this repository.
"""

from repro.baselines.direct import DirectIntegration, run_direct_monitored_job
from repro.baselines.effort import EffortModel, count_adapter_lines

__all__ = [
    "DirectIntegration",
    "run_direct_monitored_job",
    "EffortModel",
    "count_adapter_lines",
]
