"""The non-TDP baseline: a hard-wired tool/batch-system integration.

This is the "point-solution success" the paper concedes exists (such as
Totalview running under MPICH) and argues does not scale: the tool and
the job manager know each other's internals directly.  Concretely, this
integration:

* bypasses the attribute space — the pid is passed through a shared
  in-process variable;
* bypasses the RM-owned control service — the tool manipulates the
  process object directly (the conflicting-control hazard Section 2.3
  exists to prevent);
* only works when tool and job manager run in the same address space on
  the same host — no firewalls, no remote front-end, no second RM.

It exists so benchmarks can show (a) the functional result is the same
for the one pair it supports and (b) what the TDP indirection costs.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

from repro.paradyn.dyninst import DyninstEngine
from repro.paradyn.metrics import Metric, MetricCollector
from repro.sim.cluster import SimCluster
from repro.sim.process import SimProcess


@dataclass
class DirectResult:
    exit_code: int
    proc_cpu: float
    bottleneck_fraction: float | None
    stdout_lines: list[str]


class DirectIntegration:
    """Tool and mini job-manager fused into one object (the anti-pattern)."""

    def __init__(self, cluster: SimCluster, host: str):
        self._cluster = cluster
        self._host = cluster.host(host)
        self._process: SimProcess | None = None
        self._collector: MetricCollector | None = None

    def launch_monitored(
        self, executable: str, argv: list[str], *, profile_function: str | None = None
    ) -> SimProcess:
        """Create paused, instrument, continue — all hard-wired."""
        # "Job manager" part: create the process paused.
        proc = self._host.create_process(executable, argv, paused=True)
        self._process = proc
        # "Tool" part: reaches straight into the process — no attach
        # protocol, no ownership, no pid exchange.
        engine = DyninstEngine(proc)
        self._collector = MetricCollector(engine, self._host.name)
        self._collector.enable(Metric.PROC_CPU)
        if profile_function is not None:
            self._collector.enable(Metric.CPU_FRACTION, profile_function)
        proc.continue_process()
        return proc

    def wait_result(self, timeout: float = 60.0) -> DirectResult:
        assert self._process is not None and self._collector is not None
        code = self._process.wait_for_exit(timeout=timeout)
        samples = {s.metric: s.value for s in self._collector.sample_all()}
        fraction = None
        for sample in self._collector.sample_all():
            if sample.metric == Metric.CPU_FRACTION.value:
                fraction = sample.value
        return DirectResult(
            exit_code=code,
            proc_cpu=samples.get(Metric.PROC_CPU.value, 0.0),
            bottleneck_fraction=fraction,
            stdout_lines=list(self._process.stdout_lines),
        )


def run_direct_monitored_job(
    executable: str = "foo",
    argv: list[str] | None = None,
    *,
    profile_function: str = "compute_b",
    timeout: float = 60.0,
) -> DirectResult:
    """One-call baseline run (mirrors parador.run.run_monitored_job)."""
    with SimCluster.flat(["node1"]) as cluster:
        integration = DirectIntegration(cluster, "node1")
        integration.launch_monitored(
            executable, list(argv or []), profile_function=profile_function
        )
        return integration.wait_result(timeout=timeout)
