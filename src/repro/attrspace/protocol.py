"""Wire protocol between attribute-space clients and LASS/CASS servers.

Requests are frames like ``{"op": "put", "req": 7, ...}``; every request
gets exactly one reply ``{"reply_to": 7, "ok": true, ...}``.  The server
may also push unsolicited ``{"op": "notify", ...}`` frames for
subscriptions.  Errors travel as ``{"ok": false, "error_type": ...,
"error": ...}`` and are re-raised client-side as the matching exception
from :mod:`repro.errors`.
"""

from __future__ import annotations

from typing import Any

from repro import errors

# Request operations
OP_ATTACH = "attach"        # join a context (tdp_init); optional fields
                            # session (token) + lease_ttl (seconds) open or
                            # resume a server-side session lease
OP_DETACH = "detach"        # leave a context (tdp_exit); optional session
OP_PUT = "put"              # optional field ephemeral (bool): the value is
                            # purged when its writer's lease expires/detaches
OP_GET = "get"              # fields: block (bool), timeout (float|None)
OP_REMOVE = "remove"
OP_LIST = "list"
OP_SNAPSHOT = "snapshot"
OP_SUBSCRIBE = "subscribe"  # fields: pattern
OP_UNSUBSCRIBE = "unsubscribe"
OP_PING = "ping"
OP_BATCH = "batch"          # fields: ops (list of sub-requests, each a
                            # req-less put/get/remove frame); answered by
                            # one reply whose "replies" list matches the
                            # sub-requests positionally.  Sub-ops apply
                            # independently, in order — a failed sub-op
                            # carries its own error entry and does not
                            # abort the ones after it.

# Server push
OP_NOTIFY = "notify"

#: Optional observability field on any frame: ``{"t": trace_id, "s":
#: span_id}`` (see :mod:`repro.obs.trace`).  Clients stamp it on
#: requests at registration time — so reconnect replays carry the
#: original context — and servers stamp it on notify pushes so a
#: subscriber's callback joins the putter's trace.  Servers ignore it
#: when observability is disabled; it is never required.
OBS_FIELD = "obs"

#: Attribute-name prefix under which a server publishes its own metrics
#: snapshot into the requesting context on demand: a get of
#: ``tdp.stats.puts`` (see ``repro.tdp.wellknown.Attr.stat``) makes the
#: server refresh every ``tdp.stats.*`` attribute first, so tools can
#: ``tdp_get`` live server statistics through the space itself.
STATS_PREFIX = "tdp.stats."

_ERROR_TYPES: dict[str, type[Exception]] = {
    "no_such_attribute": errors.NoSuchAttributeError,
    "attribute_format": errors.AttributeFormatError,
    "context": errors.ContextError,
    "get_timeout": errors.GetTimeoutError,
    "protocol": errors.ProtocolError,
    "reconnect_failed": errors.ReconnectFailedError,
    "space_closed": errors.SpaceClosedError,
}

_TYPE_NAMES = {
    errors.NoSuchAttributeError: "no_such_attribute",
    errors.AttributeFormatError: "attribute_format",
    errors.ContextError: "context",
    errors.GetTimeoutError: "get_timeout",
    errors.ProtocolError: "protocol",
    # Subclass before base: _TYPE_NAMES is scanned in order by
    # error_reply's isinstance walk.
    errors.ReconnectFailedError: "reconnect_failed",
    errors.SpaceClosedError: "space_closed",
}


def error_fields(exc: Exception) -> dict[str, Any]:
    """The ``ok``/``error_type``/``error`` fields for an exception.

    Shared by whole-request error replies and per-sub-op entries in a
    batch reply.  ``NoSuchAttributeError`` additionally carries its
    attribute/context so :func:`raise_error` reconstructs it losslessly.
    """
    fields: dict[str, Any] = {"ok": False, "error_type": "protocol", "error": str(exc)}
    for klass, name in _TYPE_NAMES.items():
        if isinstance(exc, klass):
            fields["error_type"] = name
            break
    if isinstance(exc, errors.NoSuchAttributeError):
        fields["attribute"] = exc.attribute
        if exc.context is not None:
            fields["context"] = exc.context
    return fields


def error_reply(req: int, exc: Exception) -> dict[str, Any]:
    """Build the error reply frame for an exception."""
    return {"reply_to": req, **error_fields(exc)}


def ok_reply(req: int, **fields: Any) -> dict[str, Any]:
    reply: dict[str, Any] = {"reply_to": req, "ok": True}
    reply.update(fields)
    return reply


def raise_error(reply: dict[str, Any]) -> None:
    """Re-raise the server-side error carried in an error reply."""
    error_type = str(reply.get("error_type", "protocol"))
    message = str(reply.get("error", "unknown server error"))
    klass = _ERROR_TYPES.get(error_type, errors.ProtocolError)
    if klass is errors.NoSuchAttributeError:
        attribute = str(reply.get("attribute", message))
        context = reply.get("context")
        raise errors.NoSuchAttributeError(attribute, context)
    raise klass(message)
