"""Wire protocol between attribute-space clients and LASS/CASS servers.

Requests are frames like ``{"op": "put", "req": 7, ...}``; every request
gets exactly one reply ``{"reply_to": 7, "ok": true, ...}``.  The server
may also push unsolicited ``{"op": "notify", ...}`` frames for
subscriptions.  Errors travel as ``{"ok": false, "error_type": ...,
"error": ...}`` and are re-raised client-side as the matching exception
from :mod:`repro.errors`.

This module is also the **sanctioned wire codec**: the only place that
may call ``json.dumps``/``json.loads`` on protocol data (enforced by the
``raw-wire-codec`` lint rule).  The transport framing layer delegates
its body serialization here, so the roadmap's binary codec can later
swap in behind :func:`encode_body`/:func:`decode_body` without touching
any other module.  The inferred per-op field schema lives in the
committed ``protocol.lock.json`` (see ``python -m repro protocol``).
"""

from __future__ import annotations

import json
from typing import Any

from repro import errors, obs
from repro.attrspace import bincodec

#: Codec names a transport hello may advertise.  ``json`` is the
#: mandatory fallback every peer must accept; ``tdpb1`` is the
#: length-prefixed binary codec (see :mod:`repro.attrspace.bincodec`).
#: Preference order: first supported entry wins during negotiation.
CODEC_JSON = "json"
CODEC_BINARY = bincodec.CODEC_NAME
SUPPORTED_CODECS = (CODEC_BINARY, CODEC_JSON)

# Request operations
OP_ATTACH = "attach"        # join a context (tdp_init); optional fields
                            # session (token) + lease_ttl (seconds) open or
                            # resume a server-side session lease
OP_DETACH = "detach"        # leave a context (tdp_exit); optional session
OP_PUT = "put"              # optional field ephemeral (bool): the value is
                            # purged when its writer's lease expires/detaches
OP_GET = "get"              # fields: block (bool), timeout (float|None)
OP_REMOVE = "remove"
OP_LIST = "list"
OP_SNAPSHOT = "snapshot"
OP_SUBSCRIBE = "subscribe"  # fields: pattern
OP_UNSUBSCRIBE = "unsubscribe"
OP_PING = "ping"
OP_BATCH = "batch"          # fields: ops (list of sub-requests, each a
                            # req-less put/get/remove frame); answered by
                            # one reply whose "replies" list matches the
                            # sub-requests positionally.  Sub-ops apply
                            # independently, in order — a failed sub-op
                            # carries its own error entry and does not
                            # abort the ones after it.

OP_SUB_AGG = "sub_agg"      # LASS->CASS aggregated subscription: fields
                            # pattern, agg (the LASS's stable aggregation
                            # id), origin (the LASS origin id used for
                            # echo suppression and fan-out dedup), epoch
                            # (the shard-map epoch the LASS routed by)
OP_SHARDMAP = "shardmap"    # ask a CASS for the shard map: reply carries
                            # epoch (int) + shards (list of "host:port");
                            # an unsharded server answers epoch 0 and an
                            # empty list ("I am the only shard")

# Server push
OP_NOTIFY = "notify"

#: Optional observability field on any frame: ``{"t": trace_id, "s":
#: span_id}`` (see :mod:`repro.obs.trace`).  Clients stamp it on
#: requests at registration time — so reconnect replays carry the
#: original context — and servers stamp it on notify pushes so a
#: subscriber's callback joins the putter's trace.  Servers ignore it
#: when observability is disabled; it is never required.
OBS_FIELD = "obs"

#: Attribute-name prefix under which a server publishes its own metrics
#: snapshot into the requesting context on demand: a get of
#: ``tdp.stats.puts`` (see ``repro.tdp.wellknown.Attr.stat``) makes the
#: server refresh every ``tdp.stats.*`` attribute first, so tools can
#: ``tdp_get`` live server statistics through the space itself.
STATS_PREFIX = "tdp.stats."

_ERROR_TYPES: dict[str, type[Exception]] = {
    "no_such_attribute": errors.NoSuchAttributeError,
    "attribute_format": errors.AttributeFormatError,
    "context": errors.ContextError,
    "get_timeout": errors.GetTimeoutError,
    "protocol": errors.ProtocolError,
    "reconnect_failed": errors.ReconnectFailedError,
    "space_closed": errors.SpaceClosedError,
}

_TYPE_NAMES = {
    errors.NoSuchAttributeError: "no_such_attribute",
    errors.AttributeFormatError: "attribute_format",
    errors.ContextError: "context",
    errors.GetTimeoutError: "get_timeout",
    errors.ProtocolError: "protocol",
    # Subclass before base: _TYPE_NAMES is scanned in order by
    # error_reply's isinstance walk.
    errors.ReconnectFailedError: "reconnect_failed",
    errors.SpaceClosedError: "space_closed",
}


def error_fields(exc: Exception) -> dict[str, Any]:
    """The ``ok``/``error_type``/``error`` fields for an exception.

    Shared by whole-request error replies and per-sub-op entries in a
    batch reply.  ``NoSuchAttributeError`` additionally carries its
    attribute/context so :func:`raise_error` reconstructs it losslessly.
    """
    fields: dict[str, Any] = {"ok": False, "error_type": "protocol", "error": str(exc)}
    for klass, name in _TYPE_NAMES.items():
        if isinstance(exc, klass):
            fields["error_type"] = name
            break
    if isinstance(exc, errors.NoSuchAttributeError):
        fields["attribute"] = exc.attribute
        if exc.context is not None:
            fields["context"] = exc.context
    return fields


def error_reply(req: int, exc: Exception) -> dict[str, Any]:
    """Build the error reply frame for an exception."""
    return {"reply_to": req, **error_fields(exc)}


def ok_reply(req: int, **fields: Any) -> dict[str, Any]:
    reply: dict[str, Any] = {"reply_to": req, "ok": True}
    reply.update(fields)
    return reply


def raise_error(reply: dict[str, Any], *, op: str | None = None) -> None:
    """Re-raise the server-side error carried in an error reply.

    ``op`` (when the caller knows which request this reply answers)
    annotates decode-side :class:`~repro.errors.ProtocolError`s with the
    op name and req id, so a drifted frame is attributable from the
    message alone.
    """
    error_type = str(reply.get("error_type", "protocol"))
    message = str(reply.get("error", "unknown server error"))
    klass = _ERROR_TYPES.get(error_type, errors.ProtocolError)
    if klass is errors.NoSuchAttributeError:
        attribute = str(reply.get("attribute", message))
        context = reply.get("context")
        raise errors.NoSuchAttributeError(attribute, context)
    if klass is errors.ProtocolError:
        raise frame_error(message, frame=reply, op=op)
    raise klass(message)


# -- sanctioned codec ---------------------------------------------------------


def negotiate_codec(offered: Any) -> str:
    """Server-side codec choice for a hello's ``codecs`` advertisement.

    A missing, corrupt, or unrecognized advertisement falls back to the
    mandatory JSON codec — negotiation can narrow the format, never
    break the connection.
    """
    if isinstance(offered, (list, tuple)):
        for codec in SUPPORTED_CODECS:
            if codec in offered:
                return codec
    return CODEC_JSON


def encode_body(message: dict[str, Any], codec: str = CODEC_JSON) -> bytes:
    """Serialize one frame body to bytes (no transport length prefix)."""
    if codec == CODEC_BINARY:
        return bincodec.encode(message)
    if codec != CODEC_JSON:
        raise errors.ProtocolError(f"unknown wire codec {codec!r}")
    try:
        return json.dumps(message, separators=(",", ":")).encode("utf-8")
    except (TypeError, ValueError) as e:
        raise errors.ProtocolError(f"unserializable message: {e}") from e


def decode_body(data: bytes, binary: bool = False) -> dict[str, Any]:
    """Deserialize a frame body; raises ProtocolError on malformed input.

    The frame header names the body codec per frame (``binary`` flag
    bit), so decode never depends on negotiation state — a peer may
    switch codecs mid-stream (it does, right after the hello ack) and
    both sides stay in sync.
    """
    if binary:
        try:
            return bincodec.decode(data)
        except errors.ProtocolError as e:
            raise frame_error(str(e)) from e
    try:
        obj = json.loads(data.decode("utf-8"))
    except (UnicodeDecodeError, ValueError) as e:
        raise frame_error(f"malformed frame body: {e}") from e
    if not isinstance(obj, dict):
        raise frame_error(
            f"frame body must be a JSON object, got {type(obj).__name__}"
        )
    return obj


def encode_payload(payload: dict[str, Any]) -> str:
    """Serialize a control payload that rides an attribute *value*.

    The RT-request channel (``repro.tdp.process``) tunnels structured
    requests through string-valued attributes; those payloads go through
    the sanctioned codec too so they follow the wire format when the
    codec changes.
    """
    try:
        return json.dumps(payload, separators=(",", ":"), sort_keys=True)
    except (TypeError, ValueError) as e:
        raise errors.ProtocolError(f"unserializable payload: {e}") from e


def decode_payload(text: str) -> dict[str, Any]:
    """Deserialize an attribute-value control payload."""
    try:
        obj = json.loads(text)
    except ValueError as e:
        raise errors.ProtocolError(f"malformed control payload: {e}") from e
    if not isinstance(obj, dict):
        raise errors.ProtocolError(
            f"control payload must be a JSON object, got {type(obj).__name__}"
        )
    return obj


# -- decode/dispatch error context -------------------------------------------


def _trim_frame(frame: Any) -> str:
    text = repr(frame)
    return text[:509] + "..." if len(text) > 512 else text


def frame_error(
    message: str,
    *,
    frame: dict[str, Any] | None = None,
    op: str | None = None,
    req: Any = None,
) -> errors.ProtocolError:
    """Build a :class:`~repro.errors.ProtocolError` with frame context.

    The op name and req id (taken from ``frame`` when not given) are
    appended to the message, and — when observability is on — the
    offending frame is captured in the flight recorder, so a protocol
    failure in a long-running daemon is diagnosable after the fact.
    Allocation-free when observability is disabled beyond the message
    itself.
    """
    if isinstance(frame, dict):
        if op is None:
            raw_op = frame.get("op")
            op = raw_op if isinstance(raw_op, str) else None
        if req is None:
            req = frame.get("req", frame.get("reply_to"))
    context = []
    if op is not None:
        context.append(f"op={op!r}")
    if req is not None:
        context.append(f"req={req}")
    if context:
        message = f"{message} ({', '.join(context)})"
    if frame is not None and obs.enabled():
        obs.record(
            "protocol.frame_error",
            actor="codec",
            error=message,
            frame=_trim_frame(frame),
        )
    return errors.ProtocolError(message)
