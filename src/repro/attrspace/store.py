"""The attribute store: context-partitioned (attribute, value) space.

Semantics pinned from the paper (Section 3.2):

* attributes and values are strings (validated by :mod:`repro.util.strings`);
* ``put`` blocks until the attribute is stored (here: returns after the
  store mutates — callers over a channel block on the reply);
* blocking ``get`` waits until some daemon puts the attribute; the
  non-blocking variant reports an error when absent;
* a *context* partitions the space per (RM, RT) pairing; a context is
  created by the first ``tdp_init`` naming it and destroyed when the last
  member calls ``tdp_exit``;
* attributes can also be removed (Section 2.1: "inserted and removed").

Waiters are callback-registered rather than thread-blocking so one server
thread can park any number of pending blocking GETs (the same reasoning
the paper applies to tool event loops).
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field, replace
from typing import Any, Callable

from repro.errors import (
    AttributeFormatError,
    ContextError,
    NoSuchAttributeError,
    ProtocolError,
    TdpError,
)
from repro.attrspace.notify import Notification, SubscriptionRegistry
from repro.util.ids import IdAllocator
from repro.util.strings import encode_value, validate_attribute_name
from repro.util.sync import tracked_rlock

#: The context used when daemons do not name one explicitly.
DEFAULT_CONTEXT = "default"


@dataclass
class StoredValue:
    """A value plus bookkeeping (who put it, when, how many times updated).

    ``ephemeral`` values are tied to their writer's session: the server
    purges them when the writer detaches or its lease expires (the
    liveness attributes of :mod:`repro.tdp.faults` use this so a dead
    daemon's heartbeat cannot outlive it).
    """

    value: str
    writer: str
    version: int
    stored_at: float
    ephemeral: bool = False


#: One-shot waiter callback.  Called with the attribute's value when a
#: put satisfies the wait, or with ``None`` when the wait is cancelled
#: because the context was destroyed (a remove-kind wake: the attribute
#: can never arrive).
WaiterCallback = Callable[[str | None], None]


@dataclass
class _Context:
    name: str
    members: set[str] = field(default_factory=set)
    data: dict[str, StoredValue] = field(default_factory=dict)
    #: attr -> list of (waiter_id, callback)
    waiters: dict[str, list[tuple[int, WaiterCallback]]] = field(
        default_factory=dict
    )


class AttributeStore:
    """Thread-safe multi-context attribute space.

    This is the server-side state of one LASS or CASS; it is also usable
    directly (in-process) for unit tests and for the simulated programs'
    local access path.
    """

    def __init__(self) -> None:
        self._contexts: dict[str, _Context] = {}
        self._lock = tracked_rlock("attrspace.store.AttributeStore._lock")
        self._waiter_ids = IdAllocator()
        self.subscriptions = SubscriptionRegistry()
        # Pre-create the default context with a synthetic member so it is
        # never garbage-collected by detach bookkeeping.
        ctx = _Context(DEFAULT_CONTEXT)
        ctx.members.add("<builtin>")
        self._contexts[DEFAULT_CONTEXT] = ctx

    # -- context lifecycle --------------------------------------------------

    def attach(self, context: str, member: str) -> None:
        """Join ``member`` to ``context``, creating the context if new.

        Mirrors ``tdp_init(context)``: "A different context parameter is
        used by the RM in each tdp_init call to create a different space."
        """
        with self._lock:
            ctx = self._contexts.get(context)
            if ctx is None:
                ctx = _Context(context)
                self._contexts[context] = ctx
            ctx.members.add(member)

    def detach(self, context: str, member: str) -> bool:
        """Leave a context; destroys it when the last member leaves.

        Returns True when the context was destroyed.  Mirrors
        ``tdp_exit``: "An Attribute Space ... will be destroyed when the
        last element using the specific context calls tdp_exit."

        Destruction cancels every pending blocking get with an explicit
        remove-kind wake (callback invoked with ``None``) — a parked
        waiter must hear that its attribute can never arrive rather than
        hang until a channel timeout.
        """
        doomed: list[tuple[int, WaiterCallback]] = []
        with self._lock:
            ctx = self._contexts.get(context)
            if ctx is None:
                raise ContextError(f"unknown context {context!r}")
            ctx.members.discard(member)
            destroyed = not ctx.members
            if destroyed:
                del self._contexts[context]
                self.subscriptions.drop_context(context)
                for entries in ctx.waiters.values():
                    doomed.extend(entries)
                ctx.waiters.clear()
        # Outside the lock (callbacks may re-enter the store or block on
        # a channel send).
        for _wid, cb in doomed:
            cb(None)
        return destroyed

    def contexts(self) -> list[str]:
        with self._lock:
            return sorted(self._contexts)

    def members(self, context: str) -> set[str]:
        with self._lock:
            return set(self._require(context).members)

    def _require(self, context: str) -> _Context:
        ctx = self._contexts.get(context)
        if ctx is None:
            raise ContextError(f"unknown context {context!r}")
        return ctx

    # -- data operations ------------------------------------------------------

    def put(self, attribute: str, value: str, *, context: str = DEFAULT_CONTEXT,
            writer: str = "?", ephemeral: bool = False,
            origin: str | None = None) -> StoredValue:
        """Store (attribute, value); wakes blocking getters and subscribers.

        Re-putting an existing attribute overwrites it (version bumped) —
        the space is a map, not a multiset; this matches the MPD-style
        usage in the pilot where e.g. a status attribute is updated.
        ``ephemeral`` marks the value for purging when ``writer``'s
        session ends (see :meth:`purge_ephemeral`).  ``origin`` is the
        federation provenance stamped onto the notification (the LASS
        origin id of the host that first applied the change), used for
        echo suppression in the LASS↔CASS hierarchy.
        """
        validate_attribute_name(attribute)
        encode_value(value)
        with self._lock:
            ctx = self._require(context)
            old = ctx.data.get(attribute)
            sv = StoredValue(
                value=value,
                writer=writer,
                version=(old.version + 1) if old else 1,
                stored_at=time.monotonic(),
                ephemeral=ephemeral,
            )
            ctx.data[attribute] = sv
            callbacks = ctx.waiters.pop(attribute, [])
        # Outside the lock: wake waiters first (blocking gets), then fan
        # out notifications.
        for _wid, cb in callbacks:
            cb(value)
        self.subscriptions.publish(
            Notification(context=context, attribute=attribute, value=value,
                         kind="put", origin=origin)
        )
        return sv

    def fill(self, attribute: str, value: str, *, context: str = DEFAULT_CONTEXT,
             writer: str = "?") -> str:
        """Cache-fill: insert a value learned from upstream, quietly.

        A LASS satisfying a forwarded ``get`` installs the CASS's answer
        with ``fill`` rather than :meth:`put`: parked blocking-get
        waiters are woken (that is the point), but **no notification is
        published** — the value is not a new change, merely this host
        learning an existing one, and republishing it would duplicate
        the notify the aggregated subscription path already delivers.
        Insert-if-absent: a concurrent real put wins, and the present
        value is returned either way.
        """
        validate_attribute_name(attribute)
        encode_value(value)
        with self._lock:
            ctx = self._require(context)
            sv = ctx.data.get(attribute)
            if sv is not None:
                return sv.value
            ctx.data[attribute] = StoredValue(
                value=value,
                writer=writer,
                version=1,
                stored_at=time.monotonic(),
            )
            callbacks = ctx.waiters.pop(attribute, [])
        for _wid, cb in callbacks:
            cb(value)
        return value

    def apply_batch(
        self,
        ops: list,
        *,
        default_context: str = DEFAULT_CONTEXT,
        writer: str = "?",
        origin: str | None = None,
    ) -> "list[dict | Exception]":
        """Apply a list of put/get/remove sub-operations in one lock hold.

        ``ops`` uses the wire shape of an ``OP_BATCH`` frame: each entry
        is a dict with ``op`` (``"put"``/``"get"``/``"remove"``) plus the
        operation's fields; ``context`` defaults per-op to
        ``default_context``.  Returns one result per op, positionally:
        the reply fields (``{"version": ...}``, ``{"value": ...}``,
        ``{"existed": ...}``) or the exception that op raised.  Ops apply
        independently, in order — a failure does not roll back or skip
        the others (the batch is a pipeline, not a transaction).

        The single lock hold is the point: a 50-op batch costs one
        acquire/release instead of 50, and concurrent readers observe
        the batch atomically.  Waiter wakes and notifications are
        collected inside the hold but fired after release, preserving
        :meth:`put`'s discipline (callbacks may re-enter the store or
        enqueue onto connection queues).
        """
        results: list[dict | Exception] = []
        wakes: list[tuple[WaiterCallback, str]] = []
        notifications: list[Notification] = []
        with self._lock:
            for sub in ops:
                try:
                    results.append(
                        self._apply_one(
                            sub, default_context, writer, origin, wakes, notifications
                        )
                    )
                except TdpError as e:
                    results.append(e)
        for cb, value in wakes:
            cb(value)
        for notification in notifications:
            self.subscriptions.publish(notification)
        return results

    def _apply_one(
        self,
        sub: Any,
        default_context: str,
        writer: str,
        origin: str | None,
        wakes: "list[tuple[WaiterCallback, str]]",
        notifications: "list[Notification]",
    ) -> dict:
        """One batch sub-op, under the already-held store lock."""
        if not isinstance(sub, dict):
            raise ProtocolError(
                f"batch sub-op must be an object, got {type(sub).__name__}"
            )
        op = sub.get("op")
        # Sub-ops inherit the batch frame's context: a per-sub-op
        # override was never encodable client-side, so reading one here
        # would just mask drift (frame-field-phantom).
        context = default_context
        if not isinstance(context, str) or not context:
            raise ProtocolError(f"bad context field: {context!r}")
        attribute = str(sub.get("attribute", ""))
        validate_attribute_name(attribute)
        ctx = self._require(context)
        if op == "put":
            value = sub.get("value")
            if not isinstance(value, str):
                raise AttributeFormatError(
                    f"value must be a string, got {type(value).__name__}"
                )
            encode_value(value)
            old = ctx.data.get(attribute)
            sv = StoredValue(
                value=value,
                writer=writer,
                version=(old.version + 1) if old else 1,
                stored_at=time.monotonic(),
                ephemeral=bool(sub.get("ephemeral", False)),
            )
            ctx.data[attribute] = sv
            for _wid, cb in ctx.waiters.pop(attribute, []):
                wakes.append((cb, value))
            notifications.append(
                Notification(context=context, attribute=attribute, value=value,
                             kind="put", origin=origin)
            )
            return {"version": sv.version}
        if op == "get":
            if sub.get("block"):
                raise ProtocolError("blocking get is not allowed in a batch")
            sv = ctx.data.get(attribute)
            if sv is None:
                raise NoSuchAttributeError(attribute, context)
            return {"value": sv.value}
        if op == "remove":
            existed = ctx.data.pop(attribute, None) is not None
            if existed:
                notifications.append(
                    Notification(context=context, attribute=attribute, value=None,
                                 kind="remove", origin=origin)
                )
            return {"existed": existed}
        raise ProtocolError(f"unsupported batch op {op!r}")

    def try_get(self, attribute: str, *, context: str = DEFAULT_CONTEXT) -> str:
        """Non-blocking get; raises :class:`NoSuchAttributeError` if absent."""
        validate_attribute_name(attribute)
        with self._lock:
            ctx = self._require(context)
            sv = ctx.data.get(attribute)
            if sv is None:
                raise NoSuchAttributeError(attribute, context)
            return sv.value

    def get_entry(self, attribute: str, *, context: str = DEFAULT_CONTEXT) -> StoredValue:
        """Full stored record (value + metadata).

        Returns a copy: the live record is server state mutated under
        the lock, and handing it out would alias that state to callers
        on other threads.
        """
        validate_attribute_name(attribute)
        with self._lock:
            ctx = self._require(context)
            sv = ctx.data.get(attribute)
            if sv is None:
                raise NoSuchAttributeError(attribute, context)
            return replace(sv)

    def add_waiter(
        self,
        attribute: str,
        callback: WaiterCallback,
        *,
        context: str = DEFAULT_CONTEXT,
    ) -> int | None:
        """Register a one-shot callback for the next value of ``attribute``.

        If the attribute already exists the callback fires immediately
        (from this thread) and ``None`` is returned; otherwise a waiter id
        usable with :meth:`cancel_waiter` is returned.  This is the
        primitive beneath both blocking and asynchronous ``tdp_get``.

        The callback receives the value, or ``None`` when the wait is
        cancelled because the context was destroyed (see :meth:`detach`).
        """
        validate_attribute_name(attribute)
        with self._lock:
            ctx = self._require(context)
            sv = ctx.data.get(attribute)
            if sv is None:
                wid = self._waiter_ids.next()
                ctx.waiters.setdefault(attribute, []).append((wid, callback))
                return wid
            value = sv.value
        callback(value)
        return None

    def cancel_waiter(self, context: str, attribute: str, waiter_id: int) -> bool:
        """Remove a pending waiter (client disconnected / timed out)."""
        with self._lock:
            ctx = self._contexts.get(context)
            if ctx is None:
                return False
            entries = ctx.waiters.get(attribute, [])
            for i, (wid, _cb) in enumerate(entries):
                if wid == waiter_id:
                    del entries[i]
                    if not entries:
                        ctx.waiters.pop(attribute, None)
                    return True
            return False

    def get(
        self,
        attribute: str,
        *,
        context: str = DEFAULT_CONTEXT,
        timeout: float | None = None,
    ) -> str:
        """Blocking get for in-process callers (tests, sim fast path).

        Channel clients implement blocking gets via :meth:`add_waiter`;
        this convenience wraps the same primitive with a local latch.
        """
        from repro.util.sync import Latch

        latch: Latch[str | None] = Latch()
        wid = self.add_waiter(attribute, latch.open, context=context)
        if wid is None:
            value = latch.wait(timeout=0)  # already filled synchronously
        else:
            try:
                value = latch.wait(timeout=timeout)
            finally:
                if not latch.is_open():
                    self.cancel_waiter(context, attribute, wid)
        if value is None:
            raise ContextError(
                f"context {context!r} destroyed while waiting for {attribute!r}"
            )
        return value

    def purge_ephemeral(self, context: str, owner: str) -> list[str]:
        """Delete every ephemeral attribute ``owner`` wrote in ``context``.

        Called when a member detaches or its session lease expires.
        Subscribers see ordinary remove notifications — a daemon watching
        ``heartbeat.*`` learns about the death the same way it would
        learn about an explicit remove.  Returns the purged names.
        """
        with self._lock:
            ctx = self._contexts.get(context)
            if ctx is None:
                return []
            doomed = sorted(
                name for name, sv in ctx.data.items()
                if sv.ephemeral and sv.writer == owner
            )
            for name in doomed:
                del ctx.data[name]
        for name in doomed:
            self.subscriptions.publish(
                Notification(context=context, attribute=name, value=None, kind="remove")
            )
        return doomed

    def remove(self, attribute: str, *, context: str = DEFAULT_CONTEXT,
               origin: str | None = None) -> bool:
        """Remove an attribute; returns False if it was absent."""
        validate_attribute_name(attribute)
        with self._lock:
            ctx = self._require(context)
            existed = ctx.data.pop(attribute, None) is not None
        if existed:
            self.subscriptions.publish(
                Notification(context=context, attribute=attribute, value=None,
                             kind="remove", origin=origin)
            )
        return existed

    def list_attributes(self, *, context: str = DEFAULT_CONTEXT) -> list[str]:
        with self._lock:
            return sorted(self._require(context).data)

    def snapshot(self, *, context: str = DEFAULT_CONTEXT) -> dict[str, str]:
        """Copy of the whole context as a plain dict (diagnostics)."""
        with self._lock:
            return {k: v.value for k, v in self._require(context).data.items()}

    def pending_waiter_count(self, *, context: str = DEFAULT_CONTEXT) -> int:
        with self._lock:
            ctx = self._contexts.get(context)
            if ctx is None:
                return 0
            return sum(len(v) for v in ctx.waiters.values())
