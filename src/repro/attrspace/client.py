"""Attribute space client: the daemon-side endpoint of a LASS/CASS session.

Provides both the blocking primitives of the paper (``put``/``get``) and
the asynchronous ones (``async_get``/``async_put``) with the
service-at-a-safe-point delivery model of Section 3.3: completions and
subscription notifications are queued, the queue doubles as the
"descriptor" a daemon polls, and callbacks run only inside
:meth:`service_events`, never from internal threads.

Sessions can also be **reconnecting**: constructed with a ``dial``
callable (or via :meth:`AttributeSpaceClient.connect`), the client
treats a dead channel as an outage rather than the end of the world.
The receive thread re-dials under a :class:`ReconnectPolicy` (seeded
exponential backoff with jitter and a deadline), re-runs the attach
handshake presenting its session token so the server resumes the lease,
re-establishes every subscription from the client-side ledger, and
replays in-flight requests with their original request ids — the
server's lease-scoped reply cache makes the replay at-most-once.
Callers observe a ``session.reestablished`` event instead of a
:class:`~repro.errors.SpaceClosedError`; only when the policy is
exhausted do pending calls fail, with
:class:`~repro.errors.ReconnectFailedError`.
"""

from __future__ import annotations

import random
import threading
import time
import uuid
from dataclasses import dataclass, field
from typing import Any, Callable

from repro import errors, obs
from repro.attrspace import protocol
from repro.attrspace.notify import Notification
from repro.attrspace.store import DEFAULT_CONTEXT
from repro.net.address import Endpoint
from repro.transport.base import Channel, Transport
from repro.util.ids import IdAllocator
from repro.util.log import get_logger
from repro.util.sync import Latch, WaitableQueue, tracked_lock
from repro.util.threads import spawn

_log = get_logger("attrspace.client")

#: Callback signature for async completions: (value_or_none, error_or_none, arg)
AsyncCallback = Callable[[Any, Exception | None, Any], None]
#: Callback signature for subscriptions: (Notification, arg)
NotifyCallback = Callable[[Notification, Any], None]
#: Callback signature for session lifecycle events: (event_record,)
SessionCallback = Callable[[dict[str, Any]], None]

#: How long one handshake round-trip may take during reconnection.
_HANDSHAKE_TIMEOUT = 10.0


@dataclass(frozen=True)
class ReconnectPolicy:
    """Backoff schedule for session re-establishment.

    Delays grow geometrically from ``base_delay`` by ``multiplier`` up
    to ``max_delay``, each perturbed by up to ``±jitter`` (fractional)
    so a cluster of clients severed together does not re-dial in
    lockstep.  Recovery is abandoned when ``deadline`` seconds have
    elapsed since the outage began or ``max_attempts`` dials have
    failed, whichever comes first.  ``seed`` pins the jitter sequence
    for deterministic tests.
    """

    base_delay: float = 0.05
    max_delay: float = 2.0
    multiplier: float = 2.0
    jitter: float = 0.5
    deadline: float | None = 30.0
    max_attempts: int | None = None
    seed: int | None = None

    def delays(self) -> "Any":
        """Yield successive sleep durations (an infinite generator)."""
        rng = random.Random(self.seed)
        delay = self.base_delay
        while True:
            spread = 1.0 + self.jitter * (2.0 * rng.random() - 1.0)
            yield max(0.0, delay * spread)
            delay = min(delay * self.multiplier, self.max_delay)


@dataclass
class _PendingSync:
    """A blocking RPC awaiting its reply.

    ``replay`` marks requests safe to resend after a reconnect.  Attach,
    subscribe, and detach are not replayed: attach/subscribe are redone
    by the handshake itself (their latches are answered synthetically),
    and detach is handled by :meth:`AttributeSpaceClient.close`'s
    out-of-band fallback.
    """

    latch: Latch[dict]
    frame: dict[str, Any]
    replay: bool = True
    #: for in-flight subscribes: the local ledger id, so the reconnect
    #: handshake can answer the latch from the re-established ledger
    #: (kept client-side — the server never sees local ids)
    local_sub: int | None = None


@dataclass
class _PendingAsync:
    kind: str  # "get" | "put"
    attribute: str
    callback: AsyncCallback
    callback_arg: Any
    frame: dict[str, Any] = field(default_factory=dict)


@dataclass
class _SubEntry:
    """One ledger entry: everything needed to re-establish a subscription.

    ``agg`` marks an *aggregated* subscription (federation, LASS->CASS):
    the handshake re-establishes it with an ``OP_SUB_AGG`` frame carrying
    the recorded ``origin`` and ``epoch``, so a LASS that loses its
    upstream session gets its one-frame-per-host dedup group back too.
    """

    pattern: str
    callback: NotifyCallback
    callback_arg: Any
    server_id: int | None = None
    agg: bool = False
    origin: str | None = None
    epoch: int = 0


@dataclass
class _Event:
    """One queued deliverable: an async completion or a notification."""

    invoke: Callable[[], None]
    description: str


class AttributeSpaceClient:
    """One daemon's session with one attribute space server.

    A client binds to a single *context* (the per-RT space of Section
    3.2); open a second client for a second context.  The constructor
    performs the ``attach`` handshake; :meth:`close` detaches.

    Pass ``dial`` (a zero-argument callable producing a fresh
    :class:`~repro.transport.base.Channel`) to make the session
    reconnecting; ``lease_ttl`` additionally asks the server for a
    session lease so replayed requests dedup and ephemeral attributes
    survive exactly as long as the session does.  The plain
    ``AttributeSpaceClient(channel)`` form keeps the original
    fail-on-disconnect behavior.
    """

    def __init__(
        self,
        channel: Channel,
        *,
        context: str = DEFAULT_CONTEXT,
        member: str | None = None,
        dial: Callable[[], Channel] | None = None,
        reconnect: ReconnectPolicy | None = None,
        lease_ttl: float | None = None,
    ):
        self._channel = channel
        self.context = context
        self.member = member if member is not None else f"client@{channel.local_host}"
        self._dial = dial
        self._reconnect = reconnect if reconnect is not None else ReconnectPolicy()
        # tdp-guard: _lease_ttl -> volatile
        # (adopted once from the attach/re-attach reply on whichever
        # thread ran the handshake; the hello builders read it racily
        # and tolerate either the requested or the granted value)
        self._lease_ttl = lease_ttl
        self._session = uuid.uuid4().hex
        self._req_ids = IdAllocator()
        self._sub_ids = IdAllocator()
        self._pending_sync: dict[int, _PendingSync] = {}
        self._pending_async: dict[int, _PendingAsync] = {}
        #: local sub id -> ledger entry (survives reconnects)
        self._subs: dict[int, _SubEntry] = {}
        #: server sub id -> local sub id (rebuilt on each reconnect)
        self._sub_routes: dict[int, int] = {}
        self._lock = tracked_lock("attrspace.client.AttributeSpaceClient._lock")
        self._closed = False
        self._conn_lost = False
        self._reconnecting = False
        self._wake = threading.Event()  # interrupts backoff on close
        #: append-only record of session.lost/reestablished/failed events
        self.session_log: list[dict[str, Any]] = []
        # tdp-guard: _session_cb -> volatile
        # (registration is a benign publish: an event racing with
        # set_session_callback may deliver to the previous callback)
        self._session_cb: SessionCallback | None = None
        #: the "descriptor": non-empty means tdp_service_events has work
        self.events: WaitableQueue[_Event] = WaitableQueue()
        self._receiver = spawn(self._recv_loop, name=f"attr-client-{self.member}")
        self._adopt_attach_reply(self._rpc(self._attach_frame(), replay=False))

    @classmethod
    def connect(
        cls,
        transport: Transport,
        src_host: str,
        endpoint: Endpoint,
        *,
        context: str = DEFAULT_CONTEXT,
        member: str | None = None,
        reconnect: ReconnectPolicy | None = None,
        lease_ttl: float | None = 30.0,
        connect_timeout: float = 10.0,
    ) -> "AttributeSpaceClient":
        """Open a *reconnecting* session: dial, attach, remember how.

        The returned client re-dials ``endpoint`` through ``transport``
        whenever its channel dies, under ``reconnect`` (defaults apply
        when ``None``), holding a server lease of ``lease_ttl`` seconds.
        """

        def dial() -> Channel:
            return transport.connect(src_host, endpoint, timeout=connect_timeout)

        return cls(
            dial(),
            context=context,
            member=member,
            dial=dial,
            reconnect=reconnect,
            lease_ttl=lease_ttl,
        )

    # -- plumbing -------------------------------------------------------------

    def _attach_frame(self) -> dict[str, Any]:
        frame: dict[str, Any] = {
            "op": protocol.OP_ATTACH,
            "context": self.context,
            "member": self.member,
        }
        if self._lease_ttl is not None:
            frame["session"] = self._session
            frame["lease_ttl"] = self._lease_ttl
        return frame

    def _adopt_attach_reply(self, reply: dict[str, Any]) -> None:
        """Validate the attach confirmation and adopt server lease terms.

        The server echoes the context it attached — a mismatch means the
        frames crossed sessions and nothing after this point can be
        trusted — and, for leased sessions, replies with the lease TTL
        it actually granted (it may clamp the requested one), which the
        client adopts as its own.
        """
        echoed = reply.get("context")
        if echoed is not None and str(echoed) != self.context:
            raise protocol.frame_error(
                f"server attached context {echoed!r}, requested {self.context!r}",
                frame=reply,
                op=protocol.OP_ATTACH,
            )
        granted = reply.get("lease_ttl")
        if granted is not None and self._lease_ttl is not None:
            self._lease_ttl = float(granted)

    def _register_sync(
        self, request: dict[str, Any], replay: bool, local_sub: int | None = None
    ) -> tuple[int, _PendingSync]:
        stamp_trace = obs.enabled()
        with self._lock:
            if self._closed:
                raise errors.SpaceClosedError("client closed")
            if self._conn_lost:
                raise errors.SpaceClosedError("attribute space connection lost")
            req = self._req_ids.next()
            frame = dict(request, req=req)
            if stamp_trace:
                # Stamped at registration, not send, so reconnect replays
                # carry the original context.
                obs.inject(frame)
            entry = _PendingSync(Latch(), frame, replay, local_sub)
            self._pending_sync[req] = entry
            return req, entry

    def _send_or_defer(self, frame: dict[str, Any]) -> None:
        """Transmit a registered frame, or leave it for the reconnector.

        During an outage the frame stays parked in the pending tables —
        the reconnector replays it once the session is back.  A send
        failure on a reconnecting session is likewise swallowed: the
        receive thread is about to notice the dead channel and recover
        (or exhaust the policy, failing the pending entry).
        """
        with self._lock:
            channel = None if self._reconnecting else self._channel
        if channel is None:
            return
        try:
            channel.send(frame)
        except errors.TdpError:
            if self._dial is None:
                raise

    def _rpc(
        self,
        request: dict[str, Any],
        timeout: float | None = 30.0,
        *,
        replay: bool = True,
        local_sub: int | None = None,
    ) -> dict[str, Any]:
        """Send a request and block for its reply."""
        started = time.perf_counter() if obs.enabled() else 0.0
        req, entry = self._register_sync(request, replay, local_sub)
        try:
            self._send_or_defer(entry.frame)
        except errors.TdpError:
            with self._lock:
                self._pending_sync.pop(req, None)
            raise errors.SpaceClosedError("attribute space connection lost") from None
        try:
            reply = entry.latch.wait(timeout=timeout)
        except errors.GetTimeoutError:
            # Drop the entry so the dict cannot grow unboundedly and a
            # late reply does not hit a dead latch.
            with self._lock:
                self._pending_sync.pop(req, None)
            raise
        if not reply.get("ok", False):
            protocol.raise_error(reply, op=request.get("op"))
        if started:
            obs.registry().histogram(
                f"attrspace.client.rpc.{request.get('op', 'op')}"
            ).observe(time.perf_counter() - started)
        return reply

    # -- receive / recovery ----------------------------------------------------

    def _recv_loop(self) -> None:
        while True:
            with self._lock:
                channel = self._channel
            try:
                while True:
                    message = channel.recv()
                    self._route(message)
            except errors.TdpError:
                pass
            with self._lock:
                done = self._closed
            if done or self._dial is None:
                self._fail_pending("space_closed", "connection lost")
                return
            if not self._reestablish():
                self._fail_pending(
                    "reconnect_failed",
                    "session re-establishment abandoned (policy exhausted)",
                )
                return

    def _reestablish(self) -> bool:
        """Dial + attach + resubscribe + replay; True on success.

        Runs on the receive thread (no reader is consuming the new
        channel yet, so the handshake can do direct request/reply I/O).
        """
        with self._lock:
            self._reconnecting = True
        self._session_event("session.lost", member=self.member)
        policy = self._reconnect
        started = time.monotonic()
        attempts = 0
        delays = policy.delays()
        while True:
            with self._lock:
                if self._closed:
                    return False
            if policy.max_attempts is not None and attempts >= policy.max_attempts:
                return False
            if (
                policy.deadline is not None
                and time.monotonic() - started >= policy.deadline
            ):
                return False
            attempts += 1
            channel: Channel | None = None
            try:
                channel = self._dial()  # type: ignore[misc]
                strays, resumed = self._handshake(channel)
            except errors.TdpError as e:
                if channel is not None:
                    channel.close()
                _log.info(
                    "%s: reconnect attempt %d failed: %s", self.member, attempts, e
                )
                self._wake.wait(next(delays))
                continue
            break
        self._adopt_channel(channel)
        obs.registry().counter("attrspace.client.reconnects").increment()
        for message in strays:
            self._route(message)
        self._session_event(
            "session.reestablished",
            member=self.member,
            attempts=attempts,
            resumed=resumed,
            outage=round(time.monotonic() - started, 6),
        )
        return True

    def _handshake(self, channel: Channel) -> tuple[list[dict[str, Any]], bool]:
        """Attach (resuming the lease) and re-establish every subscription.

        Returns (stray server pushes received mid-handshake, lease
        resumed?).  Strays — typically notifications from the freshly
        re-created subscriptions — are routed after the channel is
        adopted so their callbacks queue normally.
        """
        strays: list[dict[str, Any]] = []

        def call(frame: dict[str, Any]) -> dict[str, Any]:
            channel.send(frame)
            deadline = time.monotonic() + _HANDSHAKE_TIMEOUT
            while True:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise errors.GetTimeoutError("handshake reply timed out")
                message = channel.recv(timeout=remaining)
                if message.get("reply_to") == frame["req"]:
                    return message
                strays.append(message)

        attach = dict(self._attach_frame(), req=self._req_ids.next())
        reply = call(attach)
        if not reply.get("ok", False):
            protocol.raise_error(reply, op=protocol.OP_ATTACH)
        self._adopt_attach_reply(reply)
        resumed = bool(reply.get("resumed", False))

        with self._lock:
            ledger = list(self._subs.items())
        for local_id, entry in ledger:
            if entry.agg:
                sub_reply = call(
                    {
                        "op": protocol.OP_SUB_AGG,
                        "req": self._req_ids.next(),
                        "context": self.context,
                        "pattern": entry.pattern,
                        "agg": local_id,
                        "origin": entry.origin,
                        "epoch": entry.epoch,
                    }
                )
            else:
                sub_reply = call(
                    {
                        "op": protocol.OP_SUBSCRIBE,
                        "req": self._req_ids.next(),
                        "context": self.context,
                        "pattern": entry.pattern,
                    }
                )
            if not sub_reply.get("ok", False):
                protocol.raise_error(sub_reply, op=protocol.OP_SUBSCRIBE)
            server_id = int(sub_reply["sub"])
            with self._lock:
                if entry.server_id is not None:
                    self._sub_routes.pop(entry.server_id, None)
                entry.server_id = server_id
                self._sub_routes[server_id] = local_id
        return strays, resumed

    def _adopt_channel(self, channel: Channel) -> None:
        """Swap the recovered channel in and replay in-flight requests.

        The swap, the flag clear, and the pending snapshot happen under
        one lock hold: every request registered before this moment is in
        the snapshot (and gets replayed); every one registered after
        sees the live channel and sends itself.  The overlap case — a
        caller that read the old channel just before the swap — at worst
        double-sends, which the server's lease dedup absorbs.
        """
        with self._lock:
            self._channel = channel
            self._reconnecting = False
            replay = [e.frame for e in self._pending_sync.values() if e.replay]
            replay += [e.frame for e in self._pending_async.values() if e.frame]
            # Attach/subscribe RPCs that were in flight when the channel
            # died were just redone by the handshake; answer them from it.
            synthetic: list[tuple[_PendingSync, dict[str, Any]]] = []
            for req, entry in list(self._pending_sync.items()):
                op = entry.frame.get("op")
                if op == protocol.OP_ATTACH:
                    reply = {"reply_to": req, "ok": True, "context": self.context}
                elif op in (protocol.OP_SUBSCRIBE, protocol.OP_SUB_AGG):
                    ledger_entry = self._subs.get(entry.local_sub)
                    if ledger_entry is None or ledger_entry.server_id is None:
                        continue
                    reply = {"reply_to": req, "ok": True, "sub": ledger_entry.server_id}
                else:
                    continue
                del self._pending_sync[req]
                synthetic.append((entry, reply))
        for entry, reply in synthetic:
            entry.latch.open(reply)
        for frame in sorted(replay, key=lambda f: f["req"]):
            try:
                channel.send(frame)
            except errors.TdpError:
                # The new channel died already; the receive loop will go
                # around again and the next recovery replays the rest.
                return

    def _session_event(self, kind: str, **info: Any) -> None:
        record: dict[str, Any] = {"event": kind, **info}
        self.session_log.append(record)
        obs.record(kind, actor=self.member, **info)
        _log.info("%s: %s", self.member, record)
        callback = self._session_cb
        if callback is not None:
            try:
                self.events.put(
                    _Event(invoke=lambda: callback(record), description=kind)
                )
            except errors.ChannelClosedError:
                pass

    def on_session_event(self, callback: SessionCallback | None) -> None:
        """Register a callback for session lifecycle events.

        Delivered through :meth:`service_events` like every other
        callback (safe-point discipline); the :attr:`session_log` list
        records the same events for polling-style consumers.
        """
        self._session_cb = callback

    def _route(self, message: dict[str, Any]) -> None:
        if message.get("op") == protocol.OP_NOTIFY:
            sub_id = message.get("sub")
            notification = Notification.from_wire(message)
            with self._lock:
                local = (
                    self._sub_routes.get(sub_id) if isinstance(sub_id, int) else None
                )
                entry = self._subs.get(local) if local is not None else None
            if entry is not None:
                callback, arg = entry.callback, entry.callback_arg
                if obs.enabled():
                    # The notify frame carries the putter's context; run
                    # the callback inside it so the subscriber's span
                    # joins the put's trace.
                    ctx = obs.extract(message)

                    def invoke(
                        callback=callback, arg=arg,
                        notification=notification, ctx=ctx,
                    ) -> None:
                        with obs.activate(ctx):
                            with obs.span(
                                "notify.callback",
                                actor=self.member,
                                attribute=notification.attribute,
                            ):
                                callback(notification, arg)

                else:
                    def invoke(
                        callback=callback, arg=arg, notification=notification
                    ) -> None:
                        callback(notification, arg)

                self.events.put(
                    _Event(
                        invoke=invoke,
                        description=f"notify {notification.attribute}",
                    )
                )
            return
        reply_to = message.get("reply_to")
        if not isinstance(reply_to, int):
            if obs.enabled():
                obs.record(
                    "client.unroutable", actor=self.member, frame=repr(message)[:512]
                )
            _log.warning("dropping unroutable message: %r", message)
            return
        with self._lock:
            sync = self._pending_sync.pop(reply_to, None)
            pending_async = self._pending_async.pop(reply_to, None)
        if sync is not None:
            sync.latch.open(message)
            return
        if pending_async is not None:
            self._queue_async_completion(pending_async, message)
            return
        _log.warning("reply for unknown request %s", reply_to)

    def _queue_async_completion(self, pending: _PendingAsync, reply: dict[str, Any]) -> None:
        error: Exception | None = None
        value: Any = None
        if reply.get("ok", False):
            value = reply.get("value") if pending.kind == "get" else None
        else:
            try:
                protocol.raise_error(reply)
            except Exception as e:  # noqa: BLE001 — captured for callback delivery
                error = e
        self.events.put(
            _Event(
                invoke=lambda: pending.callback(value, error, pending.callback_arg),
                description=f"async-{pending.kind} {pending.attribute}",
            )
        )

    def _fail_pending(self, error_type: str, message: str) -> None:
        """Recovery is over: fail sync waiters, queue async error completions."""
        with self._lock:
            self._conn_lost = True
            self._reconnecting = False
            sync = list(self._pending_sync.values())
            self._pending_sync.clear()
            asyncs = list(self._pending_async.values())
            self._pending_async.clear()
            closed = self._closed
        if sync or asyncs or (self._dial is not None and not closed):
            self._session_event("session.failed", reason=message)
        failure = {"ok": False, "error_type": error_type, "error": message}
        for entry in sync:
            entry.latch.open(failure)
        for pending in asyncs:
            self._queue_async_completion(pending, failure)
        self.events.close()

    # -- blocking API (paper Section 3.2) --------------------------------------

    def put(
        self,
        attribute: str,
        value: str,
        *,
        ephemeral: bool = False,
        origin: str | None = None,
    ) -> int:
        """Blocking put; returns the stored version number.

        ``ephemeral`` ties the value to this session: the server purges
        it when the member detaches or its lease expires.  ``origin``
        stamps federation provenance on the change (a LASS forwarding a
        local write sets its own origin id so the upstream server does
        not echo the notification back); ordinary clients leave it None.
        """
        frame: dict[str, Any] = {
            "op": protocol.OP_PUT,
            "context": self.context,
            "attribute": attribute,
            "value": value,
        }
        if ephemeral:
            frame["ephemeral"] = True
        if origin is not None:
            frame["origin"] = origin
        reply = self._rpc(frame)
        return int(reply["version"])

    def put_many(
        self,
        items: "Any",
        *,
        ephemeral: bool = False,
        origin: str | None = None,
    ) -> list[int]:
        """Batched blocking put: one round trip for many attributes.

        ``items`` is an iterable of ``(attribute, value)`` pairs or
        ``(attribute, value, ephemeral)`` triples (the triple form
        overrides the batch-wide ``ephemeral`` flag per item, so a
        heartbeat can ride along with durable values).  Returns the
        stored version numbers, positionally.  Raises the first sub-op's
        error, if any — later sub-ops are still applied first (the batch
        is a pipeline, not a transaction).
        """
        ops: list[dict[str, Any]] = []
        for item in items:
            if len(item) == 3:
                attribute, value, item_ephemeral = item
            else:
                attribute, value = item
                item_ephemeral = ephemeral
            op: dict[str, Any] = {
                "op": protocol.OP_PUT, "attribute": attribute, "value": value,
            }
            if item_ephemeral:
                op["ephemeral"] = True
            ops.append(op)
        if not ops:
            return []
        replies = self._batch_rpc(ops, origin=origin)
        versions: list[int] = []
        for sub_reply in replies:
            if not sub_reply.get("ok", False):
                protocol.raise_error(sub_reply, op=protocol.OP_PUT)
            versions.append(int(sub_reply["version"]))
        return versions

    def get_many(self, attributes: "Any") -> list[str]:
        """Batched non-blocking get: one round trip for many attributes.

        Returns the values positionally; raises the first absent
        attribute's :class:`~repro.errors.NoSuchAttributeError` (use
        :meth:`batch` when partial results are wanted).
        """
        ops = [
            {"op": protocol.OP_GET, "attribute": attribute}
            for attribute in attributes
        ]
        if not ops:
            return []
        replies = self._batch_rpc(ops)
        values: list[str] = []
        for sub_reply in replies:
            if not sub_reply.get("ok", False):
                protocol.raise_error(sub_reply, op=protocol.OP_GET)
            values.append(str(sub_reply["value"]))
        return values

    def batch(self) -> "_BatchBuilder":
        """Pipelining context manager: coalesce ops into one frame.

        Operations queued inside the ``with`` block return
        :class:`BatchResult` handles; the single ``OP_BATCH`` frame is
        sent on exit and the handles resolve then::

            with client.batch() as b:
                version = b.put("pid", "123")
                status = b.try_get("proc.123.status")
            print(version.value, status.value)

        Ordering: sub-ops apply in queue order, atomically with respect
        to concurrent readers (single store lock hold).  Partial
        failure: every handle resolves — failed ones to their error —
        and the block then raises the first error; inspect ``.error`` on
        the handles before letting it propagate if partial results
        matter.  Nothing is sent when the block exits via an exception.
        """
        return _BatchBuilder(self)

    def _batch_rpc(
        self, ops: list[dict[str, Any]], *, origin: str | None = None
    ) -> list[dict[str, Any]]:
        """Send one OP_BATCH frame; returns the positional reply list.

        ``origin`` (federation provenance, batch-wide) marks every sub-op's
        change as having been applied first on the named LASS.
        """
        frame: dict[str, Any] = {
            "op": protocol.OP_BATCH, "context": self.context, "ops": ops,
        }
        if origin is not None:
            frame["origin"] = origin
        reply = self._rpc(frame)
        replies = reply.get("replies")
        if not isinstance(replies, list) or len(replies) != len(ops):
            got = len(replies) if isinstance(replies, list) else replies
            raise protocol.frame_error(
                f"batch reply mismatch: sent {len(ops)} ops, got {got!r} replies",
                frame=reply,
                op=protocol.OP_BATCH,
            )
        return replies

    def get(self, attribute: str, timeout: float | None = None) -> str:
        """Blocking get: waits until the attribute exists.

        ``timeout`` bounds the wait (server-side timer); ``None`` waits
        indefinitely — the paradynd-waits-for-pid pattern of Section 4.3.
        """
        if timeout is not None and (
            isinstance(timeout, bool)
            or not isinstance(timeout, (int, float))
            or timeout < 0
        ):
            # Same validation the server applies; failing here saves the
            # round trip and catches in-process misuse (timeout=True,
            # timeout=-1) with a clear error.
            raise errors.ProtocolError(
                f"invalid get timeout {timeout!r}: "
                "must be a non-negative number or None"
            )
        reply = self._rpc(
            {
                "op": protocol.OP_GET,
                "context": self.context,
                "attribute": attribute,
                "block": True,
                "timeout": timeout,
            },
            timeout=None if timeout is None else timeout + 30.0,
        )
        return str(reply["value"])

    def try_get(self, attribute: str) -> str:
        """Non-blocking get; raises ``NoSuchAttributeError`` when absent."""
        reply = self._rpc(
            {"op": protocol.OP_GET, "context": self.context,
             "attribute": attribute, "block": False}
        )
        return str(reply["value"])

    def remove(self, attribute: str, *, origin: str | None = None) -> bool:
        frame: dict[str, Any] = {
            "op": protocol.OP_REMOVE, "context": self.context, "attribute": attribute,
        }
        if origin is not None:
            frame["origin"] = origin
        reply = self._rpc(frame)
        return bool(reply["existed"])

    def list_attributes(self) -> list[str]:
        reply = self._rpc({"op": protocol.OP_LIST, "context": self.context})
        return list(reply["attributes"])

    def snapshot(self) -> dict[str, str]:
        reply = self._rpc({"op": protocol.OP_SNAPSHOT, "context": self.context})
        return dict(reply["data"])

    def ping(self) -> dict[str, Any]:
        return self._rpc({"op": protocol.OP_PING})

    # -- asynchronous API (paper Section 3.2/3.3) -------------------------------

    def async_get(
        self,
        attribute: str,
        callback: AsyncCallback,
        callback_arg: Any = None,
        *,
        timeout: float | None = None,
        block: bool = True,
    ) -> None:
        """Non-blocking get; ``callback(value, error, arg)`` runs from
        :meth:`service_events` once the attribute is available.

        ``timeout`` bounds the server-side wait (the completion then
        carries a :class:`~repro.errors.GetTimeoutError`) — a LASS
        forwarding a client's blocking get passes the client's deadline
        through here so the upstream timer, not a local one, bounds the
        wait.  ``block=False`` makes the completion immediate (value or
        ``NoSuchAttributeError``).
        """
        frame: dict[str, Any] = {
            "op": protocol.OP_GET,
            "context": self.context,
            "attribute": attribute,
            "block": block,
        }
        if timeout is not None:
            frame["timeout"] = timeout
        self._send_async(
            _PendingAsync("get", attribute, callback, callback_arg), frame
        )

    def async_put(
        self, attribute: str, value: str, callback: AsyncCallback, callback_arg: Any = None
    ) -> None:
        """Non-blocking put with completion callback (same delivery rules)."""
        self._send_async(
            _PendingAsync("put", attribute, callback, callback_arg),
            {
                "op": protocol.OP_PUT,
                "context": self.context,
                "attribute": attribute,
                "value": value,
            },
        )

    def _send_async(self, pending: _PendingAsync, request: dict[str, Any]) -> None:
        stamp_trace = obs.enabled()
        with self._lock:
            if self._closed:
                raise errors.SpaceClosedError("client closed")
            if self._conn_lost:
                raise errors.SpaceClosedError("attribute space connection lost")
            req = self._req_ids.next()
            pending.frame = dict(request, req=req)
            if stamp_trace:
                obs.inject(pending.frame)
            self._pending_async[req] = pending
        self._send_or_defer(pending.frame)

    def subscribe(self, pattern: str, callback: NotifyCallback, callback_arg: Any = None) -> int:
        """Subscribe to puts/removes matching ``pattern`` in this context.

        Returns a *local* subscription id, stable across reconnects (the
        server-side id changes every time the session re-establishes its
        subscriptions; the ledger tracks the mapping).
        """
        entry = _SubEntry(pattern, callback, callback_arg)
        with self._lock:
            local_id = self._sub_ids.next()
            self._subs[local_id] = entry
        try:
            reply = self._rpc(
                {
                    "op": protocol.OP_SUBSCRIBE,
                    "context": self.context,
                    "pattern": pattern,
                },
                replay=False,
                # Not a wire field: the reconnect handshake uses the
                # pending entry's local id to answer an in-flight
                # subscribe from the re-established ledger.
                local_sub=local_id,
            )
        except errors.TdpError:
            with self._lock:
                self._subs.pop(local_id, None)
            raise
        server_id = int(reply["sub"])
        with self._lock:
            # The handshake may already have bound this entry on a new
            # connection; only adopt the reply's id if it is current.
            if entry.server_id is None:
                entry.server_id = server_id
            self._sub_routes[entry.server_id] = local_id
        return local_id

    def subscribe_agg(
        self,
        pattern: str,
        callback: NotifyCallback,
        callback_arg: Any = None,
        *,
        origin: str,
        epoch: int = 0,
    ) -> int:
        """Aggregated subscription (federation, LASS->CASS sessions only).

        Same ledger semantics as :meth:`subscribe`, but the server joins
        the subscription to ``origin``'s fan-out dedup group — all of
        this host's aggregated subscriptions cost the upstream server one
        egress frame per event — and suppresses notifications whose
        change originated on ``origin`` itself.  ``epoch`` is the shard-
        map epoch this client routed by; a shard serving a different
        epoch refuses the subscription so the caller re-fetches the map.
        """
        entry = _SubEntry(
            pattern, callback, callback_arg, agg=True, origin=origin, epoch=epoch
        )
        with self._lock:
            local_id = self._sub_ids.next()
            self._subs[local_id] = entry
        try:
            reply = self._rpc(
                {
                    "op": protocol.OP_SUB_AGG,
                    "context": self.context,
                    "pattern": pattern,
                    "agg": local_id,
                    "origin": origin,
                    "epoch": epoch,
                },
                replay=False,
                local_sub=local_id,
            )
        except errors.TdpError:
            with self._lock:
                self._subs.pop(local_id, None)
            raise
        server_id = int(reply["sub"])
        with self._lock:
            if entry.server_id is None:
                entry.server_id = server_id
            self._sub_routes[entry.server_id] = local_id
        return local_id

    def shard_map(self) -> tuple[int, list[str]]:
        """Fetch the server's shard map: ``(epoch, ["host:port", ...])``.

        An unsharded server answers ``(0, [])`` — "I am the only shard".
        """
        reply = self._rpc({"op": protocol.OP_SHARDMAP})
        epoch = int(reply.get("epoch", 0))
        shards = reply.get("shards")
        return epoch, [str(s) for s in shards] if isinstance(shards, list) else []

    def unsubscribe(self, sub_id: int) -> bool:
        with self._lock:
            entry = self._subs.pop(sub_id, None)
            server_id = sub_id
            if entry is not None and entry.server_id is not None:
                server_id = entry.server_id
                self._sub_routes.pop(entry.server_id, None)
        reply = self._rpc({"op": protocol.OP_UNSUBSCRIBE, "sub": server_id})
        return bool(reply["removed"])

    # -- event servicing (paper Section 3.3) ------------------------------------

    def has_pending_events(self) -> bool:
        """True when :meth:`service_events` would run at least one callback.

        This is the library's version of "activity on the descriptor":
        a poll loop checks it (or blocks in :meth:`wait_event`) and then
        calls :meth:`service_events` at its safe point.
        """
        return len(self.events) > 0

    def wait_event(self, timeout: float | None = None) -> bool:
        """Block until an event is queued (or timeout); returns availability.

        The queued event is *not* consumed — like returning from
        ``poll()`` without reading the descriptor.
        """
        return self.events.wait_nonempty(timeout=timeout)

    def service_events(self, max_events: int | None = None) -> int:
        """Run queued callbacks in the caller's thread; returns the count.

        This is ``tdp_service_event``: "the callback function will be
        called at a well-known and (presumably) safe point."
        """
        count = 0
        while max_events is None or count < max_events:
            try:
                event = self.events.get_nowait()
            except (IndexError, errors.ChannelClosedError):
                break
            event.invoke()
            count += 1
        return count

    # -- lifecycle ---------------------------------------------------------------

    def close(self, *, detach: bool = True) -> None:
        """Detach from the context and drop the connection. Idempotent."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            mid_outage = self._reconnecting or self._conn_lost
            channel = self._channel
        self._wake.set()  # interrupt any backoff sleep immediately
        if detach:
            if mid_outage:
                self._detach_out_of_band()
            else:
                try:
                    self._detach_via(channel)
                except errors.TdpError:
                    self._detach_out_of_band()
        channel.close()

    def _detach_frame(self) -> dict[str, Any]:
        frame: dict[str, Any] = {
            "op": protocol.OP_DETACH,
            "context": self.context,
            "member": self.member,
        }
        if self._lease_ttl is not None:
            frame["session"] = self._session
        return frame

    def _detach_via(self, channel: Channel) -> None:
        """Detach over an already-open channel (the common, fast path)."""
        latch: Latch[dict] = Latch()
        with self._lock:
            req = self._req_ids.next()
            self._pending_sync[req] = _PendingSync(latch, {}, replay=False)
        try:
            channel.send(dict(self._detach_frame(), req=req))
            latch.wait(timeout=5.0)
        finally:
            with self._lock:
                self._pending_sync.pop(req, None)

    def _detach_out_of_band(self) -> None:
        """Detach over a fresh dialed channel (outage-tolerant close).

        Without this, a close that races an outage would leak the
        membership until the lease expires.  Best-effort with a couple of
        retries; the lease sweeper remains the backstop.
        """
        if self._dial is None:
            return
        for _ in range(3):
            try:
                channel = self._dial()
            except errors.TdpError:
                return
            try:
                channel.send(dict(self._detach_frame(), req=self._req_ids.next()))
                channel.recv(timeout=5.0)
                return
            except errors.TdpError:
                continue
            finally:
                channel.close()

    @property
    def closed(self) -> bool:
        with self._lock:
            return self._closed

    def __enter__(self) -> "AttributeSpaceClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class BatchResult:
    """Deferred result of one op queued in a :meth:`~AttributeSpaceClient.batch`
    block; resolves when the block exits and the batch reply arrives."""

    _UNSET = object()

    def __init__(self, description: str):
        self._description = description
        self._value: Any = BatchResult._UNSET
        self.error: Exception | None = None

    @property
    def ready(self) -> bool:
        return self._value is not BatchResult._UNSET or self.error is not None

    @property
    def ok(self) -> bool:
        """Resolved without error?  (False while still pending, too.)"""
        return self._value is not BatchResult._UNSET

    @property
    def value(self) -> Any:
        """The op's result; raises its error, or RuntimeError if unsent."""
        if self.error is not None:
            raise self.error
        if self._value is BatchResult._UNSET:
            raise RuntimeError(
                f"batch result for {self._description} read before the "
                "batch block exited"
            )
        return self._value

    def __repr__(self) -> str:
        if self.error is not None:
            state = f"error={type(self.error).__name__}"
        elif self._value is BatchResult._UNSET:
            state = "pending"
        else:
            state = f"value={self._value!r}"
        return f"<BatchResult {self._description} {state}>"


class _BatchBuilder:
    """Collects ops inside a ``client.batch()`` block; sends on exit."""

    def __init__(self, client: AttributeSpaceClient):
        self._client = client
        self._ops: list[dict[str, Any]] = []
        self._results: list[tuple[BatchResult, Callable[[dict[str, Any]], Any]]] = []

    def _queue(
        self,
        op: dict[str, Any],
        description: str,
        parse: Callable[[dict[str, Any]], Any],
    ) -> BatchResult:
        result = BatchResult(description)
        self._ops.append(op)
        self._results.append((result, parse))
        return result

    def put(self, attribute: str, value: str, *, ephemeral: bool = False) -> BatchResult:
        """Queue a put; the result resolves to the stored version."""
        op: dict[str, Any] = {
            "op": protocol.OP_PUT, "attribute": attribute, "value": value,
        }
        if ephemeral:
            op["ephemeral"] = True
        return self._queue(
            op, f"put({attribute!r})", lambda r: int(r["version"])
        )

    def try_get(self, attribute: str) -> BatchResult:
        """Queue a non-blocking get; the result resolves to the value."""
        return self._queue(
            {"op": protocol.OP_GET, "attribute": attribute},
            f"try_get({attribute!r})",
            lambda r: str(r["value"]),
        )

    def remove(self, attribute: str) -> BatchResult:
        """Queue a remove; the result resolves to the existed flag."""
        return self._queue(
            {"op": protocol.OP_REMOVE, "attribute": attribute},
            f"remove({attribute!r})",
            lambda r: bool(r["existed"]),
        )

    def __len__(self) -> int:
        return len(self._ops)

    def __enter__(self) -> "_BatchBuilder":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is not None or not self._ops:
            return  # never send a half-built batch out of a failing block
        replies = self._client._batch_rpc(self._ops)
        first_error: Exception | None = None
        for (result, parse), sub_reply in zip(self._results, replies):
            if sub_reply.get("ok", False):
                result._value = parse(sub_reply)
                continue
            try:
                protocol.raise_error(sub_reply)
            except errors.TdpError as e:
                result.error = e
                if first_error is None:
                    first_error = e
        if first_error is not None:
            raise first_error
