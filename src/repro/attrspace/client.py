"""Attribute space client: the daemon-side endpoint of a LASS/CASS session.

Provides both the blocking primitives of the paper (``put``/``get``) and
the asynchronous ones (``async_get``/``async_put``) with the
service-at-a-safe-point delivery model of Section 3.3: completions and
subscription notifications are queued, the queue doubles as the
"descriptor" a daemon polls, and callbacks run only inside
:meth:`service_events`, never from internal threads.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Any, Callable

from repro import errors
from repro.attrspace import protocol
from repro.attrspace.notify import Notification
from repro.attrspace.store import DEFAULT_CONTEXT
from repro.transport.base import Channel
from repro.util.ids import IdAllocator
from repro.util.log import get_logger
from repro.util.sync import Latch, WaitableQueue, tracked_lock
from repro.util.threads import spawn

_log = get_logger("attrspace.client")

#: Callback signature for async completions: (value_or_none, error_or_none, arg)
AsyncCallback = Callable[[Any, Exception | None, Any], None]
#: Callback signature for subscriptions: (Notification, arg)
NotifyCallback = Callable[[Notification, Any], None]


@dataclass
class _PendingAsync:
    kind: str  # "get" | "put"
    attribute: str
    callback: AsyncCallback
    callback_arg: Any


@dataclass
class _Event:
    """One queued deliverable: an async completion or a notification."""

    invoke: Callable[[], None]
    description: str


class AttributeSpaceClient:
    """One daemon's session with one attribute space server.

    A client binds to a single *context* (the per-RT space of Section
    3.2); open a second client for a second context.  The constructor
    performs the ``attach`` handshake; :meth:`close` detaches.
    """

    def __init__(
        self,
        channel: Channel,
        *,
        context: str = DEFAULT_CONTEXT,
        member: str | None = None,
    ):
        self._channel = channel
        self.context = context
        self.member = member if member is not None else f"client@{channel.local_host}"
        self._req_ids = IdAllocator()
        self._pending_sync: dict[int, Latch[dict]] = {}
        self._pending_async: dict[int, _PendingAsync] = {}
        self._subs: dict[int, tuple[NotifyCallback, Any]] = {}
        self._lock = tracked_lock("attrspace.client.AttributeSpaceClient._lock")
        self._closed = False
        self._conn_lost = False
        #: the "descriptor": non-empty means tdp_service_events has work
        self.events: WaitableQueue[_Event] = WaitableQueue()
        self._receiver = spawn(self._recv_loop, name=f"attr-client-{self.member}")
        self._rpc({"op": protocol.OP_ATTACH, "context": context, "member": self.member})

    # -- plumbing -------------------------------------------------------------

    def _next_req(self, latch: Latch[dict] | None = None) -> int:
        with self._lock:
            if self._closed:
                raise errors.SpaceClosedError("client closed")
            if self._conn_lost:
                raise errors.SpaceClosedError("attribute space connection lost")
            req = self._req_ids.next()
            if latch is not None:
                self._pending_sync[req] = latch
            return req

    def _rpc(self, request: dict[str, Any], timeout: float | None = 30.0) -> dict[str, Any]:
        """Send a request and block for its reply."""
        latch: Latch[dict] = Latch()
        req = self._next_req(latch)
        request = dict(request, req=req)
        try:
            self._channel.send(request)
        except errors.TdpError:
            with self._lock:
                self._pending_sync.pop(req, None)
            raise errors.SpaceClosedError("attribute space connection lost") from None
        reply = latch.wait(timeout=timeout)
        if not reply.get("ok", False):
            protocol.raise_error(reply)
        return reply

    def _recv_loop(self) -> None:
        try:
            while True:
                message = self._channel.recv()
                self._route(message)
        except errors.TdpError:
            pass
        finally:
            self._fail_pending()

    def _route(self, message: dict[str, Any]) -> None:
        if message.get("op") == protocol.OP_NOTIFY:
            sub_id = message.get("sub")
            notification = Notification.from_wire(message)
            with self._lock:
                entry = self._subs.get(sub_id) if isinstance(sub_id, int) else None
            if entry is not None:
                callback, arg = entry
                self.events.put(
                    _Event(
                        invoke=lambda: callback(notification, arg),
                        description=f"notify {notification.attribute}",
                    )
                )
            return
        reply_to = message.get("reply_to")
        if not isinstance(reply_to, int):
            _log.warning("dropping unroutable message: %r", message)
            return
        with self._lock:
            latch = self._pending_sync.pop(reply_to, None)
            pending_async = self._pending_async.pop(reply_to, None)
        if latch is not None:
            latch.open(message)
            return
        if pending_async is not None:
            self._queue_async_completion(pending_async, message)
            return
        _log.warning("reply for unknown request %s", reply_to)

    def _queue_async_completion(self, pending: _PendingAsync, reply: dict[str, Any]) -> None:
        error: Exception | None = None
        value: Any = None
        if reply.get("ok", False):
            value = reply.get("value") if pending.kind == "get" else None
        else:
            try:
                protocol.raise_error(reply)
            except Exception as e:  # noqa: BLE001 — captured for callback delivery
                error = e
        self.events.put(
            _Event(
                invoke=lambda: pending.callback(value, error, pending.callback_arg),
                description=f"async-{pending.kind} {pending.attribute}",
            )
        )

    def _fail_pending(self) -> None:
        """Connection died: fail sync waiters, queue async error completions."""
        with self._lock:
            self._conn_lost = True
            sync = list(self._pending_sync.values())
            self._pending_sync.clear()
            asyncs = list(self._pending_async.values())
            self._pending_async.clear()
        failure = {"ok": False, "error_type": "space_closed", "error": "connection lost"}
        for latch in sync:
            latch.open(failure)
        for pending in asyncs:
            self._queue_async_completion(pending, failure)
        self.events.close()

    # -- blocking API (paper Section 3.2) --------------------------------------

    def put(self, attribute: str, value: str) -> int:
        """Blocking put; returns the stored version number."""
        reply = self._rpc({"op": protocol.OP_PUT, "context": self.context,
                           "attribute": attribute, "value": value})
        return int(reply["version"])

    def get(self, attribute: str, timeout: float | None = None) -> str:
        """Blocking get: waits until the attribute exists.

        ``timeout`` bounds the wait (server-side timer); ``None`` waits
        indefinitely — the paradynd-waits-for-pid pattern of Section 4.3.
        """
        reply = self._rpc(
            {
                "op": protocol.OP_GET,
                "context": self.context,
                "attribute": attribute,
                "block": True,
                "timeout": timeout,
            },
            timeout=None if timeout is None else timeout + 30.0,
        )
        return str(reply["value"])

    def try_get(self, attribute: str) -> str:
        """Non-blocking get; raises ``NoSuchAttributeError`` when absent."""
        reply = self._rpc(
            {"op": protocol.OP_GET, "context": self.context,
             "attribute": attribute, "block": False}
        )
        return str(reply["value"])

    def remove(self, attribute: str) -> bool:
        reply = self._rpc(
            {"op": protocol.OP_REMOVE, "context": self.context, "attribute": attribute}
        )
        return bool(reply["existed"])

    def list_attributes(self) -> list[str]:
        reply = self._rpc({"op": protocol.OP_LIST, "context": self.context})
        return list(reply["attributes"])

    def snapshot(self) -> dict[str, str]:
        reply = self._rpc({"op": protocol.OP_SNAPSHOT, "context": self.context})
        return dict(reply["data"])

    def ping(self) -> dict[str, Any]:
        return self._rpc({"op": protocol.OP_PING})

    # -- asynchronous API (paper Section 3.2/3.3) -------------------------------

    def async_get(self, attribute: str, callback: AsyncCallback, callback_arg: Any = None) -> None:
        """Non-blocking get; ``callback(value, error, arg)`` runs from
        :meth:`service_events` once the attribute is available."""
        req = self._next_req()
        with self._lock:
            self._pending_async[req] = _PendingAsync("get", attribute, callback, callback_arg)
        self._channel.send(
            {
                "op": protocol.OP_GET,
                "req": req,
                "context": self.context,
                "attribute": attribute,
                "block": True,
            }
        )

    def async_put(
        self, attribute: str, value: str, callback: AsyncCallback, callback_arg: Any = None
    ) -> None:
        """Non-blocking put with completion callback (same delivery rules)."""
        req = self._next_req()
        with self._lock:
            self._pending_async[req] = _PendingAsync("put", attribute, callback, callback_arg)
        self._channel.send(
            {
                "op": protocol.OP_PUT,
                "req": req,
                "context": self.context,
                "attribute": attribute,
                "value": value,
            }
        )

    def subscribe(self, pattern: str, callback: NotifyCallback, callback_arg: Any = None) -> int:
        """Subscribe to puts/removes matching ``pattern`` in this context."""
        reply = self._rpc(
            {"op": protocol.OP_SUBSCRIBE, "context": self.context, "pattern": pattern}
        )
        sub_id = int(reply["sub"])
        with self._lock:
            self._subs[sub_id] = (callback, callback_arg)
        return sub_id

    def unsubscribe(self, sub_id: int) -> bool:
        with self._lock:
            self._subs.pop(sub_id, None)
        reply = self._rpc({"op": protocol.OP_UNSUBSCRIBE, "sub": sub_id})
        return bool(reply["removed"])

    # -- event servicing (paper Section 3.3) ------------------------------------

    def has_pending_events(self) -> bool:
        """True when :meth:`service_events` would run at least one callback.

        This is the library's version of "activity on the descriptor":
        a poll loop checks it (or blocks in :meth:`wait_event`) and then
        calls :meth:`service_events` at its safe point.
        """
        return len(self.events) > 0

    def wait_event(self, timeout: float | None = None) -> bool:
        """Block until an event is queued (or timeout); returns availability.

        The queued event is *not* consumed — like returning from
        ``poll()`` without reading the descriptor.
        """
        return self.events.wait_nonempty(timeout=timeout)

    def service_events(self, max_events: int | None = None) -> int:
        """Run queued callbacks in the caller's thread; returns the count.

        This is ``tdp_service_event``: "the callback function will be
        called at a well-known and (presumably) safe point."
        """
        count = 0
        while max_events is None or count < max_events:
            try:
                event = self.events.get_nowait()
            except (IndexError, errors.ChannelClosedError):
                break
            event.invoke()
            count += 1
        return count

    # -- lifecycle ---------------------------------------------------------------

    def close(self, *, detach: bool = True) -> None:
        """Detach from the context and drop the connection. Idempotent."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
        if detach:
            try:
                latch: Latch[dict] = Latch()
                with self._lock:
                    req = self._req_ids.next()
                    self._pending_sync[req] = latch
                self._channel.send(
                    {"op": protocol.OP_DETACH, "req": req,
                     "context": self.context, "member": self.member}
                )
                latch.wait(timeout=5.0)
            except errors.TdpError:
                pass
        self._channel.close()

    @property
    def closed(self) -> bool:
        with self._lock:
            return self._closed

    def __enter__(self) -> "AttributeSpaceClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
