"""``tdpb1`` — the negotiated binary frame-body codec.

Binary companion to the JSON body codec in ``attrspace.protocol``.
A body is::

    tag      u8     op tag (index into _OPS) or _TAG_RAW (0xFF)
    nfields  u16    number of encoded fields (excluding the implied op)
    fields   n ×    key + value

An op tag makes the ``"op"`` field implicit: requests and notify frames
never spend bytes on the op name, and decode reinserts it.  Frames with
no ``"op"`` (replies, transport hellos) use ``_TAG_RAW`` and carry every
field explicitly.

Keys are either a one-byte id into the append-only ``_FIELD_NAMES``
table (the vocabulary pinned by ``protocol.lock.json`` plus plumbing and
handshake names) or the ``_KEY_ESCAPE`` byte followed by a tagged string
— so arbitrary JSON-able dicts (attribute values, batch payloads) still
round-trip.  Values are type-tagged; the supported types are exactly the
JSON-able ones, with one deliberate restriction: dict keys must be
``str`` (JSON silently stringifies int keys; the binary codec refuses,
raising :class:`~repro.errors.ProtocolError` like any other
unserializable message, so the two codecs never disagree about what a
frame means).

The table is APPEND-ONLY: ids are wire format.  Renaming or reordering
entries breaks ``tdpb1`` compatibility; bump the codec name instead.
"""

from __future__ import annotations

import struct
from typing import Any

from repro.errors import ProtocolError

CODEC_NAME = "tdpb1"

#: Op order is wire format: the original 12 ops were sorted once and are
#: now frozen; later ops APPEND (appending keeps old tags valid, which
#: is the same append-only discipline as the field table below).
_OPS = (
    "attach",
    "batch",
    "detach",
    "get",
    "list",
    "notify",
    "ping",
    "put",
    "remove",
    "snapshot",
    "subscribe",
    "unsubscribe",
    # federation (PR 9) — appended, see note above
    "sub_agg",
    "shardmap",
)
_OP_TAGS = {op: i for i, op in enumerate(_OPS)}
_TAG_RAW = 0xFF

#: Append-only field-name table (see module docstring).
_FIELD_NAMES = (
    # plumbing
    "op",
    "req",
    "reply_to",
    "ok",
    "obs",
    # op payloads (request + reply, lock vocabulary)
    "context",
    "attribute",
    "attributes",
    "value",
    "version",
    "ephemeral",
    "existed",
    "removed",
    "block",
    "timeout",
    "pattern",
    "sub",
    "kind",
    "ops",
    "replies",
    "data",
    "member",
    "name",
    "role",
    "session",
    "lease_ttl",
    "resumed",
    # error replies
    "error",
    "error_type",
    # obs trace envelope
    "t",
    "s",
    # transport handshake
    "hello",
    "hello_ack",
    "codecs",
    "codec",
    # federation (LASS<->CASS hierarchy)
    "origin",
    "agg",
    "epoch",
    "shards",
)
_FIELD_IDS = {name: i for i, name in enumerate(_FIELD_NAMES)}
_KEY_ESCAPE = 0xFF

# value type tags
_T_NULL = b"\x00"
_T_FALSE = b"\x01"
_T_TRUE = b"\x02"
_T_INT8 = b"\x03"
_T_INT32 = b"\x04"
_T_INT64 = b"\x05"
_T_BIGINT = b"\x06"
_T_FLOAT = b"\x07"
_T_STR8 = b"\x08"
_T_STR32 = b"\x09"
_T_LIST = b"\x0a"
_T_DICT = b"\x0b"

_U16 = struct.Struct(">H")
_U32 = struct.Struct(">I")
_I8 = struct.Struct(">b")
_I32 = struct.Struct(">i")
_I64 = struct.Struct(">q")
_F64 = struct.Struct(">d")

_ONE_BYTE = tuple(bytes((i,)) for i in range(256))

#: Decode refuses nesting deeper than this — frames are shallow, and the
#: bound keeps a hostile body from exhausting the interpreter stack.
_MAX_DEPTH = 64


def encode(message: dict[str, Any]) -> bytes:
    """Encode a frame body; raises ProtocolError on unserializable input.

    The field loop inlines the dominant cases (table keys; str / small
    int / bool / None values) — this runs once per frame on both the
    client and the event loop, so call overhead is the cost driver.
    """
    op = message.get("op")
    tag = _OP_TAGS.get(op) if isinstance(op, str) else None
    nfields = len(message) - (1 if tag is not None else 0)
    if nfields > 0xFFFF:
        raise ProtocolError(f"unserializable message: {nfields} fields exceeds tdpb1 limit")
    out: list[bytes] = [
        _ONE_BYTE[tag if tag is not None else _TAG_RAW],
        _U16.pack(nfields),
    ]
    append = out.append
    field_ids, one_byte = _FIELD_IDS, _ONE_BYTE
    for key, value in message.items():
        if key == "op" and tag is not None:
            continue
        fid = field_ids.get(key)
        if fid is not None:
            append(one_byte[fid])
        else:
            if not isinstance(key, str):
                raise ProtocolError(
                    f"unserializable message: tdpb1 requires str keys, "
                    f"got {type(key).__name__}"
                )
            append(one_byte[_KEY_ESCAPE])
            _encode_str(out, key)
        vtype = type(value)
        if vtype is str:
            raw = value.encode("utf-8")
            n = len(raw)
            if n < 256:
                append(_T_STR8)
                append(one_byte[n])
            else:
                append(_T_STR32)
                append(_U32.pack(n))
            append(raw)
        elif vtype is int and -128 <= value <= 127:
            append(_T_INT8)
            append(_I8.pack(value))
        elif value is None:
            append(_T_NULL)
        elif vtype is bool:
            append(_T_TRUE if value else _T_FALSE)
        else:
            _encode_value(out, value, 0)
    return b"".join(out)


def _encode_key(out: list[bytes], key: Any) -> None:
    if not isinstance(key, str):
        raise ProtocolError(
            f"unserializable message: tdpb1 requires str keys, got {type(key).__name__}"
        )
    fid = _FIELD_IDS.get(key)
    if fid is not None:
        out.append(_ONE_BYTE[fid])
    else:
        out.append(_ONE_BYTE[_KEY_ESCAPE])
        _encode_str(out, key)


def _encode_str(out: list[bytes], value: str) -> None:
    raw = value.encode("utf-8")
    if len(raw) < 256:
        out.append(_T_STR8)
        out.append(_ONE_BYTE[len(raw)])
    else:
        out.append(_T_STR32)
        out.append(_U32.pack(len(raw)))
    out.append(raw)


def _encode_value(out: list[bytes], value: Any, depth: int) -> None:
    if depth > _MAX_DEPTH:
        raise ProtocolError("unserializable message: nesting too deep for tdpb1")
    if value is None:
        out.append(_T_NULL)
    elif isinstance(value, bool):
        out.append(_T_TRUE if value else _T_FALSE)
    elif isinstance(value, int):
        if -128 <= value <= 127:
            out.append(_T_INT8)
            out.append(_I8.pack(value))
        elif -(2**31) <= value < 2**31:
            out.append(_T_INT32)
            out.append(_I32.pack(value))
        elif -(2**63) <= value < 2**63:
            out.append(_T_INT64)
            out.append(_I64.pack(value))
        else:
            raw = value.to_bytes((value.bit_length() + 8) // 8, "big", signed=True)
            out.append(_T_BIGINT)
            out.append(_U32.pack(len(raw)))
            out.append(raw)
    elif isinstance(value, float):
        out.append(_T_FLOAT)
        out.append(_F64.pack(value))
    elif isinstance(value, str):
        _encode_str(out, value)
    elif isinstance(value, (list, tuple)):
        out.append(_T_LIST)
        out.append(_U32.pack(len(value)))
        for item in value:
            _encode_value(out, item, depth + 1)
    elif isinstance(value, dict):
        out.append(_T_DICT)
        out.append(_U32.pack(len(value)))
        for key, item in value.items():
            _encode_key(out, key)
            _encode_value(out, item, depth + 1)
    else:
        raise ProtocolError(
            f"unserializable message: {type(value).__name__} is not JSON-compatible"
        )


def decode(data: bytes) -> dict[str, Any]:
    """Decode a frame body; raises ProtocolError on malformed input.

    Mirrors :func:`encode`: the field loop inlines table keys and the
    str8 / int8 / bool / null value tags, deferring everything else to
    :func:`_decode_value`.
    """
    try:
        tag = data[0]
        nfields = (data[1] << 8) | data[2]
        message: dict[str, Any] = {}
        if tag != _TAG_RAW:
            if tag >= len(_OPS):
                raise ProtocolError(f"malformed frame body: unknown op tag {tag}")
            message["op"] = _OPS[tag]
        pos = 3
        size = len(data)
        names, n_names = _FIELD_NAMES, len(_FIELD_NAMES)
        for _ in range(nfields):
            fid = data[pos]
            pos += 1
            if fid < n_names:
                key = names[fid]
            else:
                key, pos = _decode_key(data, pos - 1)
            vtag = data[pos]
            pos += 1
            if vtag == 0x08:
                end = pos + 1 + data[pos]
                if end > size:
                    raise ProtocolError("malformed frame body: truncated")
                message[key] = data[pos + 1:end].decode("utf-8")
                pos = end
            elif vtag == 0x03:
                message[key] = _I8.unpack_from(data, pos)[0]
                pos += 1
            elif vtag == 0x02:
                message[key] = True
            elif vtag == 0x01:
                message[key] = False
            elif vtag == 0x00:
                message[key] = None
            else:
                message[key], pos = _decode_value(data, pos - 1, 0)
        if pos != size:
            raise ProtocolError(
                f"malformed frame body: {size - pos} trailing bytes"
            )
        return message
    except ProtocolError:
        raise
    except (IndexError, struct.error, UnicodeDecodeError, OverflowError) as e:
        raise ProtocolError(f"malformed frame body: {e}") from e


def _decode_key(data: bytes, pos: int) -> tuple[str, int]:
    fid = data[pos]
    pos += 1
    if fid == _KEY_ESCAPE:
        key, pos = _decode_value(data, pos, _MAX_DEPTH)
        if not isinstance(key, str):
            raise ProtocolError("malformed frame body: escaped key is not a string")
        return key, pos
    if fid >= len(_FIELD_NAMES):
        raise ProtocolError(f"malformed frame body: unknown field id {fid}")
    return _FIELD_NAMES[fid], pos


def _take(data: bytes, pos: int, length: int) -> tuple[bytes, int]:
    end = pos + length
    if end > len(data):
        raise ProtocolError("malformed frame body: truncated")
    return data[pos:end], end


def _decode_value(data: bytes, pos: int, depth: int) -> tuple[Any, int]:
    if depth > _MAX_DEPTH:
        raise ProtocolError("malformed frame body: nesting too deep")
    tag = data[pos]
    pos += 1
    if tag == 0x00:
        return None, pos
    if tag == 0x01:
        return False, pos
    if tag == 0x02:
        return True, pos
    if tag == 0x03:
        (v,) = _I8.unpack_from(data, pos)
        return v, pos + 1
    if tag == 0x04:
        (v,) = _I32.unpack_from(data, pos)
        return v, pos + 4
    if tag == 0x05:
        (v,) = _I64.unpack_from(data, pos)
        return v, pos + 8
    if tag == 0x06:
        (n,) = _U32.unpack_from(data, pos)
        raw, pos = _take(data, pos + 4, n)
        return int.from_bytes(raw, "big", signed=True), pos
    if tag == 0x07:
        (v,) = _F64.unpack_from(data, pos)
        return v, pos + 8
    if tag == 0x08:
        n = data[pos]
        raw, pos = _take(data, pos + 1, n)
        return raw.decode("utf-8"), pos
    if tag == 0x09:
        (n,) = _U32.unpack_from(data, pos)
        raw, pos = _take(data, pos + 4, n)
        return raw.decode("utf-8"), pos
    if tag == 0x0A:
        (count,) = _U32.unpack_from(data, pos)
        pos += 4
        # every element costs >= 1 byte: reject absurd counts up front
        if count > len(data) - pos:
            raise ProtocolError("malformed frame body: list count exceeds body")
        items = []
        for _ in range(count):
            item, pos = _decode_value(data, pos, depth + 1)
            items.append(item)
        return items, pos
    if tag == 0x0B:
        (count,) = _U32.unpack_from(data, pos)
        pos += 4
        if count > (len(data) - pos) // 2:
            raise ProtocolError("malformed frame body: dict count exceeds body")
        obj: dict[str, Any] = {}
        for _ in range(count):
            key, pos = _decode_key(data, pos)
            value, pos = _decode_value(data, pos, depth + 1)
            obj[key] = value
        return obj, pos
    raise ProtocolError(f"malformed frame body: unknown value tag {tag}")
