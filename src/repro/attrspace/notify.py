"""Asynchronous change notification for the attribute space.

Paper Section 2.1: "There is also a mechanism for providing asynchronous
notifications" — the RM "optionally can use the asynchronous notification
to hear immediately about the change" (Section 2.3).  A subscription
names a context and a glob pattern over attribute names; every matching
``put`` or ``remove`` produces a :class:`Notification` that the server
pushes to the subscribing connection.

Delivery is decoupled from the publisher: a connection's ``deliver``
only *enqueues* the frame onto that connection's bounded outbound queue
(drained by its writer thread), so one slow or dead subscriber can never
stall the thread that performed the put — it is disconnected when its
queue overflows instead (the slow-subscriber policy, DESIGN.md §9).
"""

from __future__ import annotations

import fnmatch
import threading
from dataclasses import dataclass
from typing import Callable, Iterable

from repro.util.ids import IdAllocator
from repro.util.sync import tracked_lock


@dataclass(frozen=True)
class Notification:
    """One change event: an attribute was put (with value) or removed."""

    context: str
    attribute: str
    value: str | None  # None means the attribute was removed
    kind: str  # "put" | "remove"
    #: federation provenance: the LASS origin id (``lass:<host>``) of the
    #: server that first applied this change, or ``None`` for a change
    #: applied directly on this server.  A LASS stamps it on every local
    #: apply and on every upstream forward so the CASS can suppress the
    #: echo back to the origin host and a LASS can recognize (and skip)
    #: its own changes arriving via an aggregated subscription.
    origin: str | None = None

    def to_wire(self) -> dict:
        return {
            "context": self.context,
            "attribute": self.attribute,
            "value": self.value,
            "kind": self.kind,
            "origin": self.origin,
        }

    @staticmethod
    def from_wire(d: dict) -> "Notification":
        origin = d.get("origin")
        return Notification(
            context=str(d["context"]),
            attribute=str(d["attribute"]),
            value=d["value"],
            kind=str(d["kind"]),
            origin=str(origin) if origin is not None else None,
        )


@dataclass(frozen=True)
class _Subscription:
    sub_id: int
    context: str
    pattern: str
    deliver: Callable[[int, Notification], None]
    #: fan-out dedup group: subscriptions sharing a non-None group get at
    #: most ONE delivery per published event between them.  A LASS's
    #: aggregated upstream subscriptions all carry its origin id as the
    #: group, so overlapping patterns from one host still cost the CASS
    #: exactly one egress frame per event — the LASS re-fans locally.
    group: str | None = None

    def matches(self, context: str, attribute: str) -> bool:
        return context == self.context and fnmatch.fnmatchcase(attribute, self.pattern)


class SubscriptionRegistry:
    """Thread-safe registry of pattern subscriptions.

    ``deliver`` callables must be non-blocking (the store invokes them
    from the putter's thread); server connections satisfy this by
    offering the frame to their bounded outbound queue and never by
    writing to the channel inline.
    """

    def __init__(self) -> None:
        self._subs: dict[int, _Subscription] = {}
        self._ids = IdAllocator()
        self._lock = tracked_lock("attrspace.notify.SubscriptionRegistry._lock")

    def subscribe(
        self,
        context: str,
        pattern: str,
        deliver: Callable[[int, Notification], None],
        *,
        group: str | None = None,
    ) -> int:
        """Register; returns the subscription id used for unsubscribe.

        ``group`` joins the subscription to a fan-out dedup group (see
        :class:`_Subscription`); plain subscriptions pass ``None``.
        """
        with self._lock:
            sub_id = self._ids.next()
            self._subs[sub_id] = _Subscription(sub_id, context, pattern, deliver, group)
            return sub_id

    def unsubscribe(self, sub_id: int) -> bool:
        with self._lock:
            return self._subs.pop(sub_id, None) is not None

    def unsubscribe_many(self, sub_ids: "Iterable[int]") -> int:
        """Drop a batch of subscriptions in one lock hold (connection
        teardown); returns how many actually existed."""
        with self._lock:
            return sum(self._subs.pop(sub_id, None) is not None for sub_id in sub_ids)

    def drop_context(self, context: str) -> int:
        """Remove every subscription on a context (context destruction)."""
        with self._lock:
            doomed = [s for s in self._subs.values() if s.context == context]
            for s in doomed:
                del self._subs[s.sub_id]
            return len(doomed)

    def publish(self, notification: Notification) -> int:
        """Fan a notification out to matching subscribers; returns count.

        Subscriptions sharing a dedup group receive at most one delivery
        per event between them (subscription-aggregation: one frame per
        downstream host, however many of its patterns overlap).
        """
        with self._lock:
            targets = [
                s
                for s in self._subs.values()
                if s.matches(notification.context, notification.attribute)
            ]
        delivered = 0
        seen_groups: set[str] = set()
        for s in targets:
            if s.group is not None:
                if s.group in seen_groups:
                    continue
                seen_groups.add(s.group)
            s.deliver(s.sub_id, notification)
            delivered += 1
        return delivered

    def __len__(self) -> int:
        with self._lock:
            return len(self._subs)
