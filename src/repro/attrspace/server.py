"""LASS / CASS: the attribute space server.

One server instance wraps an :class:`~repro.attrspace.store.AttributeStore`
and serves it over a transport listener.  Thread model: one acceptor
thread plus one reader thread per connection.  Blocking GETs never park a
server thread — they register store waiters whose completion callbacks
send the reply from whichever thread performed the matching PUT.

Roles (paper Section 2.1): a **LASS** runs on each execution host,
started by the RM; the **CASS** runs on the front-end host, started by
the RM front-end.  The role only affects identification/diagnostics —
the protocol is identical, which is exactly the paper's design (clients
"can access the attribute space of its LASS or the CASS").
"""

from __future__ import annotations

import enum
import threading
from typing import Any

from repro import errors
from repro.attrspace import protocol
from repro.attrspace.notify import Notification
from repro.attrspace.store import DEFAULT_CONTEXT, AttributeStore
from repro.net.address import Endpoint
from repro.transport.base import Channel, Transport
from repro.util.log import get_logger
from repro.util.sync import AtomicCounter, tracked_lock
from repro.util.threads import spawn

_log = get_logger("attrspace.server")


class ServerRole(enum.Enum):
    LASS = "lass"  # Local Attribute Space Server (one per execution host)
    CASS = "cass"  # Central Attribute Space Server (front-end host)


class _Connection:
    """Server-side state for one client channel."""

    def __init__(self, server: "AttributeSpaceServer", channel: Channel, conn_id: int):
        self.server = server
        self.channel = channel
        self.conn_id = conn_id
        self.peer = f"{channel.remote_host}#{conn_id}"
        self.send_lock = tracked_lock("attrspace.server._Connection.send_lock")
        # (context, attribute, waiter_id) for pending blocking gets, so we
        # can cancel them if this client disconnects.
        self.pending_waiters: set[tuple[str, str, int]] = set()
        self.subscriptions: set[int] = set()
        self.contexts_joined: list[str] = []
        self.timers: dict[int, threading.Timer] = {}

    def send(self, message: dict[str, Any]) -> None:
        try:
            # send_lock exists solely to serialize frames onto this channel;
            # it guards no shared server state, so holding it across the
            # send cannot deadlock the store.
            with self.send_lock:
                self.channel.send(message)  # tdp-lint: off(blocking-call-under-lock)
        except errors.TdpError:
            pass  # peer gone; reader loop will clean up


class AttributeSpaceServer:
    """A running LASS or CASS bound to one endpoint."""

    def __init__(
        self,
        transport: Transport,
        host: str,
        *,
        port: int = 0,
        role: ServerRole = ServerRole.LASS,
        name: str | None = None,
        store: AttributeStore | None = None,
        local_only: bool = False,
    ):
        self.role = role
        self.host = host
        #: the paper's LASS access rule ("a process … cannot access the
        #: LASS's of other nodes"): when set, connections from any other
        #: host are refused at accept time.  Production LASSes (those the
        #: startd boots) enable this; it is off by default so tests can
        #: drive a server from anywhere.
        self.local_only = local_only
        self.store = store if store is not None else AttributeStore()
        self.name = name if name is not None else f"{role.value}@{host}"
        self._transport = transport
        self._listener = transport.listen(host, port)
        self._stopped = threading.Event()
        self._conn_ids = AtomicCounter()
        self._connections: dict[int, _Connection] = {}
        self._conn_lock = tracked_lock("attrspace.server.AttributeSpaceServer._conn_lock")
        self.stats = {
            "puts": AtomicCounter(),
            "gets": AtomicCounter(),
            "blocked_gets": AtomicCounter(),
            "notifications": AtomicCounter(),
            "connections": AtomicCounter(),
        }
        self._acceptor = spawn(self._accept_loop, name=f"{self.name}-accept")
        _log.info("%s listening at %s", self.name, self.endpoint)

    # -- lifecycle -----------------------------------------------------------

    @property
    def endpoint(self) -> Endpoint:
        return self._listener.endpoint

    def stop(self) -> None:
        """Shut the server down: close the listener and every connection."""
        if self._stopped.is_set():
            return
        self._stopped.set()
        self._listener.close()
        with self._conn_lock:
            conns = list(self._connections.values())
            self._connections.clear()
        for conn in conns:
            for timer in conn.timers.values():
                timer.cancel()
            conn.channel.close()

    @property
    def connection_count(self) -> int:
        with self._conn_lock:
            return len(self._connections)

    # -- accept/serve ----------------------------------------------------------

    def _accept_loop(self) -> None:
        while not self._stopped.is_set():
            try:
                channel = self._listener.accept()
            except errors.TdpError:
                return
            if self.local_only and channel.remote_host != self.host:
                _log.info(
                    "%s refusing non-local client from %s (LASS access rule)",
                    self.name, channel.remote_host,
                )
                channel.close()
                continue
            conn = _Connection(self, channel, self._conn_ids.increment())
            with self._conn_lock:
                if self._stopped.is_set():
                    channel.close()
                    return
                self._connections[conn.conn_id] = conn
            self.stats["connections"].increment()
            spawn(
                self._serve_loop,
                args=(conn,),
                name=f"{self.name}-conn{conn.conn_id}",
            )

    def _serve_loop(self, conn: _Connection) -> None:
        try:
            while True:
                try:
                    request = conn.channel.recv()
                except errors.TdpError:
                    return
                self._dispatch(conn, request)
        finally:
            self._cleanup(conn)

    def _cleanup(self, conn: _Connection) -> None:
        with self._conn_lock:
            self._connections.pop(conn.conn_id, None)
        for timer in conn.timers.values():
            timer.cancel()
        for context, attribute, wid in list(conn.pending_waiters):
            self.store.cancel_waiter(context, attribute, wid)
        for sub_id in conn.subscriptions:
            self.store.subscriptions.unsubscribe(sub_id)
        conn.channel.close()

    # -- request dispatch -----------------------------------------------------

    def _dispatch(self, conn: _Connection, request: dict[str, Any]) -> None:
        req = request.get("req")
        op = request.get("op")
        if not isinstance(req, int) or not isinstance(op, str):
            conn.send(
                protocol.error_reply(
                    req if isinstance(req, int) else -1,
                    errors.ProtocolError(f"malformed request: {request!r}"),
                )
            )
            return
        handler = getattr(self, f"_op_{op}", None)
        if handler is None:
            conn.send(protocol.error_reply(req, errors.ProtocolError(f"unknown op {op!r}")))
            return
        try:
            handler(conn, req, request)
        except errors.TdpError as e:
            conn.send(protocol.error_reply(req, e))

    @staticmethod
    def _context_of(request: dict[str, Any]) -> str:
        ctx = request.get("context", DEFAULT_CONTEXT)
        if not isinstance(ctx, str) or not ctx:
            raise errors.ProtocolError(f"bad context field: {ctx!r}")
        return ctx

    # Individual operations ---------------------------------------------------

    def _op_ping(self, conn: _Connection, req: int, request: dict[str, Any]) -> None:
        conn.send(protocol.ok_reply(req, role=self.role.value, name=self.name))

    def _op_attach(self, conn: _Connection, req: int, request: dict[str, Any]) -> None:
        context = self._context_of(request)
        member = str(request.get("member", conn.peer))
        self.store.attach(context, member)
        conn.contexts_joined.append(context)
        conn.send(protocol.ok_reply(req, context=context))

    def _op_detach(self, conn: _Connection, req: int, request: dict[str, Any]) -> None:
        context = self._context_of(request)
        member = str(request.get("member", conn.peer))
        destroyed = self.store.detach(context, member)
        conn.send(protocol.ok_reply(req, destroyed=destroyed))

    def _op_put(self, conn: _Connection, req: int, request: dict[str, Any]) -> None:
        context = self._context_of(request)
        attribute = str(request.get("attribute", ""))
        value = request.get("value")
        if not isinstance(value, str):
            raise errors.AttributeFormatError(f"value must be a string, got {type(value).__name__}")
        sv = self.store.put(attribute, value, context=context, writer=conn.peer)
        self.stats["puts"].increment()
        conn.send(protocol.ok_reply(req, version=sv.version))

    def _op_get(self, conn: _Connection, req: int, request: dict[str, Any]) -> None:
        context = self._context_of(request)
        attribute = str(request.get("attribute", ""))
        block = bool(request.get("block", True))
        timeout = request.get("timeout")
        self.stats["gets"].increment()

        if not block:
            try:
                value = self.store.try_get(attribute, context=context)
            except errors.NoSuchAttributeError:
                conn.send(
                    {
                        "reply_to": req,
                        "ok": False,
                        "error_type": "no_such_attribute",
                        "error": f"no attribute {attribute!r}",
                        "attribute": attribute,
                        "context": context,
                    }
                )
                return
            conn.send(protocol.ok_reply(req, value=value))
            return

        # Blocking get: register a waiter whose completion sends the reply.
        waiter_key: list[tuple[str, str, int]] = []

        def complete(value: str | None) -> None:
            if waiter_key:
                conn.pending_waiters.discard(waiter_key[0])
            timer = conn.timers.pop(req, None)
            if timer is not None:
                timer.cancel()
            if value is None:
                # Remove-kind wake: the context was destroyed while the
                # get was parked; the attribute can never arrive.
                conn.send(
                    protocol.error_reply(
                        req,
                        errors.ContextError(
                            f"context {context!r} destroyed while waiting "
                            f"for {attribute!r}"
                        ),
                    )
                )
                return
            conn.send(protocol.ok_reply(req, value=value))

        wid = self.store.add_waiter(attribute, complete, context=context)
        if wid is None:
            return  # value was present; complete() already replied
        self.stats["blocked_gets"].increment()
        key = (context, attribute, wid)
        waiter_key.append(key)
        conn.pending_waiters.add(key)
        if isinstance(timeout, (int, float)) and timeout >= 0:

            def on_timeout() -> None:
                if self.store.cancel_waiter(context, attribute, wid):
                    conn.pending_waiters.discard(key)
                    conn.timers.pop(req, None)
                    conn.send(
                        protocol.error_reply(
                            req,
                            errors.GetTimeoutError(
                                f"get({attribute!r}) timed out after {timeout}s"
                            ),
                        )
                    )

            timer = threading.Timer(float(timeout), on_timeout)
            timer.daemon = True
            conn.timers[req] = timer
            timer.start()

    def _op_remove(self, conn: _Connection, req: int, request: dict[str, Any]) -> None:
        context = self._context_of(request)
        attribute = str(request.get("attribute", ""))
        existed = self.store.remove(attribute, context=context)
        conn.send(protocol.ok_reply(req, existed=existed))

    def _op_list(self, conn: _Connection, req: int, request: dict[str, Any]) -> None:
        context = self._context_of(request)
        conn.send(protocol.ok_reply(req, attributes=self.store.list_attributes(context=context)))

    def _op_snapshot(self, conn: _Connection, req: int, request: dict[str, Any]) -> None:
        context = self._context_of(request)
        conn.send(protocol.ok_reply(req, data=self.store.snapshot(context=context)))

    def _op_subscribe(self, conn: _Connection, req: int, request: dict[str, Any]) -> None:
        context = self._context_of(request)
        pattern = str(request.get("pattern", "*"))

        def deliver(sub_id: int, notification: Notification) -> None:
            self.stats["notifications"].increment()
            conn.send(
                {"op": protocol.OP_NOTIFY, "sub": sub_id, **notification.to_wire()}
            )

        sub_id = self.store.subscriptions.subscribe(context, pattern, deliver)
        conn.subscriptions.add(sub_id)
        conn.send(protocol.ok_reply(req, sub=sub_id))

    def _op_unsubscribe(self, conn: _Connection, req: int, request: dict[str, Any]) -> None:
        sub_id = request.get("sub")
        removed = isinstance(sub_id, int) and self.store.subscriptions.unsubscribe(sub_id)
        if isinstance(sub_id, int):
            conn.subscriptions.discard(sub_id)
        conn.send(protocol.ok_reply(req, removed=bool(removed)))
