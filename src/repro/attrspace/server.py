"""LASS / CASS: the attribute space server.

One server instance wraps an :class:`~repro.attrspace.store.AttributeStore`
and serves it over a transport listener.  Thread model: one acceptor
thread plus, per connection, one reader thread and one writer thread.
Blocking GETs never park a server thread — they register store waiters
whose completion callbacks send the reply from whichever thread
performed the matching PUT.

Every outbound frame (replies and notification pushes alike) goes
through the connection's bounded outbound queue, drained by its writer
thread.  Producers therefore never block on a peer's channel: a put
that fans out to a hundred subscribers costs a hundred enqueues, not a
hundred synchronous sends.  The **slow-subscriber policy** is explicit:
a connection whose queue is full (it stopped reading while
notifications kept coming) is disconnected — counted in the
``slow_subscriber_disconnects`` statistic — rather than allowed to
stall the put path.  Reconnecting clients recover through their session
lease like after any other disconnect.

Roles (paper Section 2.1): a **LASS** runs on each execution host,
started by the RM; the **CASS** runs on the front-end host, started by
the RM front-end.  The role only affects identification/diagnostics —
the protocol is identical, which is exactly the paper's design (clients
"can access the attribute space of its LASS or the CASS").
"""

from __future__ import annotations

import collections
import enum
import threading
import time
from dataclasses import dataclass
from typing import Any, Callable

from repro import errors, obs
from repro.attrspace import protocol
from repro.attrspace.notify import Notification
from repro.attrspace.store import DEFAULT_CONTEXT, AttributeStore
from repro.net.address import Endpoint
from repro.transport.base import Channel, Transport
from repro.util.clock import Clock, TimerHandle, WallClock
from repro.util.log import get_logger
from repro.util.sync import AtomicCounter, WaitableQueue, tracked_lock
from repro.util.threads import spawn

_log = get_logger("attrspace.server")

#: Replies remembered per lease for at-most-once replay dedup.  256 is
#: far above any client's in-flight window (one recv thread replays at
#: most its pending tables, tens of entries).
_REPLY_CACHE_LIMIT = 256

#: Bound on one connection's outbound queue.  Generous for any reading
#: client (the writer drains as fast as the channel accepts), small
#: enough that a stalled subscriber is cut off long before its backlog
#: costs real memory.
OUTBOUND_QUEUE_LIMIT = 512


class ServerRole(enum.Enum):
    LASS = "lass"  # Local Attribute Space Server (one per execution host)
    CASS = "cass"  # Central Attribute Space Server (front-end host)


@dataclass(frozen=True)
class FederationConfig:
    """A CASS shard's view of the sharded attribute-space tier.

    ``shards`` lists every CASS endpoint (``"host:port"`` strings, this
    server included) in ring order; ``epoch`` versions the map.  A LASS
    learns both via ``OP_SHARDMAP`` and stamps the epoch on aggregated
    subscriptions so a shard can reject routing decisions made against a
    stale map.  ``None`` (the default server config) means unsharded:
    shardmap answers epoch 0 with no shard list, and downstream LASSes
    treat the dialed endpoint as the only shard.
    """

    epoch: int = 0
    shards: tuple[str, ...] = ()


class _SessionLease:
    """One client session's server-side continuity record.

    A lease outlives any single connection: a client that reconnects
    within the TTL presents the same session token, resumes the lease,
    and may replay in-flight requests — the reply cache and in-flight
    table make that replay at-most-once.  A lease whose connection is
    dead past the TTL is *expired*: the member is detached from its
    contexts and its ephemeral attributes are purged.
    """

    def __init__(self, token: str, member: str, ttl: float):
        self.token = token
        self.member = member
        self.ttl = ttl
        self._deadline = time.monotonic() + ttl
        self._contexts: set[str] = set()
        self.conn_id: int | None = None
        #: req id -> cached reply frame (insertion-ordered for trimming)
        self._replies: "collections.OrderedDict[int, dict[str, Any]]" = (
            collections.OrderedDict()
        )
        #: req id -> conn_id currently executing it
        self._inflight: dict[int, int] = {}
        self._lock = tracked_lock("attrspace.server._SessionLease._lock")

    def renew(self) -> None:
        with self._lock:
            self._deadline = time.monotonic() + self.ttl

    def resume(self, conn_id: int, ttl: float) -> None:
        """Bind the lease to a (re)attaching connection and renew it."""
        with self._lock:
            self.conn_id = conn_id
            self.ttl = ttl
            self._deadline = time.monotonic() + ttl

    def holder(self) -> int | None:
        """The conn_id currently bound to this lease (None if detached)."""
        with self._lock:
            return self.conn_id

    def granted_ttl(self) -> float:
        with self._lock:
            return self.ttl

    def expired(self, now: float) -> bool:
        with self._lock:
            return now >= self._deadline

    def add_context(self, context: str) -> None:
        with self._lock:
            self._contexts.add(context)

    def drop_context(self, context: str) -> bool:
        """Remove a context; returns True when no contexts remain."""
        with self._lock:
            self._contexts.discard(context)
            return not self._contexts

    def contexts(self) -> list[str]:
        with self._lock:
            return sorted(self._contexts)

    def cached_reply(self, req: int) -> dict[str, Any] | None:
        with self._lock:
            return self._replies.get(req)

    def cache_reply(self, req: int, frame: dict[str, Any]) -> None:
        with self._lock:
            self._inflight.pop(req, None)
            self._replies[req] = frame
            self._replies.move_to_end(req)
            while len(self._replies) > _REPLY_CACHE_LIMIT:
                self._replies.popitem(last=False)

    def begin(self, req: int, conn_id: int) -> int | None:
        """Claim ``req`` for execution; returns the current holder if any.

        A ``None`` return means this connection now owns the request.
        """
        with self._lock:
            holder = self._inflight.get(req)
            if holder is None:
                self._inflight[req] = conn_id
            return holder

    def steal(self, req: int, conn_id: int) -> None:
        """Reassign an in-flight request whose original connection died."""
        with self._lock:
            self._inflight[req] = conn_id


class _Connection:
    """Server-side state for one client channel.

    Outbound frames are enqueued (never sent inline).  On a loop-managed
    channel (the event-loop server core) the loop drains the channel's
    own bounded buffer; otherwise a dedicated writer thread drains
    ``outbound`` — the single consumer, which also makes it the
    serialization point that the old per-connection send lock used to
    provide.  Either way the producer never blocks and overflow is
    answered by the slow-subscriber policy, not silence.
    """

    def __init__(self, server: "AttributeSpaceServer", channel: Channel, conn_id: int):
        self.server = server
        self.channel = channel
        self.conn_id = conn_id
        self.peer = f"{channel.remote_host}#{conn_id}"
        self.outbound: WaitableQueue[dict[str, Any]] | None = (
            None if getattr(channel, "loop_managed", False) else WaitableQueue()
        )
        # (context, attribute, waiter_id) for pending blocking gets, so we
        # can cancel them if this client disconnects.
        self.pending_waiters: set[tuple[str, str, int]] = set()
        self.subscriptions: set[int] = set()
        self.contexts_joined: list[str] = []
        self.timers: dict[int, TimerHandle] = {}
        # tdp-guard: lease -> volatile
        # (bound once during attach before any later op on this
        # connection dereferences it; the serving thread handles frames
        # serially and cross-thread readers treat None as "anonymous")
        self.lease: _SessionLease | None = None
        self.member: str | None = None
        self.writer = (
            spawn(self._writer_loop, name=f"{server.name}-w{conn_id}")
            if self.outbound is not None
            else None
        )

    @property
    def writer_id(self) -> str:
        """Attribution for puts: the lease member survives reconnects,
        so replays and ephemeral ownership stay stable; anonymous
        connections fall back to the per-connection peer label."""
        return self.member if self.member is not None else self.peer

    def send(self, message: dict[str, Any]) -> None:
        """Enqueue a frame for the writer thread; never blocks.

        A full queue means the peer stopped reading while frames kept
        coming: the slow-subscriber policy disconnects it (with a stat)
        so the producer — typically a putter mid-fan-out — is never
        stalled by someone else's dead or wedged client.
        """
        lease = self.lease
        reply_to = message.get("reply_to")
        if lease is not None and isinstance(reply_to, int):
            # Cache BEFORE enqueue: if the connection dies with this
            # frame still queued, the client's replay of the request
            # must find the reply rather than re-execute a completed
            # operation.
            lease.cache_reply(reply_to, message)
        try:
            if self.outbound is not None:
                accepted = self.outbound.offer(message, OUTBOUND_QUEUE_LIMIT)
            else:
                # Loop-managed channel: the event loop owns the bounded
                # outbound buffer and drains it under write readiness.
                accepted = self.channel.offer(message, OUTBOUND_QUEUE_LIMIT)
            if not accepted:
                self.server._disconnect_slow(self)
        except errors.ChannelClosedError:
            pass  # connection torn down; leased replies stay cached

    def _writer_loop(self) -> None:
        """Drain the outbound queue onto the channel; exits on close.

        Queue close is graceful: frames enqueued before the close are
        still transmitted (teardown drains, it does not drop).
        """
        while True:
            try:
                frame = self.outbound.get()
            except errors.ChannelClosedError:
                return
            try:
                self.channel.send(frame)
            except errors.TdpError:
                return  # peer gone; reader loop will clean up


class AttributeSpaceServer:
    """A running LASS or CASS bound to one endpoint."""

    def __init__(
        self,
        transport: Transport,
        host: str,
        *,
        port: int = 0,
        role: ServerRole = ServerRole.LASS,
        name: str | None = None,
        store: AttributeStore | None = None,
        local_only: bool = False,
        clock: Clock | None = None,
        federation: FederationConfig | None = None,
    ):
        self.role = role
        self.host = host
        #: shard-map advertisement (CASS shards only; None = unsharded)
        self.federation_config = federation
        #: timebase for blocking-get timeouts: wall time by default; the
        #: sim's startds inject their cluster's VirtualClock so scenario
        #: runs cannot have wall-time timers firing under virtual time
        #: (the TraceRecorder precedent).
        self.clock = clock if clock is not None else WallClock()
        #: the paper's LASS access rule ("a process … cannot access the
        #: LASS's of other nodes"): when set, connections from any other
        #: host are refused at accept time.  Production LASSes (those the
        #: startd boots) enable this; it is off by default so tests can
        #: drive a server from anywhere.
        self.local_only = local_only
        self.store = store if store is not None else AttributeStore()
        self.name = name if name is not None else f"{role.value}@{host}"
        self._transport = transport
        self._listener = transport.listen(host, port)
        self._stopped = threading.Event()
        self._conn_ids = AtomicCounter()
        self._connections: dict[int, _Connection] = {}
        self._conn_lock = tracked_lock("attrspace.server.AttributeSpaceServer._conn_lock")
        #: session token -> lease; guarded by _lease_lock (never nested
        #: inside a lease's own lock)
        self._leases: dict[str, _SessionLease] = {}
        self._lease_lock = tracked_lock(
            "attrspace.server.AttributeSpaceServer._lease_lock"
        )
        self._lease_sweep_interval = 0.05
        self._sweeper: threading.Thread | None = None
        self._sweeper_started = False
        #: Per-server metrics registry: two servers in one process never
        #: share a counter, and ``obs dump`` names each server's series.
        self.metrics = obs.MetricsRegistry(self.name)
        #: Name -> counter view of the registry, kept for the historical
        #: ``server.stats["puts"].value`` contract (obs counters expose
        #: the same ``increment``/``value`` surface as AtomicCounter).
        self.stats = {
            key: self.metrics.counter(f"attrspace.server.{key}")
            for key in (
                "puts",
                "gets",
                "blocked_gets",
                "notifications",
                "connections",
                "resumed_sessions",
                "replayed_replies",
                "expired_leases",
                "slow_subscriber_disconnects",
            )
        }
        serve_loop = getattr(self._listener, "serve_loop", None)
        if serve_loop is not None:
            # Event-loop server core: one thread multiplexes accept,
            # handshake deadlines, reads, and write backpressure for
            # every connection — idle subscribers cost a file
            # descriptor, not two threads.  Dispatch and all store
            # semantics are unchanged: the loop hands decoded frames to
            # the same _dispatch path the threaded core uses.
            self._acceptor = None
            self._loop = serve_loop(
                on_channel=self._loop_accept,
                on_message=self._dispatch,
                on_closed=self._cleanup,
                name=f"{self.name}-loop",
            )
        else:
            # Threaded fallback for transports whose listeners are not
            # raw sockets (inmem, proxies, fault-injection wrappers).
            self._loop = None
            self._acceptor = spawn(self._accept_loop, name=f"{self.name}-accept")
        _log.info("%s listening at %s", self.name, self.endpoint)

    # -- lifecycle -----------------------------------------------------------

    @property
    def endpoint(self) -> Endpoint:
        return self._listener.endpoint

    def stop(self) -> None:
        """Shut the server down: close the listener and every connection."""
        if self._stopped.is_set():
            return
        self._stopped.set()
        if self._loop is not None:
            # Graceful loop shutdown first: it tears every connection
            # down on the loop thread (firing the normal _cleanup per
            # connection) before the join returns.
            self._loop.stop()
        self._listener.close()
        with self._conn_lock:
            conns = list(self._connections.values())
            self._connections.clear()
        for conn in conns:
            for timer in conn.timers.values():
                timer.cancel()
            if conn.outbound is not None:
                conn.outbound.close()
            conn.channel.close()
        with self._lease_lock:
            sweeper = self._sweeper
            self._sweeper = None
            self._leases.clear()
        if sweeper is not None:
            sweeper.join(timeout=5.0)

    @property
    def connection_count(self) -> int:
        with self._conn_lock:
            return len(self._connections)

    # -- accept/serve ----------------------------------------------------------

    def _loop_accept(self, channel: Channel) -> _Connection | None:
        """``on_channel`` hook for the event-loop core (loop thread).

        Returns the connection token the loop passes back to
        ``_dispatch``/``_cleanup``, or ``None`` to refuse the peer.
        """
        if self._stopped.is_set():
            return None
        if self.local_only and channel.remote_host != self.host:
            _log.info(
                "%s refusing non-local client from %s (LASS access rule)",
                self.name, channel.remote_host,
            )
            return None
        conn = _Connection(self, channel, self._conn_ids.increment())
        with self._conn_lock:
            if self._stopped.is_set():
                return None
            self._connections[conn.conn_id] = conn
        self.stats["connections"].increment()
        obs.record("conn.accept", actor=self.name, peer=conn.peer)
        return conn

    def _accept_loop(self) -> None:
        while not self._stopped.is_set():
            try:
                channel = self._listener.accept()
            except errors.TdpError:
                # One failed handshake (garbage preamble, peer gone
                # mid-hello) must not end admission for everyone else;
                # only shutdown — ours or the listener's — does.
                if self._stopped.is_set() or self._listener.closed:
                    return
                continue
            if self.local_only and channel.remote_host != self.host:
                _log.info(
                    "%s refusing non-local client from %s (LASS access rule)",
                    self.name, channel.remote_host,
                )
                channel.close()
                continue
            conn = _Connection(self, channel, self._conn_ids.increment())
            with self._conn_lock:
                if self._stopped.is_set():
                    channel.close()
                    return
                self._connections[conn.conn_id] = conn
            self.stats["connections"].increment()
            obs.record("conn.accept", actor=self.name, peer=conn.peer)
            spawn(
                self._serve_loop,
                args=(conn,),
                name=f"{self.name}-conn{conn.conn_id}",
            )

    def _serve_loop(self, conn: _Connection) -> None:
        try:
            while True:
                try:
                    request = conn.channel.recv()
                except errors.TdpError:
                    return
                self._dispatch(conn, request)
        finally:
            self._cleanup(conn)

    def _cleanup(self, conn: _Connection) -> None:
        with self._conn_lock:
            self._connections.pop(conn.conn_id, None)
        for timer in conn.timers.values():
            timer.cancel()
        for context, attribute, wid in list(conn.pending_waiters):
            self.store.cancel_waiter(context, attribute, wid)
        self.store.subscriptions.unsubscribe_many(conn.subscriptions)
        # Close the queue first (graceful drain: the writer transmits
        # what is already queued, then exits), then the channel.
        if conn.outbound is not None:
            conn.outbound.close()
        conn.channel.close()
        # The lease (if any) is deliberately NOT released here: the whole
        # point is surviving the connection.  The sweeper expires it when
        # no successor connection resumes it within the TTL.

    def _disconnect_slow(self, conn: _Connection) -> None:
        """Slow-subscriber policy: cut off a connection whose outbound
        queue overflowed rather than ever blocking a producer.

        Runs on the producer's thread (a putter mid-fan-out or a
        dispatch thread), so it only closes — the reader thread observes
        the dead channel and performs the normal :meth:`_cleanup`.
        """
        self.stats["slow_subscriber_disconnects"].increment()
        obs.record("conn.slow_disconnect", actor=self.name, peer=conn.peer)
        _log.warning(
            "%s: disconnecting %s: outbound queue full (%d frames unread)",
            self.name, conn.peer, OUTBOUND_QUEUE_LIMIT,
        )
        if conn.outbound is not None:
            conn.outbound.close()
        conn.channel.close()

    # -- request dispatch -----------------------------------------------------

    def _dispatch(self, conn: _Connection, request: dict[str, Any]) -> None:
        req = request.get("req")
        op = request.get("op")
        if not isinstance(req, int) or not isinstance(op, str):
            conn.send(
                protocol.error_reply(
                    req if isinstance(req, int) else -1,
                    protocol.frame_error("malformed request", frame=request),
                )
            )
            return
        handler = getattr(self, f"_op_{op}", None)
        if handler is None:
            conn.send(protocol.error_reply(req, errors.ProtocolError(f"unknown op {op!r}")))
            return
        if conn.lease is not None and not self._begin_leased(conn, req):
            return
        if obs.enabled():
            # Join the client's trace: the frame carries the caller's
            # context, and the handler runs under a server-side span so
            # one tdp_put is followable client -> server -> deliveries.
            with obs.activate(obs.extract(request)):
                with obs.span(f"server.{op}", actor=self.name, peer=conn.peer):
                    self._invoke(handler, conn, req, op, request)
            return
        self._invoke(handler, conn, req, op, request)

    def _invoke(
        self,
        handler: "Callable[[_Connection, int, dict[str, Any]], None]",
        conn: _Connection,
        req: int,
        op: str,
        request: dict[str, Any],
    ) -> None:
        try:
            handler(conn, req, request)
        except errors.TdpError as e:
            conn.send(protocol.error_reply(req, e))
        except Exception as e:  # noqa: BLE001 — a handler bug must not kill the serve thread
            _log.exception("%s: handler _op_%s crashed", self.name, op)
            conn.send(
                protocol.error_reply(
                    req, protocol.frame_error(f"internal error: {e}", frame=request)
                )
            )

    def _begin_leased(self, conn: _Connection, req: int) -> bool:
        """At-most-once gate for requests on a leased connection.

        Replayed requests reuse their original req id, so the lease can
        recognize them: a cached reply is resent verbatim; a request
        still executing on a *live* sibling connection is dropped (the
        original execution will reply); a request stranded on a dead
        connection is stolen and re-executed (its only side effects — a
        parked blocking-get waiter — were cancelled with that
        connection).  Returns True when the handler should run.
        """
        lease = conn.lease
        assert lease is not None
        lease.renew()
        cached = lease.cached_reply(req)
        if cached is not None:
            self.stats["replayed_replies"].increment()
            conn.send(cached)
            return False
        holder = lease.begin(req, conn.conn_id)
        if holder is None:
            return True
        if holder == conn.conn_id:
            # Same connection, no cached reply: a duplicated frame for a
            # request still parked here (blocking get).  Drop it; the
            # parked completion will reply.
            return False
        with self._conn_lock:
            holder_alive = holder in self._connections
        if holder_alive:
            return False
        lease.steal(req, conn.conn_id)
        return True

    @staticmethod
    def _context_of(request: dict[str, Any]) -> str:
        ctx = request.get("context", DEFAULT_CONTEXT)
        if not isinstance(ctx, str) or not ctx:
            raise errors.ProtocolError(f"bad context field: {ctx!r}")
        return ctx

    # Individual operations ---------------------------------------------------

    def _op_ping(self, conn: _Connection, req: int, request: dict[str, Any]) -> None:
        conn.send(protocol.ok_reply(req, role=self.role.value, name=self.name))

    def _op_attach(self, conn: _Connection, req: int, request: dict[str, Any]) -> None:
        context = self._context_of(request)
        member = str(request.get("member", conn.peer))
        session = request.get("session")
        ttl = request.get("lease_ttl")
        resumed = False
        leased = (
            isinstance(session, str) and session
            and isinstance(ttl, (int, float)) and not isinstance(ttl, bool)
            and ttl > 0
        )
        if leased:
            lease, resumed = self._acquire_lease(str(session), member, float(ttl), conn)
            conn.lease = lease
            conn.member = member
            lease.add_context(context)
        self.store.attach(context, member)
        conn.contexts_joined.append(context)
        reply = protocol.ok_reply(req, context=context, resumed=resumed)
        if leased:
            # The granted TTL, which the client adopts (the request's
            # session token needs no echo: the client owns it already).
            reply["lease_ttl"] = float(ttl)
        conn.send(reply)
        if leased:
            self._ensure_sweeper()

    def _acquire_lease(
        self, token: str, member: str, ttl: float, conn: _Connection
    ) -> tuple[_SessionLease, bool]:
        with self._lease_lock:
            lease = self._leases.get(token)
            resumed = lease is not None
            if lease is None:
                lease = _SessionLease(token, member, ttl)
                self._leases[token] = lease
            lease.resume(conn.conn_id, ttl)
        if resumed:
            self.stats["resumed_sessions"].increment()
            obs.record(
                "session.resumed", actor=self.name,
                token=token[:8], member=member,
            )
            _log.info(
                "%s: session %s resumed by %s on conn %d",
                self.name, token[:8], member, conn.conn_id,
            )
        return lease, resumed

    def _ensure_sweeper(self) -> None:
        with self._lease_lock:
            if self._sweeper_started or self._stopped.is_set():
                return
            self._sweeper_started = True
        sweeper = spawn(self._sweep_leases, name=f"{self.name}-leases")
        # Publish the handle under the lock: a concurrent stop() must
        # either see it (and join it) or see _stopped already set.
        with self._lease_lock:
            self._sweeper = sweeper

    def _sweep_leases(self) -> None:
        """Expire leases whose connection died and whose TTL has lapsed.

        Expiry is the deferred ``tdp_exit``: the member is detached from
        every lease context and its ephemeral attributes are purged, so a
        crashed daemon cannot pin a context (or a stale heartbeat) open
        forever.
        """
        while not self._stopped.wait(self._lease_sweep_interval):
            now = time.monotonic()
            with self._lease_lock:
                candidates = list(self._leases.items())
            for token, lease in candidates:
                if not lease.expired(now):
                    continue
                conn_id = lease.holder()
                with self._conn_lock:
                    alive = conn_id is not None and conn_id in self._connections
                if alive:
                    # A live (if idle) connection keeps its lease.
                    lease.renew()
                    continue
                with self._lease_lock:
                    # Re-check under the table lock: a concurrent resume
                    # renews the deadline and must win over expiry.
                    if self._leases.get(token) is not lease or not lease.expired(
                        time.monotonic()
                    ):
                        continue
                    del self._leases[token]
                self._expire_lease(lease)

    def _expire_lease(self, lease: _SessionLease) -> None:
        self.stats["expired_leases"].increment()
        obs.record(
            "lease.expired", actor=self.name,
            token=lease.token[:8], member=lease.member,
        )
        _log.warning(
            "%s: lease %s (%s) expired after %.3gs silence",
            self.name, lease.token[:8], lease.member, lease.granted_ttl(),
        )
        for context in lease.contexts():
            self.store.purge_ephemeral(context, lease.member)
            try:
                self.store.detach(context, lease.member)
            except errors.ContextError:
                pass  # context already destroyed

    def _op_detach(self, conn: _Connection, req: int, request: dict[str, Any]) -> None:
        context = self._context_of(request)
        member = str(request.get("member", conn.peer))
        # A clean exit takes the member's session-scoped values with it.
        self.store.purge_ephemeral(context, member)
        self.store.detach(context, member)
        lease = conn.lease
        if lease is None:
            session = request.get("session")
            if isinstance(session, str):
                with self._lease_lock:
                    lease = self._leases.get(session)
        if lease is not None and lease.drop_context(context):
            with self._lease_lock:
                if self._leases.get(lease.token) is lease:
                    del self._leases[lease.token]
        conn.send(protocol.ok_reply(req))

    @staticmethod
    def _origin_of(request: dict[str, Any]) -> str | None:
        """Federation provenance on forwarded writes (absent = local)."""
        origin = request.get("origin")
        return origin if isinstance(origin, str) and origin else None

    def _op_put(self, conn: _Connection, req: int, request: dict[str, Any]) -> None:
        context = self._context_of(request)
        attribute = str(request.get("attribute", ""))
        value = request.get("value")
        if not isinstance(value, str):
            raise errors.AttributeFormatError(f"value must be a string, got {type(value).__name__}")
        sv = self.store.put(
            attribute,
            value,
            context=context,
            writer=conn.writer_id,
            ephemeral=bool(request.get("ephemeral", False)),
            origin=self._origin_of(request),
        )
        self.stats["puts"].increment()
        conn.send(protocol.ok_reply(req, version=sv.version))

    def _publish_stats(self, context: str) -> None:
        """Refresh the ``tdp.stats.*`` attributes of ``context`` from the
        live counters, so a get of any of them reads current values
        through the space itself (the observability satellite of the
        standard-attribute list)."""
        for key, counter in self.stats.items():
            self.store.put(
                f"{protocol.STATS_PREFIX}{key}",
                str(counter.value),
                context=context,
                writer=self.name,
            )

    @staticmethod
    def _validate_timeout(timeout: Any) -> float | None:
        """Reject anything but None or a non-negative real number.

        ``bool`` is explicitly banned (``timeout=True`` would otherwise
        arm a 1-second timer via ``isinstance(True, int)``), and a
        negative value is an error, not an accidental block-forever.
        """
        if timeout is None:
            return None
        if (
            isinstance(timeout, bool)
            or not isinstance(timeout, (int, float))
            or timeout < 0
        ):
            raise errors.ProtocolError(
                f"invalid get timeout {timeout!r}: "
                "must be a non-negative number or None"
            )
        return float(timeout)

    def _op_get(self, conn: _Connection, req: int, request: dict[str, Any]) -> None:
        context = self._context_of(request)
        attribute = str(request.get("attribute", ""))
        block = bool(request.get("block", True))
        timeout = self._validate_timeout(request.get("timeout"))
        self.stats["gets"].increment()
        if attribute.startswith(protocol.STATS_PREFIX):
            self._publish_stats(context)

        if not block:
            try:
                value = self.store.try_get(attribute, context=context)
            except errors.NoSuchAttributeError as e:
                conn.send(protocol.error_reply(req, e))
                return
            conn.send(protocol.ok_reply(req, value=value))
            return

        # Blocking get: register a waiter whose completion sends the reply.
        waiter_key: list[tuple[str, str, int]] = []
        # The completion runs on whichever thread performs the matching
        # put; carry the getter's context over so the reply span joins
        # the getter's trace, not the putter's.
        req_ctx = obs.current() if obs.enabled() else None

        def send_result(value: str | None) -> None:
            if value is None:
                # Remove-kind wake: the context was destroyed while the
                # get was parked; the attribute can never arrive.
                conn.send(
                    protocol.error_reply(
                        req,
                        errors.ContextError(
                            f"context {context!r} destroyed while waiting "
                            f"for {attribute!r}"
                        ),
                    )
                )
                return
            conn.send(protocol.ok_reply(req, value=value))

        def complete(value: str | None) -> None:
            if waiter_key:
                conn.pending_waiters.discard(waiter_key[0])
            timer = conn.timers.pop(req, None)
            if timer is not None:
                timer.cancel()
            if req_ctx is not None:
                with obs.activate(req_ctx):
                    with obs.span(
                        "get.complete", actor=self.name, attribute=attribute
                    ):
                        send_result(value)
            else:
                send_result(value)

        wid = self.store.add_waiter(attribute, complete, context=context)
        if wid is None:
            return  # value was present; complete() already replied
        self.stats["blocked_gets"].increment()
        key = (context, attribute, wid)
        waiter_key.append(key)
        conn.pending_waiters.add(key)
        if timeout is not None:

            def on_timeout() -> None:
                if self.store.cancel_waiter(context, attribute, wid):
                    conn.pending_waiters.discard(key)
                    conn.timers.pop(req, None)
                    conn.send(
                        protocol.error_reply(
                            req,
                            errors.GetTimeoutError(
                                f"get({attribute!r}) timed out after {timeout}s"
                            ),
                        )
                    )

            # On the server's clock: a wall timer for real deployments, a
            # virtual-time timer when a sim cluster injected its clock.
            conn.timers[req] = self.clock.call_later(timeout, on_timeout)

    def _op_remove(self, conn: _Connection, req: int, request: dict[str, Any]) -> None:
        context = self._context_of(request)
        attribute = str(request.get("attribute", ""))
        existed = self.store.remove(
            attribute, context=context, origin=self._origin_of(request)
        )
        conn.send(protocol.ok_reply(req, existed=existed))

    def _op_list(self, conn: _Connection, req: int, request: dict[str, Any]) -> None:
        context = self._context_of(request)
        conn.send(protocol.ok_reply(req, attributes=self.store.list_attributes(context=context)))

    def _op_snapshot(self, conn: _Connection, req: int, request: dict[str, Any]) -> None:
        context = self._context_of(request)
        conn.send(protocol.ok_reply(req, data=self.store.snapshot(context=context)))

    def _op_subscribe(self, conn: _Connection, req: int, request: dict[str, Any]) -> None:
        context = self._context_of(request)
        pattern = str(request.get("pattern", "*"))

        def deliver(sub_id: int, notification: Notification) -> None:
            self.stats["notifications"].increment()
            frame = {"op": protocol.OP_NOTIFY, "sub": sub_id, **notification.to_wire()}
            if obs.enabled():
                # Delivery runs on the putter's thread under its span, so
                # this span (and the context injected into the push) hangs
                # off the originating put's trace.
                with obs.span(
                    "notify.deliver",
                    actor=self.name,
                    attribute=notification.attribute,
                    sub=sub_id,
                ):
                    obs.inject(frame)
                    conn.send(frame)
            else:
                conn.send(frame)

        sub_id = self.store.subscriptions.subscribe(context, pattern, deliver)
        conn.subscriptions.add(sub_id)
        conn.send(protocol.ok_reply(req, sub=sub_id))

    def _op_unsubscribe(self, conn: _Connection, req: int, request: dict[str, Any]) -> None:
        # Ownership check: sub ids come from a global allocator, so
        # without it any client could cancel any other client's
        # subscription by guessing small integers.
        sub_id = request.get("sub")
        removed = False
        if isinstance(sub_id, int) and sub_id in conn.subscriptions:
            removed = self.store.subscriptions.unsubscribe(sub_id)
            conn.subscriptions.discard(sub_id)
        conn.send(protocol.ok_reply(req, removed=removed))

    def _op_sub_agg(self, conn: _Connection, req: int, request: dict[str, Any]) -> None:
        """Aggregated subscription from a downstream LASS.

        Like ``subscribe``, with the federation contract on top: the
        frame names the subscribing host (``origin``) and the LASS-side
        aggregation id (``agg``, diagnostics), and all of one host's
        aggregated subscriptions share one fan-out dedup group — however
        many of its patterns overlap, a published event costs this
        server exactly one egress frame per host, which the LASS re-fans
        to its local subscribers.  Deliveries whose notification
        originated on the subscribing host itself are suppressed (the
        origin already applied and published the change locally).
        ``epoch`` is validated against the shard map when this server is
        a configured shard, so a LASS routing by a stale map hears about
        it instead of silently subscribing on the wrong shard.
        """
        context = self._context_of(request)
        pattern = str(request.get("pattern", "*"))
        origin = str(request.get("origin", conn.peer))
        agg = request.get("agg")
        epoch = request.get("epoch")
        config = self.federation_config
        if (
            config is not None
            and isinstance(epoch, int)
            and not isinstance(epoch, bool)
            and epoch != config.epoch
        ):
            raise errors.ProtocolError(
                f"stale shard epoch {epoch}: this shard serves epoch {config.epoch}"
            )

        def deliver(sub_id: int, notification: Notification) -> None:
            if notification.origin is not None and notification.origin == origin:
                return  # echo suppression: the origin host already has it
            self.stats["notifications"].increment()
            frame = {"op": protocol.OP_NOTIFY, "sub": sub_id, **notification.to_wire()}
            if obs.enabled():
                with obs.span(
                    "notify.aggregate",
                    actor=self.name,
                    attribute=notification.attribute,
                    origin=origin,
                ):
                    obs.inject(frame)
                    conn.send(frame)
            else:
                conn.send(frame)

        sub_id = self.store.subscriptions.subscribe(
            context, pattern, deliver, group=origin
        )
        conn.subscriptions.add(sub_id)
        obs.record(
            "sub.aggregated", actor=self.name,
            origin=origin, agg=agg, pattern=pattern,
        )
        conn.send(protocol.ok_reply(req, sub=sub_id))

    def _op_shardmap(self, conn: _Connection, req: int, request: dict[str, Any]) -> None:
        """Advertise the CASS shard map (or "unsharded") to a LASS."""
        config = self.federation_config
        if config is None:
            conn.send(protocol.ok_reply(req, epoch=0, shards=[]))
            return
        conn.send(
            protocol.ok_reply(req, epoch=config.epoch, shards=list(config.shards))
        )

    def _op_batch(self, conn: _Connection, req: int, request: dict[str, Any]) -> None:
        """One frame, many ops: apply the sub-request list and answer
        with a positionally matched reply list.

        Sub-ops are applied by the store under a single lock hold; each
        sub-reply carries its own ``ok``/error fields, so a failed sub-op
        reports without aborting the ones after it (partial failure is
        per-position, never whole-batch).  Blocking gets are rejected
        per-op — a parked waiter inside a batch would stall the
        positional reply.
        """
        context = self._context_of(request)
        ops = request.get("ops")
        if not isinstance(ops, list):
            raise errors.ProtocolError(
                f"batch ops must be a list, got {type(ops).__name__}"
            )
        if any(
            isinstance(sub, dict)
            and sub.get("op") == protocol.OP_GET
            and str(sub.get("attribute", "")).startswith(protocol.STATS_PREFIX)
            for sub in ops
        ):
            self._publish_stats(context)
        results = self.store.apply_batch(
            ops,
            default_context=context,
            writer=conn.writer_id,
            origin=self._origin_of(request),
        )
        traced = obs.enabled()
        replies: list[dict[str, Any]] = []
        for sub, result in zip(ops, results):
            sub_op = sub.get("op") if isinstance(sub, dict) else None
            if traced:
                # Child span per sub-op under the server.batch span that
                # _dispatch opened, so one batch put fans out into
                # followable per-op nodes in the trace tree.
                with obs.span(
                    f"batch.{sub_op if isinstance(sub_op, str) else 'op'}",
                    actor=self.name,
                    attribute=(
                        str(sub.get("attribute", "")) if isinstance(sub, dict) else ""
                    ),
                ) as span_obj:
                    if isinstance(result, Exception):
                        span_obj.set_tag("error", type(result).__name__)
            if sub_op == protocol.OP_PUT and not isinstance(result, Exception):
                self.stats["puts"].increment()
            elif sub_op == protocol.OP_GET:
                self.stats["gets"].increment()
            if isinstance(result, Exception):
                replies.append(protocol.error_fields(result))
            else:
                replies.append({"ok": True, **result})
        conn.send(protocol.ok_reply(req, replies=replies))
