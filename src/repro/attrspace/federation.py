"""Federated attribute space: the LASS side of the LASS↔CASS hierarchy.

The paper's deployment (Section 2.2) runs a Local Attribute Space Server
on every execution host with a Central Attribute Space Server above it.
This module is the machinery a :class:`~repro.attrspace.lass.LassServer`
delegates to:

* **Write-through forwarding.**  A local client's put/remove/batch is
  applied to the host's own store first (the client's reply never waits
  on the WAN), then forwarded upstream over a single leased session per
  (context, shard), stamped with this host's *origin id* so the CASS can
  suppress the echo back to us.  Consecutive queued writes bound for the
  same shard coalesce into one ``OP_BATCH`` frame — the PR-5 batch
  machinery doubles as the inter-server forwarding format.

* **Miss forwarding.**  A get the local store cannot answer is forwarded
  as an *asynchronous* upstream get carrying the originating client's
  deadline, so the CASS-side timer — not a local one — bounds the wait.
  The answer lands in the local store via
  :meth:`~repro.attrspace.store.AttributeStore.fill` (waking any parked
  local waiters) without republishing a change that never happened here.

* **Subscription aggregation.**  However many local clients subscribe to
  overlapping patterns, the LASS holds at most ONE upstream aggregated
  subscription per distinct (context, pattern), and the CASS dedups all
  of one host's aggregated subscriptions into a single egress frame per
  event (see ``OP_SUB_AGG``).  Upstream notifications are applied to the
  local store, whose ordinary publish re-fans them to every local
  subscriber — CASS egress is O(hosts), not O(subscribers).

* **Sharded CASS.**  Contexts spread across multiple CASS processes by
  consistent hashing on (context, attribute-prefix): the LASS asks its
  seed upstream for the shard map (``OP_SHARDMAP``) and routes each op
  to the owning shard; patterns with a literal prefix route to one
  shard, wildcard-prefixed patterns subscribe on every shard.

Threading: all upstream traffic belongs to one worker thread that owns
the session table and shard map outright (no lock), fed through an
action queue; per-session pump threads service the upstream clients'
event queues (async-get completions, aggregated notifications).  The
only shared state — aggregation refcounts and the per-connection
interest table — sits behind ``_lock`` (rank 22), which is never held
across an upstream RPC or a queue wait.

Because every forwarded ephemeral put rides the LASS's upstream session
lease, a LASS that dies takes its hosts' ephemeral attributes with it at
the CASS — liveness propagates through the hierarchy for free.
"""

from __future__ import annotations

import bisect
import hashlib
import threading
from dataclasses import dataclass
from typing import Any, Callable, Sequence

from repro import errors, obs
from repro.attrspace.client import AttributeSpaceClient, ReconnectPolicy
from repro.attrspace.notify import Notification
from repro.attrspace.store import DEFAULT_CONTEXT, AttributeStore
from repro.net.address import Endpoint, parse_endpoint
from repro.transport.base import Transport
from repro.util.log import get_logger
from repro.util.sync import Latch, WaitableQueue, join_all, tracked_lock
from repro.util.threads import spawn

_log = get_logger("attrspace.federation")

#: Queued writes bound upstream coalesce into one batch frame, at most
#: this many sub-ops each (bounds frame size and per-flush latency).
COALESCE_LIMIT = 64

#: Virtual nodes per shard on the consistent-hash ring.
RING_REPLICAS = 32

GLOB_CHARS = frozenset("*?[")

#: Completion for a forwarded get: (value, error) — exactly one is set.
GetCompletion = Callable[[str | None, Exception | None], None]


def _ring_point(key: str) -> int:
    """A stable 64-bit ring position (``hash()`` is seeded per process,
    so two LASSes would disagree on ownership — sha1 never does)."""
    return int.from_bytes(hashlib.sha1(key.encode("utf-8")).digest()[:8], "big")


def attribute_prefix(attribute: str) -> str:
    """The shard-routing prefix: the attribute name up to the first dot.

    Hashing the prefix (not the full name) keeps families like
    ``proc.123.*`` co-located on one shard, so a literal-prefixed
    subscription or batch touches a single upstream server.
    """
    return attribute.split(".", 1)[0]


class ShardMap:
    """Consistent-hash ring over the CASS shards of one epoch.

    ``shards`` are ``"host:port"`` strings in advertisement order; a
    single-entry map (the unsharded deployment) routes everything to
    index 0 without hashing.
    """

    def __init__(self, epoch: int, shards: Sequence[str], replicas: int = RING_REPLICAS):
        self.epoch = int(epoch)
        self.shards: tuple[str, ...] = tuple(str(s) for s in shards)
        if not self.shards:
            raise ValueError("a shard map needs at least one shard")
        self._ring: list[tuple[int, int]] = []
        if len(self.shards) > 1:
            for idx, shard in enumerate(self.shards):
                for replica in range(replicas):
                    self._ring.append((_ring_point(f"{shard}#{replica}"), idx))
            self._ring.sort()

    def __len__(self) -> int:
        return len(self.shards)

    def endpoint(self, shard: int) -> Endpoint:
        return parse_endpoint(self.shards[shard])

    def owner(self, context: str, attribute: str) -> int:
        """The shard index owning (context, attribute-prefix)."""
        if len(self.shards) == 1:
            return 0
        point = _ring_point(f"{context}/{attribute_prefix(attribute)}")
        i = bisect.bisect_left(self._ring, (point, -1))
        if i == len(self._ring):
            i = 0
        return self._ring[i][1]

    def shards_for_pattern(self, context: str, pattern: str) -> list[int]:
        """Which shards a subscription pattern must be placed on.

        A pattern whose routing prefix is literal (``proc.*`` → prefix
        ``proc``) can only match attributes owned by one shard; anything
        with a glob in the prefix (``*``, ``job?.status``) may match
        attributes anywhere, so it subscribes on every shard.
        """
        if len(self.shards) == 1:
            return [0]
        prefix = attribute_prefix(pattern)
        if GLOB_CHARS.isdisjoint(prefix) and prefix != pattern:
            return [self.owner(context, pattern)]
        if GLOB_CHARS.isdisjoint(pattern):
            # Fully literal pattern (no dot): still one owner.
            return [self.owner(context, pattern)]
        return list(range(len(self.shards)))


@dataclass
class _Upstream:
    """One leased session to one CASS shard for one context."""

    client: AttributeSpaceClient
    pump: threading.Thread


class LassFederation:
    """Upstream engine of one LASS: forwarding, aggregation, sharding.

    Owned by a :class:`~repro.attrspace.lass.LassServer`; usable on its
    own in tests.  All public ``forward_*``/``note_*`` entry points are
    non-blocking (they enqueue onto the worker's action queue) so no
    serving thread ever stalls on the upstream link.
    """

    def __init__(
        self,
        transport: Transport,
        host: str,
        upstream: Endpoint,
        *,
        store: AttributeStore,
        reconnect: ReconnectPolicy | None = None,
        lease_ttl: float | None = 30.0,
    ):
        self.transport = transport
        self.host = host
        self.upstream = upstream
        self.store = store
        #: stable identity on the wire: stamped on every local apply and
        #: every upstream forward; the CASS's echo suppression and the
        #: one-frame-per-host dedup group both key on it
        self.origin = f"lass:{host}"
        self._reconnect = reconnect
        self._lease_ttl = lease_ttl
        #: Own registry (never the server's): the server fills its stats
        #: dict during construction and nothing foreign writes it later.
        self.metrics = obs.MetricsRegistry(f"federation@{host}")
        self.counters = {
            key: self.metrics.counter(f"attrspace.federation.{key}")
            for key in (
                "forwards",
                "forward_failures",
                "forwarded_gets",
                "upstream_notifies",
                "suppressed_echoes",
                "aggregated_subs",
                "sessions_opened",
                "sessions_dropped",
            )
        }
        #: (context, pattern) -> count of local subscriptions wanting it
        self._interest: dict[tuple[str, str], int] = {}
        #: local server sub id -> (conn id, context, pattern)
        self._local_subs: dict[int, tuple[int, str, str]] = {}
        self._lock = tracked_lock("attrspace.federation.LassFederation._lock")
        self._actions: WaitableQueue[tuple] = WaitableQueue()
        # -- worker-confined state (no lock: only _worker's thread) -----
        self._map: ShardMap | None = None
        self._sessions: dict[tuple[str, int], _Upstream] = {}
        #: (context, pattern) -> [(shard, upstream local sub id)]
        self._agg_subs: dict[tuple[str, str], list[tuple[int, int]]] = {}
        self._pumps: list[threading.Thread] = []
        self._worker = spawn(self._run, name=f"federation-{host}")

    # -- entry points (any thread; never block on upstream) -----------------

    def forward_put(
        self, context: str, attribute: str, value: str, ephemeral: bool = False
    ) -> None:
        op: dict[str, Any] = {"op": "put", "attribute": attribute, "value": value}
        if ephemeral:
            op["ephemeral"] = True
        self._enqueue(("write", context, op))

    def forward_remove(self, context: str, attribute: str) -> None:
        self._enqueue(("write", context, {"op": "remove", "attribute": attribute}))

    def forward_batch(self, context: str, ops: list) -> None:
        """Forward a batch frame's data sub-ops (gets stay host-local)."""
        for op in ops:
            if isinstance(op, dict) and op.get("op") in ("put", "remove"):
                self._enqueue(("write", context, dict(op)))

    def forward_get(
        self,
        context: str,
        attribute: str,
        timeout: float | None,
        done: GetCompletion,
        *,
        block: bool = True,
    ) -> None:
        """Forward a local miss upstream; ``done`` runs on a pump thread.

        ``timeout`` is the *originating client's* deadline, carried
        upstream verbatim so the CASS arms the timer.  A severed upstream
        session replays the parked get after re-attach (the client's
        pending-async replay), so an outage shorter than the reconnect
        policy's deadline is invisible to the waiting local client.
        """
        self._enqueue(("get", context, attribute, timeout, bool(block), done))

    def note_subscribe(
        self, conn_id: int, sub_id: int, context: str, pattern: str
    ) -> None:
        """A local client subscribed: ensure the upstream aggregate exists."""
        with self._lock:
            self._local_subs[sub_id] = (conn_id, context, pattern)
            key = (context, pattern)
            count = self._interest.get(key, 0)
            self._interest[key] = count + 1
            first = count == 0
        if first:
            self._enqueue(("sub", context, pattern))

    def note_unsubscribe(self, sub_id: int) -> None:
        """A local subscription ended; tear down the aggregate at zero."""
        with self._lock:
            record = self._local_subs.pop(sub_id, None)
            if record is None:
                return
            _conn_id, context, pattern = record
            key = (context, pattern)
            remaining = self._interest.get(key, 0) - 1
            if remaining > 0:
                self._interest[key] = remaining
                return
            self._interest.pop(key, None)
        self._enqueue(("unsub", context, pattern))

    def note_connection_closed(self, conn_id: int) -> None:
        """Release every interest a departed connection held."""
        with self._lock:
            doomed = [
                sub_id
                for sub_id, (owner, _c, _p) in self._local_subs.items()
                if owner == conn_id
            ]
        for sub_id in doomed:
            self.note_unsubscribe(sub_id)

    def drop_context(self, context: str) -> None:
        """The local context was destroyed: detach upstream too."""
        self._enqueue(("drop", context))

    def settle(self, timeout: float | None = 5.0) -> None:
        """Block until every action enqueued before this call has been
        processed — forwarded writes are acked upstream (deterministic
        tests; completions of in-flight async gets are NOT awaited)."""
        latch: Latch[bool] = Latch()
        try:
            self._actions.put(("settle", latch))
        except errors.ChannelClosedError:
            return
        latch.wait(timeout=timeout)

    def stop(self) -> None:
        """Drain the action queue, close every upstream session; idempotent."""
        self._actions.close()
        self._worker.join(timeout=10.0)

    def _enqueue(self, action: tuple) -> None:
        try:
            self._actions.put(action)
        except errors.ChannelClosedError:
            pass  # shutting down; the forward is abandoned

    # -- worker thread -------------------------------------------------------

    def _run(self) -> None:
        while True:
            try:
                action = self._actions.get()
            except errors.ChannelClosedError:
                break
            pending = [action]
            while len(pending) < COALESCE_LIMIT:
                try:
                    pending.append(self._actions.get_nowait())
                except (IndexError, errors.ChannelClosedError):
                    break
            self._process(pending)
        self._shutdown_sessions()

    def _process(self, pending: list[tuple]) -> None:
        i = 0
        while i < len(pending):
            if pending[i][0] == "write":
                j = i
                while j < len(pending) and pending[j][0] == "write":
                    j += 1
                self._flush_writes(pending[i:j])
                i = j
                continue
            action = pending[i]
            i += 1
            kind = action[0]
            if kind == "get":
                self._do_get(*action[1:])
            elif kind == "sub":
                self._do_sub(action[1], action[2])
            elif kind == "unsub":
                self._do_unsub(action[1], action[2])
            elif kind == "drop":
                self._do_drop(action[1])
            elif kind == "settle":
                action[1].open(True)

    def _flush_writes(self, writes: list[tuple]) -> None:
        """Send a run of queued writes, one batch frame per owning shard.

        Order is preserved per (context, shard) — the only order the
        space guarantees anyway, since only same-shard attributes can be
        observed together by one upstream reader.
        """
        by_route: dict[tuple[str, int], list[dict[str, Any]]] = {}
        shard_map = self._ensure_map()
        for _kind, context, op in writes:
            if shard_map is None:
                self.counters["forward_failures"].increment()
                continue
            shard = shard_map.owner(context, str(op.get("attribute", "")))
            by_route.setdefault((context, shard), []).append(op)
        for (context, shard), ops in by_route.items():
            client = self._session(context, shard)
            if client is None:
                self.counters["forward_failures"].increment(len(ops))
                continue
            try:
                if len(ops) == 1 and ops[0]["op"] == "put":
                    client.put(
                        ops[0]["attribute"],
                        ops[0]["value"],
                        ephemeral=bool(ops[0].get("ephemeral", False)),
                        origin=self.origin,
                    )
                elif len(ops) == 1:
                    client.remove(ops[0]["attribute"], origin=self.origin)
                else:
                    client._batch_rpc(ops, origin=self.origin)
                self.counters["forwards"].increment(len(ops))
            except errors.TdpError as e:
                self.counters["forward_failures"].increment(len(ops))
                _log.warning(
                    "%s: dropped %d forwarded write(s) to shard %d: %s",
                    self.origin, len(ops), shard, e,
                )
                self._drop_session(context, shard)

    def _do_get(
        self,
        context: str,
        attribute: str,
        timeout: float | None,
        block: bool,
        done: GetCompletion,
    ) -> None:
        shard_map = self._ensure_map()
        client = (
            self._session(context, shard_map.owner(context, attribute))
            if shard_map is not None
            else None
        )
        if client is None:
            done(
                None,
                errors.ReconnectFailedError(
                    f"no upstream session to forward get({attribute!r})"
                ),
            )
            return
        self.counters["forwarded_gets"].increment()

        def completion(value: Any, error: Exception | None, _arg: Any) -> None:
            done(value if error is None else None, error)

        try:
            client.async_get(attribute, completion, timeout=timeout, block=block)
        except errors.TdpError as e:
            done(None, e)

    def _do_sub(self, context: str, pattern: str) -> None:
        shard_map = self._ensure_map()
        if shard_map is None:
            _log.warning(
                "%s: no upstream; aggregated sub %r deferred to session "
                "restore", self.origin, pattern,
            )
            return
        for shard in shard_map.shards_for_pattern(context, pattern):
            client = self._session(context, shard)
            if client is not None:
                self._ensure_agg(context, pattern, shard, client)

    def _ensure_agg(
        self, context: str, pattern: str, shard: int, client: AttributeSpaceClient
    ) -> None:
        entries = self._agg_subs.setdefault((context, pattern), [])
        if any(s == shard for s, _ in entries):
            return
        epoch = self._map.epoch if self._map is not None else 0
        try:
            sub_id = client.subscribe_agg(
                pattern,
                self._on_upstream_notify,
                origin=self.origin,
                epoch=epoch,
            )
        except errors.TdpError as e:
            _log.warning(
                "%s: aggregated subscribe %r on shard %d failed: %s",
                self.origin, pattern, shard, e,
            )
            return
        entries.append((shard, sub_id))
        self.counters["aggregated_subs"].increment()
        obs.record(
            "federation.sub_agg", actor=self.origin,
            pattern=pattern, shard=shard, context=context,
        )

    def _do_unsub(self, context: str, pattern: str) -> None:
        entries = self._agg_subs.pop((context, pattern), [])
        for shard, sub_id in entries:
            upstream = self._sessions.get((context, shard))
            if upstream is None:
                continue
            try:
                upstream.client.unsubscribe(sub_id)
            except errors.TdpError:
                pass  # session dying; the server reaps with the lease

    def _do_drop(self, context: str) -> None:
        for key in [k for k in self._sessions if k[0] == context]:
            self._close_session(key)
        for key in [k for k in self._agg_subs if k[0] == context]:
            del self._agg_subs[key]
        with self._lock:
            for key in [k for k in self._interest if k[0] == context]:
                del self._interest[key]
            for sub_id in [
                s for s, (_c, ctx, _p) in self._local_subs.items() if ctx == context
            ]:
                del self._local_subs[sub_id]

    def _on_upstream_notify(self, notification: Notification, _arg: Any) -> None:
        """Apply a CASS-fanned change to the local store (pump thread).

        The local publish re-fans it to every matching local subscriber —
        this is the second hop of the two-hop fan-out that keeps CASS
        egress at one frame per host.  Origin is preserved so a further
        tier (or a diagnosing client) still sees where the change began.
        """
        if notification.origin == self.origin:
            # Our own change came back despite server-side suppression
            # (e.g. an unsharded upstream predating OP_SUB_AGG semantics).
            self.counters["suppressed_echoes"].increment()
            return
        self.counters["upstream_notifies"].increment()
        try:
            if notification.kind == "remove":
                self.store.remove(
                    notification.attribute,
                    context=notification.context,
                    origin=notification.origin,
                )
            elif notification.value is not None:
                self.store.put(
                    notification.attribute,
                    notification.value,
                    context=notification.context,
                    writer=notification.origin or "upstream",
                    origin=notification.origin,
                )
        except errors.TdpError:
            # Context destroyed locally while the frame was in flight, or
            # a malformed upstream value: the change is simply not cached.
            pass

    # -- sessions (worker thread only) ---------------------------------------

    def _ensure_map(self) -> ShardMap | None:
        if self._map is not None:
            return self._map
        try:
            probe = AttributeSpaceClient.connect(
                self.transport,
                self.host,
                self.upstream,
                context=DEFAULT_CONTEXT,
                member=f"{self.origin}/probe",
                reconnect=self._reconnect,
                lease_ttl=None,
            )
        except errors.TdpError as e:
            _log.warning("%s: upstream unreachable for shard map: %s", self.origin, e)
            return None
        try:
            epoch, shards = probe.shard_map()
        except errors.TdpError as e:
            _log.warning("%s: shard-map probe failed: %s", self.origin, e)
            return None
        finally:
            probe.close()
        self._map = ShardMap(epoch, shards if shards else [str(self.upstream)])
        obs.record(
            "federation.shardmap", actor=self.origin,
            epoch=self._map.epoch, shards=len(self._map),
        )
        return self._map

    def _session(self, context: str, shard: int) -> AttributeSpaceClient | None:
        key = (context, shard)
        upstream = self._sessions.get(key)
        if upstream is not None:
            return upstream.client
        shard_map = self._map
        if shard_map is None:
            return None
        try:
            client = AttributeSpaceClient.connect(
                self.transport,
                self.host,
                shard_map.endpoint(shard),
                context=context,
                member=self.origin,
                reconnect=self._reconnect,
                lease_ttl=self._lease_ttl,
            )
        except errors.TdpError as e:
            _log.warning(
                "%s: cannot open upstream session to shard %d: %s",
                self.origin, shard, e,
            )
            return None
        pump = spawn(
            self._pump, args=(client,), name=f"federation-{self.host}-pump-s{shard}"
        )
        self._sessions[key] = _Upstream(client, pump)
        self._pumps.append(pump)
        self.counters["sessions_opened"].increment()
        # A recreated session (prior one exhausted its reconnect policy)
        # must win back the aggregated subscriptions routed through it;
        # within-session outages re-subscribe via the client's own ledger.
        with self._lock:
            interested = [k for k in self._interest if k[0] == context]
        for ctx, pattern in interested:
            if shard in shard_map.shards_for_pattern(ctx, pattern):
                self._ensure_agg(ctx, pattern, shard, client)
        return client

    def _drop_session(self, context: str, shard: int) -> None:
        """Forget a session whose forwarding failed terminally; the next
        action to route here opens (and re-subscribes) a fresh one."""
        key = (context, shard)
        for agg_key in list(self._agg_subs):
            if agg_key[0] == context:
                remaining = [(s, i) for s, i in self._agg_subs[agg_key] if s != shard]
                if remaining:
                    self._agg_subs[agg_key] = remaining
                else:
                    del self._agg_subs[agg_key]
        self._close_session(key)

    def _close_session(self, key: tuple[str, int]) -> None:
        upstream = self._sessions.pop(key, None)
        if upstream is None:
            return
        self.counters["sessions_dropped"].increment()
        try:
            upstream.client.close()
        except errors.TdpError:
            pass

    def _pump(self, client: AttributeSpaceClient) -> None:
        """Service one upstream session's event queue until it closes."""
        while True:
            if client.wait_event(timeout=0.25):
                client.service_events()
            elif client.events.closed:
                return

    def _shutdown_sessions(self) -> None:
        for key in list(self._sessions):
            self._close_session(key)
        try:
            join_all(self._pumps, timeout=10.0)
        except RuntimeError as e:
            _log.warning("%s: pump threads leaked at shutdown: %s", self.origin, e)


class GatewayRegistry:
    """Process-local table of LASS gateways, one per simulated host.

    :func:`dial` consults it so every client on a host shares that
    host's LASS (and thus its cache and its single upstream session)
    instead of each client booting a private gateway.
    """

    def __init__(self) -> None:
        self._lock = tracked_lock("attrspace.federation.GatewayRegistry._lock")
        self._gateways: dict[tuple[int, str, str], Any] = {}

    def gateway(
        self,
        transport: Transport,
        host: str,
        upstream: Endpoint,
        **kwargs: Any,
    ) -> Any:
        """Get or boot the LASS for ``host`` fronting ``upstream``."""
        from repro.attrspace.lass import LassServer

        key = (id(transport), host, str(upstream))
        with self._lock:
            existing = self._gateways.get(key)
        if existing is not None:
            return existing
        # Construction outside the hold: it spawns threads, binds a
        # listener, and may dial upstream — none of which belongs under
        # a registry lock.  A lost race stops the duplicate.
        server = LassServer(transport, host, upstream=upstream, **kwargs)
        with self._lock:
            current = self._gateways.get(key)
            if current is None:
                self._gateways[key] = server
                return server
        server.stop()
        return current

    def stop_all(self) -> None:
        with self._lock:
            servers = list(self._gateways.values())
            self._gateways.clear()
        for server in servers:
            server.stop()


#: Default registry used by :func:`dial`.
GATEWAYS = GatewayRegistry()


def dial(
    transport: Transport,
    src_host: str,
    endpoint: Endpoint,
    *,
    via_lass: bool = False,
    registry: GatewayRegistry | None = None,
    gateway_kwargs: dict[str, Any] | None = None,
    **client_kwargs: Any,
) -> AttributeSpaceClient:
    """Open an attribute-space session, optionally through the local LASS.

    ``dial(..., via_lass=False)`` is :meth:`AttributeSpaceClient.connect`
    straight to ``endpoint``.  With ``via_lass=True``, ``endpoint`` names
    the *upstream* (CASS) and the session terminates at ``src_host``'s
    LASS gateway instead — booted on first use — which caches, forwards,
    and aggregates on the client's behalf (the paper's deployment shape:
    processes talk only to their own host's LASS).
    """
    if not via_lass:
        return AttributeSpaceClient.connect(
            transport, src_host, endpoint, **client_kwargs
        )
    gateways = registry if registry is not None else GATEWAYS
    lass = gateways.gateway(
        transport, src_host, endpoint, **(gateway_kwargs or {})
    )
    return AttributeSpaceClient.connect(
        transport, src_host, lass.endpoint, **client_kwargs
    )
