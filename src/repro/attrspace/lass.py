"""The Local Attribute Space Server: a per-host caching front for a CASS.

Paper Section 2.2 runs one LASS per execution host; local processes talk
only to it, and it maintains the host's slice of the space against the
Central Attribute Space Server.  :class:`LassServer` is the stock
:class:`~repro.attrspace.server.AttributeSpaceServer` — same wire
protocol, same store, same leases — with the federation behaviors layered
over the handlers:

* **put/remove/batch** apply locally first (the client's reply is a
  LAN round trip), stamped with this host's origin id, then forward
  upstream asynchronously through the
  :class:`~repro.attrspace.federation.LassFederation` worker.
* **get** answers from the local store when it can; a miss forwards
  upstream carrying the *originating client's deadline*, so the CASS
  timer bounds the wait — there is deliberately no local timer to race
  it.  The answer lands via ``store.fill`` (waking the parked waiter)
  and stays cached.
* **subscribe/unsubscribe** keep local fan-out local, while the
  federation refcounts distinct (context, pattern) interests into at
  most one upstream aggregated subscription each.
* **detach / lease expiry** forward the ephemeral purge upstream and
  drop the upstream sessions of a context the moment it dies here.
"""

from __future__ import annotations

from typing import Any

from repro import errors, obs
from repro.attrspace import protocol
from repro.attrspace.client import ReconnectPolicy
from repro.attrspace.federation import LassFederation
from repro.attrspace.server import AttributeSpaceServer, ServerRole, _Connection
from repro.attrspace.store import AttributeStore
from repro.net.address import Endpoint
from repro.transport.base import Transport
from repro.util.clock import Clock
from repro.util.log import get_logger

_log = get_logger("attrspace.lass")


class LassServer(AttributeSpaceServer):
    """One host's LASS: terminates local sessions, federates upstream."""

    def __init__(
        self,
        transport: Transport,
        host: str,
        *,
        upstream: Endpoint,
        port: int = 0,
        name: str | None = None,
        clock: Clock | None = None,
        local_only: bool = False,
        reconnect: ReconnectPolicy | None = None,
        lease_ttl: float | None = 30.0,
    ):
        store = AttributeStore()
        # The federation must exist before super().__init__: the base
        # constructor starts serving, and the first dispatched op may
        # already need to forward.
        self.federation = LassFederation(
            transport,
            host,
            upstream,
            store=store,
            reconnect=reconnect,
            lease_ttl=lease_ttl,
        )
        super().__init__(
            transport,
            host,
            port=port,
            role=ServerRole.LASS,
            name=name,
            store=store,
            local_only=local_only,
            clock=clock,
        )

    def stop(self) -> None:
        super().stop()
        self.federation.stop()

    # -- write path: apply locally, reply, forward ----------------------------

    def _op_put(self, conn: _Connection, req: int, request: dict[str, Any]) -> None:
        context = self._context_of(request)
        attribute = str(request.get("attribute", ""))
        value = request.get("value")
        if not isinstance(value, str):
            raise errors.AttributeFormatError(
                f"value must be a string, got {type(value).__name__}"
            )
        ephemeral = bool(request.get("ephemeral", False))
        sv = self.store.put(
            attribute,
            value,
            context=context,
            writer=conn.writer_id,
            ephemeral=ephemeral,
            origin=self.federation.origin,
        )
        self.stats["puts"].increment()
        conn.send(protocol.ok_reply(req, version=sv.version))
        self.federation.forward_put(context, attribute, value, ephemeral)

    def _op_remove(self, conn: _Connection, req: int, request: dict[str, Any]) -> None:
        context = self._context_of(request)
        attribute = str(request.get("attribute", ""))
        existed = self.store.remove(
            attribute, context=context, origin=self.federation.origin
        )
        conn.send(protocol.ok_reply(req, existed=existed))
        # Forward regardless of the local result: the attribute may exist
        # upstream without ever having been cached here.
        self.federation.forward_remove(context, attribute)

    def _op_batch(self, conn: _Connection, req: int, request: dict[str, Any]) -> None:
        super()._op_batch(conn, req, dict(request, origin=self.federation.origin))
        ops = request.get("ops")
        if isinstance(ops, list):
            self.federation.forward_batch(self._context_of(request), ops)

    # -- read path: local hit, else forward with the client's deadline --------

    def _op_get(self, conn: _Connection, req: int, request: dict[str, Any]) -> None:
        context = self._context_of(request)
        attribute = str(request.get("attribute", ""))
        if attribute.startswith(protocol.STATS_PREFIX):
            # Stats are host-local by design: a LASS's tdp.stats.* answer
            # describes the LASS the client is attached to.
            super()._op_get(conn, req, request)
            return
        block = bool(request.get("block", True))
        timeout = self._validate_timeout(request.get("timeout"))
        self.stats["gets"].increment()
        try:
            value = self.store.try_get(attribute, context=context)
        except errors.NoSuchAttributeError:
            pass
        else:
            conn.send(protocol.ok_reply(req, value=value))
            return

        if not block:

            def done_nonblocking(value: str | None, error: Exception | None) -> None:
                self._complete_forwarded(conn, req, context, attribute, value, error)

            self.federation.forward_get(
                context, attribute, None, done_nonblocking, block=False
            )
            return

        # Blocking miss: park a local waiter exactly as the base server
        # would — but arm NO local timer.  The client's deadline rides
        # upstream with the forwarded get, so the CASS-side timer is the
        # single authority on when the wait expires; a reconnecting
        # upstream session replays the forward after re-attach instead of
        # inventing a timeout the client never asked for.
        waiter_key: list[tuple[str, str, int]] = []
        req_ctx = obs.current() if obs.enabled() else None

        def send_result(value: str | None) -> None:
            if value is None:
                conn.send(
                    protocol.error_reply(
                        req,
                        errors.ContextError(
                            f"context {context!r} destroyed while waiting "
                            f"for {attribute!r}"
                        ),
                    )
                )
                return
            conn.send(protocol.ok_reply(req, value=value))

        def complete(value: str | None) -> None:
            if waiter_key:
                conn.pending_waiters.discard(waiter_key[0])
            if req_ctx is not None:
                with obs.activate(req_ctx):
                    with obs.span(
                        "get.complete", actor=self.name, attribute=attribute
                    ):
                        send_result(value)
            else:
                send_result(value)

        wid = self.store.add_waiter(attribute, complete, context=context)
        if wid is None:
            return  # a concurrent put/fill raced us in; already replied
        self.stats["blocked_gets"].increment()
        key = (context, attribute, wid)
        waiter_key.append(key)
        conn.pending_waiters.add(key)

        def done_blocking(value: str | None, error: Exception | None) -> None:
            if error is None and value is not None:
                try:
                    self.store.fill(
                        attribute, value,
                        context=context, writer=self.federation.origin,
                    )
                except errors.TdpError:
                    pass  # context destroyed: its waiters were cancelled
                return
            # Upstream said no (deadline fired at the CASS, or the
            # reconnect policy gave up): answer the parked client only if
            # nothing local satisfied it first.
            if self.store.cancel_waiter(context, attribute, wid):
                conn.pending_waiters.discard(key)
                exc = (
                    error
                    if isinstance(error, errors.TdpError)
                    else errors.ProtocolError(f"upstream get failed: {error}")
                )
                conn.send(protocol.error_reply(req, exc))

        self.federation.forward_get(context, attribute, timeout, done_blocking)

    def _complete_forwarded(
        self,
        conn: _Connection,
        req: int,
        context: str,
        attribute: str,
        value: str | None,
        error: Exception | None,
    ) -> None:
        """Reply to a non-blocking get that was forwarded upstream."""
        if error is not None or value is None:
            exc = (
                error
                if isinstance(error, errors.TdpError)
                else errors.NoSuchAttributeError(attribute, context)
            )
            conn.send(protocol.error_reply(req, exc))
            return
        try:
            cached = self.store.fill(
                attribute, value, context=context, writer=self.federation.origin
            )
        except errors.TdpError as e:
            conn.send(protocol.error_reply(req, e))
            return
        conn.send(protocol.ok_reply(req, value=cached))

    # -- subscriptions: local fan-out, aggregated upstream interest ------------

    def _op_subscribe(self, conn: _Connection, req: int, request: dict[str, Any]) -> None:
        before = set(conn.subscriptions)
        super()._op_subscribe(conn, req, request)
        context = self._context_of(request)
        pattern = str(request.get("pattern", "*"))
        for sub_id in conn.subscriptions - before:
            self.federation.note_subscribe(conn.conn_id, sub_id, context, pattern)

    def _op_unsubscribe(
        self, conn: _Connection, req: int, request: dict[str, Any]
    ) -> None:
        sub_id = request.get("sub")
        owned = isinstance(sub_id, int) and sub_id in conn.subscriptions
        super()._op_unsubscribe(conn, req, request)
        if owned and sub_id not in conn.subscriptions:
            self.federation.note_unsubscribe(sub_id)

    def _cleanup(self, conn: _Connection) -> None:
        super()._cleanup(conn)
        self.federation.note_connection_closed(conn.conn_id)

    # -- context lifecycle: mirror local death upstream ------------------------

    def _op_detach(self, conn: _Connection, req: int, request: dict[str, Any]) -> None:
        context = self._context_of(request)
        member = str(request.get("member", conn.peer))
        # Purge before super so the removals can be forwarded upstream
        # (super's own purge then finds nothing — purge is idempotent).
        for attribute in self.store.purge_ephemeral(context, member):
            self.federation.forward_remove(context, attribute)
        super()._op_detach(conn, req, request)
        if context not in self.store.contexts():
            self.federation.drop_context(context)

    def _expire_lease(self, lease: Any) -> None:
        for context in lease.contexts():
            for attribute in self.store.purge_ephemeral(context, lease.member):
                self.federation.forward_remove(context, attribute)
        super()._expire_lease(lease)
        for context in lease.contexts():
            if context not in self.store.contexts():
                self.federation.drop_context(context)

    # -- observability ---------------------------------------------------------

    def _publish_stats(self, context: str) -> None:
        super()._publish_stats(context)
        # The federation's counters ride the same tdp.stats.* surface so
        # a client can tdp_get its own host's forwarding health.
        for key, counter in self.federation.counters.items():
            self.store.put(
                f"{protocol.STATS_PREFIX}federation.{key}",
                str(counter.value),
                context=context,
                writer=self.name,
            )
