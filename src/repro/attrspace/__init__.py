"""The TDP Attribute Space (paper Sections 2.1 and 3.2).

A general-purpose (attribute, value) string space — "a highly simplified
version of the Linda tuple space" — through which the resource manager,
run-time tools, and application processes exchange configuration and
run-time information.  Each execution host runs a Local Attribute Space
Server (**LASS**); the front-end host runs a Central Attribute Space
Server (**CASS**).  The space is partitioned into *contexts*, one per
(RM, RT) pairing, created at ``tdp_init`` and destroyed when the last
member calls ``tdp_exit``.
"""

from repro.attrspace.store import AttributeStore, StoredValue
from repro.attrspace.server import AttributeSpaceServer, ServerRole
from repro.attrspace.client import AttributeSpaceClient, ReconnectPolicy
from repro.attrspace.notify import Notification, SubscriptionRegistry

__all__ = [
    "AttributeStore",
    "StoredValue",
    "AttributeSpaceServer",
    "ServerRole",
    "AttributeSpaceClient",
    "ReconnectPolicy",
    "Notification",
    "SubscriptionRegistry",
]
