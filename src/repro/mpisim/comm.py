"""Program-side MPI communication helpers.

These are generator functions used with ``yield from`` inside simulated
programs — the mpi4py-flavored surface (``send``/``recv``/``bcast``/
``reduce``/``allreduce``/``barrier``) over the mailbox syscalls.  Usage::

    def mpi_program(argv):
        def body():
            comm = yield from MpiComm.init()
            if comm.rank == 0:
                yield from comm.send(1, {"x": 42})
            elif comm.rank == 1:
                src, data = yield from comm.recv()
            yield from comm.barrier()
        yield from call("main", body())

Tags carry the collective round and the source rank so concurrent
collectives with the same peers never cross-deliver.
"""

from __future__ import annotations

from typing import Any, Generator

from repro.sim import syscalls as sc


class MpiComm:
    """A communicator bound to one (job, rank).

    Construct with ``yield from MpiComm.init()`` from inside a program.
    All communication methods are generators and must be driven with
    ``yield from``.
    """

    def __init__(self, job: str, rank: int, size: int):
        self.job = job
        self.rank = rank
        self.size = size
        self._peers: dict[int, tuple[str, int]] = {}
        self._seq = 0

    # -- startup -----------------------------------------------------------------

    @staticmethod
    def init() -> Generator[sc.SysCall, Any, "MpiComm"]:
        """Register this process with the MPI runtime; returns the comm."""
        job = yield sc.GetEnv("MPI_JOB")
        if not job:
            raise RuntimeError("MPI program launched without MPI_JOB")
        reply = yield sc.Service("mpi.init", {"job": job})
        return MpiComm(job=str(job), rank=int(reply["rank"]), size=int(reply["size"]))

    def _resolve(self, rank: int) -> Generator[sc.SysCall, Any, tuple[str, int]]:
        """Find a peer's (host, pid), polling until it has registered."""
        cached = self._peers.get(rank)
        if cached is not None:
            return cached
        while True:
            info = yield sc.Service("mpi.lookup", {"job": self.job, "rank": rank})
            if info is not None:
                peer = (str(info["host"]), int(info["pid"]))
                self._peers[rank] = peer
                return peer
            yield sc.Sleep(0.001)  # ch_p4-style startup wait

    # -- point to point -------------------------------------------------------------

    def send(self, dst: int, payload: Any, tag: str = "pt2pt"):
        """Send ``payload`` to rank ``dst``."""
        host, pid = yield from self._resolve(dst)
        yield sc.SendMsg(
            host, pid, tag=f"mpi.{tag}.{self.rank}",
            payload=payload,
        )

    def recv(self, src: int | None = None, tag: str = "pt2pt"):
        """Receive from rank ``src`` (or any rank); returns (src, payload)."""
        if src is not None:
            record = yield sc.RecvMsg(tag=f"mpi.{tag}.{src}")
            return src, record.payload
        record = yield sc.RecvMsg()
        # Tag format mpi.<tag>.<srcrank>
        parts = record.tag.split(".")
        sender = int(parts[-1]) if parts[-1].isdigit() else -1
        return sender, record.payload

    # -- collectives ------------------------------------------------------------------

    def _round(self, name: str) -> str:
        self._seq += 1
        return f"{name}{self._seq}"

    def barrier(self):
        """All ranks synchronize (gather-to-0 then broadcast)."""
        tag = self._round("bar")
        if self.rank == 0:
            for src in range(1, self.size):
                yield from self.recv(src, tag=tag)
            for dst in range(1, self.size):
                yield from self.send(dst, None, tag=tag + "r")
        else:
            yield from self.send(0, None, tag=tag)
            yield from self.recv(0, tag=tag + "r")

    def bcast(self, value: Any, root: int = 0):
        """Broadcast ``value`` from ``root``; returns it on every rank."""
        tag = self._round("bc")
        if self.rank == root:
            for dst in range(self.size):
                if dst != root:
                    yield from self.send(dst, value, tag=tag)
            return value
        _src, received = yield from self.recv(root, tag=tag)
        return received

    def gather(self, value: Any, root: int = 0):
        """Gather one value per rank at ``root`` (list indexed by rank);
        other ranks get ``None``."""
        tag = self._round("ga")
        if self.rank == root:
            values: list[Any] = [None] * self.size
            values[root] = value
            for src in range(self.size):
                if src != root:
                    _s, v = yield from self.recv(src, tag=tag)
                    values[src] = v
            return values
        yield from self.send(root, value, tag=tag)
        return None

    def reduce_sum(self, value: float, root: int = 0):
        """Sum-reduce to ``root``; other ranks get ``None``."""
        values = yield from self.gather(value, root=root)
        if values is None:
            return None
        return sum(values)

    def allreduce_sum(self, value: float):
        """Sum-reduce then broadcast (every rank gets the total)."""
        total = yield from self.reduce_sum(value, root=0)
        result = yield from self.bcast(total, root=0)
        return result
