"""MPI workload programs (registered as executables).

* ``mpi_ring`` — a token circulates rank 0 -> 1 -> … -> 0; classic
  startup/connectivity check.
* ``mpi_pi`` — the textbook master/worker pi integration (rank 0
  broadcasts N, all ranks compute partial sums, reduce to rank 0).
* ``mpi_imbalanced`` — ranks burn CPU proportional to ``rank+1``; the
  profiling target for multi-process bottleneck experiments.
"""

from __future__ import annotations

from repro.mpisim.comm import MpiComm
from repro.sim import syscalls as sc
from repro.sim.loader import ProgramRegistry, _float_arg, _int_arg
from repro.sim.syscalls import Program, call


def mpi_ring(argv: list[str]) -> Program:
    """Pass a counter token around the ring ``laps`` times (argv[0])."""

    laps = _int_arg(argv, 0, 1)

    def body():
        comm = yield from MpiComm.init()
        nxt = (comm.rank + 1) % comm.size
        prev = (comm.rank - 1) % comm.size
        if comm.rank == 0:
            token = 0
            for _ in range(laps):
                yield from comm.send(nxt, token, tag="ring")
                _src, token = yield from comm.recv(prev, tag="ring")
                token += 1
            yield sc.Print(f"token={token}")
        else:
            for _ in range(laps):
                _src, token = yield from comm.recv(prev, tag="ring")
                yield from comm.send(nxt, token + 1, tag="ring")
        yield from comm.barrier()

    yield from call("main", body())


def mpi_pi(argv: list[str]) -> Program:
    """Estimate pi by midpoint integration of 4/(1+x^2) over [0,1].

    Rank 0 broadcasts the interval count (argv[0], default 1000), every
    rank computes its strided partial sum, and a reduce collects the
    result at rank 0 (which prints it) — the classic MPI tutorial shape.
    """

    intervals = _int_arg(argv, 0, 1000)

    def compute_partial(comm, n):
        h = 1.0 / n
        s = 0.0
        for k, i in enumerate(range(comm.rank, n, comm.size)):
            x = h * (i + 0.5)
            s += 4.0 / (1.0 + x * x)
            if k % 64 == 0:  # charge virtual CPU every 64 local iterations
                yield sc.Compute(0.0005)
        return s * h

    def body():
        comm = yield from MpiComm.init()
        n = yield from comm.bcast(intervals if comm.rank == 0 else None, root=0)
        partial = yield from call("compute_partial", compute_partial(comm, n))
        total = yield from comm.reduce_sum(partial, root=0)
        if comm.rank == 0:
            yield sc.Print(f"pi={total:.6f}")

    yield from call("main", body())


def mpi_imbalanced(argv: list[str]) -> Program:
    """Each rank burns ``base * (rank+1)`` virtual CPU seconds, then all
    ranks barrier — the highest rank is the planted laggard."""

    base = _float_arg(argv, 0, 0.1)

    def work(comm):
        total = base * (comm.rank + 1)
        burned = 0.0
        while burned < total:
            step = min(0.01, total - burned)
            yield sc.Compute(step)
            burned += step

    def body():
        comm = yield from MpiComm.init()
        yield from call("work", work(comm))
        yield from comm.barrier()
        if comm.rank == 0:
            yield sc.Print("imbalanced run complete")

    yield from call("main", body())


MPI_EXECUTABLES = {
    "mpi_ring": (mpi_ring, ["main"]),
    "mpi_pi": (mpi_pi, ["main", "compute_partial"]),
    "mpi_imbalanced": (mpi_imbalanced, ["main", "work"]),
}


def register_mpi_programs(registry: ProgramRegistry) -> ProgramRegistry:
    """Add the MPI workloads to an executable registry."""
    for name, (factory, functions) in MPI_EXECUTABLES.items():
        registry.register(name, factory, functions=functions)
    return registry
