"""MPICH-ch_p4-style message passing for simulated programs.

The pilot demonstrated the Condor **MPI universe** with applications
compiled against MPICH ch_p4 (paper Section 4.3): a master process
(rank 0) starts first; the remaining ranks are created afterwards, each
with a paradynd attached before it runs.  This package provides:

* :mod:`~repro.mpisim.runtime` — the per-cluster MPI runtime: rank
  registration, peer lookup, and job coordination hooks (the ch_p4
  "procgroup" machinery);
* :mod:`~repro.mpisim.comm` — generator-side communication helpers for
  simulated programs: ``send``/``recv``, ``barrier``, ``bcast``,
  ``reduce``, ``allreduce`` built on the mailbox syscalls;
* :mod:`~repro.mpisim.programs` — MPI workload programs (ring, pi,
  imbalanced compute) registered as executables.
"""

from repro.mpisim.runtime import MpiRuntime, RankInfo
from repro.mpisim.comm import MpiComm
from repro.mpisim.programs import register_mpi_programs

__all__ = ["MpiRuntime", "RankInfo", "MpiComm", "register_mpi_programs"]
