"""The simulated MPI runtime: rank registration and peer lookup.

ch_p4-style startup: every process is created with ``MPI_JOB``,
``MPI_RANK`` and ``MPI_SIZE`` in its environment (the "procgroup"
knowledge), calls the ``mpi.init`` service to register its (host, pid)
under its rank, and discovers peers through ``mpi.lookup``.  Service
handlers run on the scheduler thread and never block; programs poll
``mpi.lookup`` (with tiny sleeps) until a peer appears — which is
exactly how ch_p4 startup waits for slow-to-arrive processes.

The runtime also exposes a *master-arrival hook* per job: the Condor
MPI-universe coordinator registers a callback that fires when rank 0
calls ``mpi.init``, which is the moment the remaining ranks should be
created (paper Section 4.3).
"""

from __future__ import annotations

import threading
import weakref
from dataclasses import dataclass
from typing import Callable

from repro.errors import MpiError, RankError
from repro.sim.cluster import SimCluster
from repro.sim.process import SimProcess


@dataclass(frozen=True)
class RankInfo:
    rank: int
    host: str
    pid: int


class _JobTable:
    def __init__(self, size: int):
        self.size = size
        self.ranks: dict[int, RankInfo] = {}
        self.master_hooks: list[Callable[[RankInfo], None]] = []


class MpiRuntime:
    """One per cluster; registers the ``mpi.*`` services."""

    _instances: "weakref.WeakKeyDictionary[SimCluster, MpiRuntime]" = (
        weakref.WeakKeyDictionary()
    )
    _instances_lock = threading.Lock()

    @classmethod
    def ensure(cls, cluster: SimCluster) -> "MpiRuntime":
        """The cluster's runtime, created on first use (idempotent)."""
        with cls._instances_lock:
            runtime = cls._instances.get(cluster)
            if runtime is None:
                runtime = cls(cluster)
                cls._instances[cluster] = runtime
            return runtime

    def __init__(self, cluster: SimCluster):
        self._cluster = cluster
        self._jobs: dict[str, _JobTable] = {}
        self._lock = threading.Lock()
        cluster.register_service("mpi.init", self._svc_init)
        cluster.register_service("mpi.lookup", self._svc_lookup)
        cluster.register_service("mpi.size", self._svc_size)

    # -- coordinator-facing API ---------------------------------------------------

    def create_job(self, job_id: str, size: int) -> None:
        if size < 1:
            raise MpiError(f"job size must be >= 1, got {size}")
        with self._lock:
            if job_id in self._jobs:
                raise MpiError(f"MPI job {job_id!r} already exists")
            self._jobs[job_id] = _JobTable(size)

    def on_master_init(self, job_id: str, hook: Callable[[RankInfo], None]) -> None:
        """Register a callback for rank 0's ``mpi.init`` (fires once).

        If rank 0 already registered, the hook fires immediately.
        """
        with self._lock:
            table = self._require(job_id)
            existing = table.ranks.get(0)
            if existing is None:
                table.master_hooks.append(hook)
                return
        hook(existing)

    def ranks(self, job_id: str) -> dict[int, RankInfo]:
        with self._lock:
            return dict(self._require(job_id).ranks)

    def all_registered(self, job_id: str) -> bool:
        with self._lock:
            table = self._require(job_id)
            return len(table.ranks) == table.size

    def _require(self, job_id: str) -> _JobTable:
        table = self._jobs.get(job_id)
        if table is None:
            raise MpiError(f"unknown MPI job {job_id!r}")
        return table

    # -- services (scheduler thread; must not block) ----------------------------------

    def _svc_init(self, proc: SimProcess, args: dict) -> dict:
        job_id = str(args.get("job") or proc.env.get("MPI_JOB", ""))
        rank_s = args.get("rank", proc.env.get("MPI_RANK"))
        try:
            rank = int(rank_s)  # type: ignore[arg-type]
        except (TypeError, ValueError):
            raise MpiError(f"process {proc!r} has no MPI rank") from None
        hooks: list[Callable[[RankInfo], None]] = []
        with self._lock:
            table = self._require(job_id)
            if rank < 0 or rank >= table.size:
                raise RankError(f"rank {rank} out of range for job {job_id!r}")
            if rank in table.ranks:
                raise RankError(f"rank {rank} already registered in {job_id!r}")
            info = RankInfo(rank=rank, host=proc.host.name, pid=proc.pid)
            table.ranks[rank] = info
            if rank == 0:
                hooks, table.master_hooks = table.master_hooks, []
        for hook in hooks:
            hook(info)
        return {"rank": rank, "size": self._jobs[job_id].size}

    def _svc_lookup(self, proc: SimProcess, args: dict) -> dict | None:
        job_id = str(args.get("job") or proc.env.get("MPI_JOB", ""))
        rank = int(args.get("rank", -1))
        with self._lock:
            table = self._require(job_id)
            info = table.ranks.get(rank)
        if info is None:
            return None  # not yet registered; caller retries
        return {"rank": info.rank, "host": info.host, "pid": info.pid}

    def _svc_size(self, proc: SimProcess, args: dict) -> int:
        job_id = str(args.get("job") or proc.env.get("MPI_JOB", ""))
        with self._lock:
            return self._require(job_id).size
