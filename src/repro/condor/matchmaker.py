"""The matchmaker: pairs resource requests with resource offers.

Figure 4's ``match_maker``.  Startds advertise machine ads; schedds send
negotiation requests for idle jobs.  A match reserves the machine(s)
provisionally; the claiming protocol (schedd -> startd) then either
completes the allocation or releases the reservation — "either party may
decide not to complete the allocation" (Section 4.1).

Runs as a small RPC server on the transport so the daemon interaction
trace of Figure 4 is observable on the wire.
"""

from __future__ import annotations

import threading

from repro import errors
from repro.condor.classad import ClassAd, matches, rank
from repro.net.address import Endpoint
from repro.transport.base import Transport
from repro.util.log import TraceRecorder, get_logger
from repro.util.threads import spawn

_log = get_logger("condor.matchmaker")


class Matchmaker:
    """Central matchmaking daemon (one per pool)."""

    def __init__(
        self,
        transport: Transport,
        host: str,
        *,
        trace: TraceRecorder | None = None,
    ):
        self._transport = transport
        self.host = host
        self._trace = trace
        self._machines: dict[str, dict] = {}  # name -> {ad, startd, reserved}
        self._lock = threading.Lock()
        self._listener = transport.listen(host)
        # tdp-guard: _stopped -> volatile
        # (monotonic stop latch: set once by stop(), polled by the loop)
        self._stopped = False
        spawn(self._accept_loop, name="matchmaker-accept")

    @property
    def endpoint(self) -> Endpoint:
        return self._listener.endpoint

    def stop(self) -> None:
        self._stopped = True
        self._listener.close()

    def _record(self, action: str, **details) -> None:
        if self._trace is not None:
            self._trace.record("matchmaker", action, **details)

    # -- RPC server ----------------------------------------------------------

    def _accept_loop(self) -> None:
        while not self._stopped:
            try:
                channel = self._listener.accept()
            except errors.TdpError:
                return
            spawn(self._serve, args=(channel,), name="matchmaker-conn")

    def _serve(self, channel) -> None:
        try:
            while True:
                request = channel.recv()
                op = request.get("op")
                if op == "advertise_machine":
                    channel.send(self._advertise(request))
                elif op == "negotiate":
                    channel.send(self._negotiate(request))
                elif op == "release":
                    channel.send(self._release(request))
                elif op == "invalidate":
                    channel.send(self._invalidate(request))
                else:
                    channel.send({"ok": False, "error": f"unknown op {op!r}"})
        except errors.TdpError:
            pass
        finally:
            channel.close()

    # -- operations -------------------------------------------------------------

    def _advertise(self, request: dict) -> dict:
        ad = ClassAd(kind="machine", attrs=dict(request.get("ad", {})))
        name = str(ad.get("Name"))
        startd = str(request.get("startd"))
        if not name or name == "None":
            return {"ok": False, "error": "machine ad missing Name"}
        lass = str(request.get("lass", ""))
        with self._lock:
            self._machines[name] = {
                "ad": ad, "startd": startd, "lass": lass, "reserved": False,
            }
        self._record("advertise_machine", machine=name)
        return {"ok": True}

    def _invalidate(self, request: dict) -> dict:
        name = str(request.get("machine"))
        with self._lock:
            existed = self._machines.pop(name, None) is not None
        return {"ok": True, "existed": existed}

    def _negotiate(self, request: dict) -> dict:
        """Find the best N unreserved machines for a job ad."""
        job = ClassAd(kind="job", attrs=dict(request.get("job_ad", {})))
        wanted = int(request.get("count", 1))
        self._record("negotiate", job=job.get("JobId"), count=wanted)
        with self._lock:
            candidates = [
                (name, entry)
                for name, entry in self._machines.items()
                if not entry["reserved"] and matches(job, entry["ad"])
            ]
            # Order by the job's Rank of the machine, then by name for
            # determinism.
            candidates.sort(key=lambda item: (-rank(job, item[1]["ad"]), item[0]))
            if len(candidates) < wanted:
                self._record(
                    "negotiate_failed", job=job.get("JobId"),
                    available=len(candidates), wanted=wanted,
                )
                return {
                    "ok": False,
                    "error": (
                        f"only {len(candidates)} matching machines "
                        f"(need {wanted})"
                    ),
                }
            chosen = candidates[:wanted]
            for _name, entry in chosen:
                entry["reserved"] = True
        result = [
            {"machine": name, "startd": entry["startd"], "lass": entry["lass"]}
            for name, entry in chosen
        ]
        self._record(
            "match_found",
            job=job.get("JobId"),
            machines=",".join(name for name, _ in chosen),
        )
        return {"ok": True, "matches": result}

    def _release(self, request: dict) -> dict:
        """Release a reservation (claim declined or job finished)."""
        name = str(request.get("machine"))
        with self._lock:
            entry = self._machines.get(name)
            if entry is not None:
                entry["reserved"] = False
        self._record("release", machine=name)
        return {"ok": True}

    # -- introspection -----------------------------------------------------------

    def machine_names(self) -> list[str]:
        with self._lock:
            return sorted(self._machines)

    def reserved_count(self) -> int:
        with self._lock:
            return sum(1 for e in self._machines.values() if e["reserved"])
