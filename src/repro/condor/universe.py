"""Execution universes (paper Section 4.3).

"Condor defines six different execution environments, called
'universes', to run applications."  The pilot demonstrated two, which
are the two we implement:

* **Vanilla** — any sequential job, run as-is; the default path through
  the starter.
* **MPI** — MPICH-ch_p4-style parallel jobs: the submit file names a
  ``machine_count``; rank 0 (the "master process") starts first (paused,
  monitored), and once the user continues it, the remaining ranks are
  created — each paused with a tool daemon attached — and continued
  (Section 4.3's description of the MPI universe flow).
"""

from __future__ import annotations

import enum


class Universe(enum.Enum):
    VANILLA = "vanilla"
    MPI = "mpi"

    @classmethod
    def of(cls, name: str) -> "Universe":
        try:
            return cls(name.lower())
        except ValueError:
            from repro.errors import UniverseError

            raise UniverseError(f"unsupported universe {name!r}") from None
