"""Job records and state machine for the batch system."""

from __future__ import annotations

import enum
import threading
from dataclasses import dataclass, field

from repro.condor.classad import ClassAd
from repro.condor.submit import SubmitDescription
from repro.errors import GetTimeoutError
from repro.util.sync import tracked_condition


class JobStatus(enum.Enum):
    """Lifecycle of a submitted job (Condor's q states, simplified)."""

    IDLE = "idle"            # queued, awaiting a match
    MATCHED = "matched"      # matchmaker paired it with machine(s)
    CLAIMED = "claimed"      # claiming protocol completed
    RUNNING = "running"      # starter has spawned it
    HELD = "held"            # suspended by the user (condor_hold)
    COMPLETED = "completed"  # exited
    FAILED = "failed"        # could not run (match/claim/spawn failure)
    REMOVED = "removed"


@dataclass
class JobId:
    cluster: int
    proc: int = 0

    def __str__(self) -> str:
        return f"{self.cluster}.{self.proc}"

    def __hash__(self) -> int:
        return hash((self.cluster, self.proc))


@dataclass
class JobRecord:
    """Everything the schedd tracks about one job."""

    job_id: JobId
    description: SubmitDescription
    status: JobStatus = JobStatus.IDLE
    machines: list[str] = field(default_factory=list)
    exit_code: int | None = None
    failure_reason: str | None = None
    app_pid: int | None = None
    #: set by condor_rm so the terminal status becomes REMOVED, not COMPLETED
    removal_requested: bool = False
    stdout_lines: list[str] = field(default_factory=list)
    _cond: threading.Condition = field(
        default_factory=lambda: tracked_condition("condor.job.JobRecord._cond"),
        repr=False,
    )

    def set_status(
        self,
        status: JobStatus,
        *,
        exit_code: int | None = None,
        failure_reason: str | None = None,
    ) -> None:
        with self._cond:
            self.status = status
            if exit_code is not None:
                self.exit_code = exit_code
            if failure_reason is not None:
                self.failure_reason = failure_reason
            self._cond.notify_all()

    def wait_for(self, *statuses: JobStatus, timeout: float | None = None) -> JobStatus:
        with self._cond:
            ok = self._cond.wait_for(lambda: self.status in statuses, timeout=timeout)
            if not ok:
                raise GetTimeoutError(
                    f"job {self.job_id} stuck in {self.status.value}; "
                    f"wanted {[s.value for s in statuses]}"
                )
            return self.status

    def wait_terminal(self, timeout: float | None = None) -> JobStatus:
        return self.wait_for(
            JobStatus.COMPLETED, JobStatus.FAILED, JobStatus.REMOVED, timeout=timeout
        )


def job_ad(record: JobRecord) -> ClassAd:
    """Build the job's ClassAd from its submit description."""
    desc = record.description
    attrs: dict = {
        "JobId": str(record.job_id),
        "Owner": "user",
        "Cmd": desc.executable,
        "JobUniverse": desc.universe,
        "RequestedMachines": desc.machine_count,
        "Monitored": desc.monitored,
    }
    if desc.requirements:
        attrs["Requirements"] = "=" + desc.requirements
    if desc.rank:
        attrs["Rank"] = "=" + desc.rank
    return ClassAd(kind="job", attrs=attrs)
