"""condor_master: keeps the other Condor daemons alive.

"There is another condor daemon, called the condor_master that is
present on both local and remote nodes; its job is to keep track of the
other Condor daemons" (Section 4.1).  Ours supervises registered
daemons through a liveness probe and restarts them via a supplied
factory when the probe fails — enough to demonstrate the supervision
role in fault-injection tests.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Any, Callable

from repro.util.log import get_logger
from repro.util.threads import spawn

_log = get_logger("condor.master")


@dataclass
class Supervised:
    name: str
    alive: Callable[[], bool]
    restart: Callable[[], Any]
    restarts: int = 0


class Master:
    """Daemon supervisor for one host (or one pool in the simulation)."""

    def __init__(self, *, check_interval: float = 0.05, max_restarts: int = 3):
        self._interval = check_interval
        self._max_restarts = max_restarts
        self._supervised: dict[str, Supervised] = {}
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        self.events: list[str] = []

    def supervise(
        self, name: str, *, alive: Callable[[], bool], restart: Callable[[], Any]
    ) -> None:
        with self._lock:
            self._supervised[name] = Supervised(name=name, alive=alive, restart=restart)
        self._ensure_thread()

    def _ensure_thread(self) -> None:
        with self._lock:
            if self._thread is None:
                self._thread = spawn(self._watch, name="condor-master")

    def _watch(self) -> None:
        while not self._stop.wait(self._interval):
            with self._lock:
                entries = list(self._supervised.values())
            for entry in entries:
                try:
                    ok = entry.alive()
                except Exception:  # noqa: BLE001 — a broken probe means dead
                    ok = False
                if ok:
                    continue
                if entry.restarts >= self._max_restarts:
                    self.events.append(f"gave-up:{entry.name}")
                    with self._lock:
                        self._supervised.pop(entry.name, None)
                    _log.warning("master giving up on %s", entry.name)
                    continue
                entry.restarts += 1
                self.events.append(f"restart:{entry.name}")
                _log.info("master restarting %s (attempt %d)", entry.name, entry.restarts)
                try:
                    entry.restart()
                except Exception as e:  # noqa: BLE001
                    _log.warning("restart of %s failed: %s", entry.name, e)

    def restart_counts(self) -> dict[str, int]:
        with self._lock:
            return {s.name: s.restarts for s in self._supervised.values()}

    def stop(self) -> None:
        self._stop.set()
        with self._lock:
            thread = self._thread
            self._thread = None
        if thread is not None:
            thread.join(timeout=5.0)
