"""condor_starter: spawns and supervises one job on an execution machine.

"This program is the entity that spawns the remote Condor job on a
given machine.  It sets up the execution environment and monitors the
job once it is running" (Section 4.1).  In the Parador pilot the starter
is the daemon that speaks TDP (Figure 6):

* **Step 1** — ``tdp_init`` (creating the per-job LASS context), then
  ``tdp_create_process(AP, paused)`` when ``+SuspendJobAtExec`` is set;
* **Step 2** — ``tdp_create_process(RT, run)`` for the tool daemon;
* **Step 3** — publish the application pid with ``tdp_put`` (unblocking
  the tool daemon's ``tdp_get``); keep servicing control requests;
* **Step 4** — the tool controls the application; the starter reports
  status to the shadow and, when the job completes, stages files out and
  tears the context down.
"""

from __future__ import annotations

import threading

from repro import errors
from repro.condor.submit import SubmitDescription
from repro.condor.tools import (
    ToolDaemonHandle,
    ToolLaunchContext,
    ToolRegistry,
    percent_names,
)
from repro.net.address import Endpoint
from repro.sim.host import SimHost
from repro.tdp.api import (
    tdp_create_process,
    tdp_exit,
    tdp_init,
    tdp_put,
    tdp_put_many,
)
from repro.tdp.handle import Role, TdpHandle
from repro.tdp.process import SimHostBackend
from repro.tdp.stdio import StdioRelay
from repro.tdp.wellknown import Attr, CreateMode
from repro.transport.base import Channel, Transport
from repro.util.log import TraceRecorder, get_logger
from repro.util.strings import join_arguments, split_arguments
from repro.util.threads import spawn

_log = get_logger("condor.starter")


class Starter:
    """One starter instance == one job execution on one machine."""

    def __init__(
        self,
        *,
        transport: Transport,
        host: SimHost,
        lass_endpoint: Endpoint,
        job_id: str,
        description: SubmitDescription,
        shadow_endpoint: Endpoint,
        stdio_endpoint: Endpoint | None,
        tool_registry: ToolRegistry,
        trace: TraceRecorder | None = None,
        proxy: Endpoint | None = None,
        extra_machines: list[dict] | None = None,
        submit_host: str | None = None,
        cass_endpoint: Endpoint | None = None,
    ):
        self._transport = transport
        self._host = host
        self._lass_endpoint = lass_endpoint
        self.job_id = job_id
        self._desc = description
        self._shadow_endpoint = shadow_endpoint
        self._stdio_endpoint = stdio_endpoint
        self._tools = tool_registry
        self._trace = trace
        self._proxy = proxy
        self._extra_machines = list(extra_machines or [])
        self._submit_host = submit_host
        self._cass_endpoint = cass_endpoint
        self._mpi_coordinator = None
        # Launch-sequenced publishes: the run thread writes each handle
        # exactly once during startup, and control methods (invoked via
        # the startd/shadow only after the job_started report) read
        # them; a pre-launch reader correctly sees None.
        # tdp-guard: _handle -> volatile
        self._handle: TdpHandle | None = None
        # tdp-guard: _tool_handle -> volatile
        self._tool_handle: ToolDaemonHandle | None = None
        # tdp-guard: _shadow_channel -> volatile
        self._shadow_channel: Channel | None = None
        self._relay: StdioRelay | None = None
        # tdp-guard: app_pid -> volatile
        # (written once when the application is created, before the
        # job_started report that makes control requests possible)
        self.app_pid: int | None = None
        self.exit_code: int | None = None
        self.failure: str | None = None
        self._done = threading.Event()
        self._thread = spawn(
            self._run_guarded, name=f"starter-{job_id}", start=False
        )

    def start(self) -> None:
        self._thread.start()

    def wait(self, timeout: float | None = None) -> None:
        if not self._done.wait(timeout):
            raise errors.GetTimeoutError(f"starter {self.job_id} still running")

    def _record(self, action: str, **details) -> None:
        if self._trace is not None:
            self._trace.record("starter", action, **details)

    # -- user-initiated suspension (condor_hold / condor_release) ----------

    def suspend_job(self) -> bool:
        """Pause the application on user request (RM-owned control).

        Section 2.3's coordination in the other direction: the RM pauses
        the process and the status change flows through the attribute
        space, so an attached tool sees a legitimate 'stopped' rather
        than suspecting a fault.
        """
        handle = self._handle
        if handle is None or handle.control is None or self.app_pid is None:
            return False
        try:
            handle.control.pause(self.app_pid)
        except errors.TdpError:
            return False
        self._record("job_suspended", pid=self.app_pid)
        self._report({"op": "job_suspended"})
        return True

    def resume_job(self) -> bool:
        handle = self._handle
        if handle is None or handle.control is None or self.app_pid is None:
            return False
        try:
            handle.control.continue_process(self.app_pid)
        except errors.InvalidProcessStateError:
            # Already running: an attached tool may have continued it in
            # the window (its continue requests are equally legitimate —
            # the coordination Section 2.3 asks for is that neither side
            # treats the other's action as an error).
            pass
        except errors.TdpError:
            return False
        self._record("job_resumed", pid=self.app_pid)
        self._report({"op": "job_resumed"})
        return True

    def attach_tool(self, cmd: str, args_template: str, output: str | None = None) -> bool:
        """Launch a run-time tool against the ALREADY-RUNNING application.

        Figure 3B through the batch system: "at a later time, a RT tool
        would like to attach to the application process … the RM might
        be notified that it must launch a RT to monitor the running
        application process" (Section 3.1).  The same pid handshake and
        attach/continue coordination apply; there is just no pre-main
        window.
        """
        handle = self._handle
        if handle is None or self.app_pid is None:
            return False
        if self._tool_handle is not None:
            return False  # one controlling tool at a time (ptrace rule)
        from repro.condor.submit import ToolDaemonSpec

        spec = ToolDaemonSpec(cmd=cmd, args_template=args_template, output=output)
        # Temporarily graft the spec so the launch path reads it.
        self._desc.tool_daemon = spec
        self._record("attach_tool", cmd=cmd, pid=self.app_pid)
        try:
            self._launch_tool_daemon(handle, self.app_pid)
        except errors.TdpError as e:
            self._record("attach_tool_failed", error=str(e))
            return False
        return True

    def kill_job(self) -> bool:
        """Terminate the application on user request (condor_rm)."""
        handle = self._handle
        if handle is None or handle.control is None or self.app_pid is None:
            return False
        try:
            handle.control.kill(self.app_pid)
        except errors.TdpError:
            return False
        self._record("job_killed", pid=self.app_pid)
        return True

    # -- main flow ----------------------------------------------------------

    def _run_guarded(self) -> None:
        try:
            self._run()
        except Exception as e:  # noqa: BLE001 — reported to the shadow
            self.failure = str(e)
            _log.warning("starter %s failed: %s", self.job_id, e)
            self._report({"op": "job_failed", "reason": str(e)})
        finally:
            self._cleanup()
            self._done.set()

    def _run(self) -> None:
        self._shadow_channel = self._transport.connect(
            self._host.name, self._shadow_endpoint
        )
        desc = self._desc

        # Step 1: initialize the TDP framework for this job's context —
        # with a session to the pool-global CASS when the RM runs one
        # (the "complete TDP framework" of Section 4.3, where global
        # attributes are managed too).
        self._record("tdp_init", context=self.job_id, host=self._host.name)
        cass_endpoint = self._cass_endpoint
        try:
            handle = tdp_init(
                self._transport,
                self._lass_endpoint,
                member=f"starter/{self.job_id}",
                role=Role.RM,
                context=self.job_id,
                backend=SimHostBackend(self._host),
                cass_endpoint=cass_endpoint,
            )
        except errors.TdpError:
            if cass_endpoint is None:
                raise
            # The CASS may be unreachable from a private node without a
            # pinhole; degrade to the LASS-only pilot configuration.
            handle = tdp_init(
                self._transport,
                self._lass_endpoint,
                member=f"starter/{self.job_id}",
                role=Role.RM,
                context=self.job_id,
                backend=SimHostBackend(self._host),
            )
        self._handle = handle
        assert handle.control is not None
        handle.control.serve_tool_requests()
        handle.start_service_loop()

        self._stage_in()

        if desc.universe == "mpi":
            self._run_mpi(handle)
            return

        monitored = desc.monitored
        mode = (
            CreateMode.PAUSED
            if (monitored and desc.suspend_job_at_exec)
            else CreateMode.RUN
        )

        # Create the application (paused for monitored jobs): Fig. 6 step 1.
        self._record(
            "tdp_create_process",
            target="AP",
            executable=desc.executable,
            mode=mode.value,
        )
        info = tdp_create_process(
            handle,
            desc.executable,
            desc.arguments,
            env=desc.environment,
            mode=mode,
        )
        self.app_pid = info.pid
        self._report({"op": "job_started", "pid": info.pid, "mode": mode.value})

        # Wire the job's stdio to the shadow's collector.
        proc = self._host.get_process(info.pid)
        if self._stdio_endpoint is not None:
            self._relay = StdioRelay(
                self._transport,
                self._host.name,
                self._stdio_endpoint,
                proxy=self._proxy,
                feed_stdin=proc.feed_stdin,
                close_stdin=proc.close_stdin,
            )
            proc.add_stdout_sink(self._relay.forward_stdout)

        if monitored:
            self._launch_tool_daemon(handle, info.pid)

        # Step 4: the job runs (under tool control when monitored); the
        # starter waits and reports its completion to the shadow.
        self.exit_code = handle.control.wait_exit(info.pid, timeout=None)
        self._record("job_exited", pid=info.pid, code=self.exit_code)
        self._report({"op": "job_exited", "code": self.exit_code})

    def _stage_in(self) -> None:
        """Transfer job + tool input files to this execution node.

        Implements the submit file's ``transfer_input_files`` (which in
        the pilot shipped the paradynd binary, Fig. 5B) and
        ``+ToolDaemonTransferInput`` — TDP's "tool daemon configuration
        … files transferred to the execution nodes".
        """
        if self._submit_host is None:
            return
        paths = list(self._desc.transfer_input_files)
        if self._desc.tool_daemon is not None:
            paths.extend(self._desc.tool_daemon.transfer_input)
        if not paths:
            return
        from repro.tdp.files import FileStager

        stager = FileStager(self._host.cluster)
        submit_fs = self._host.cluster.host(self._submit_host).filesystem
        present = [p for p in paths if p in submit_fs]
        if present:
            stager.stage_in(self._submit_host, self._host.name, present)
            self._record("stage_in", files=",".join(present))
        missing = sorted(set(paths) - set(present))
        if missing:
            # The pilot listed 'paradynd' even though our tools are not
            # files; absent inputs are logged, not fatal.
            self._record("stage_in_skipped", files=",".join(missing))

    def _stage_out(self) -> None:
        """Transfer declared outputs and tool trace files back.

        TDP: trace/summary files "must be transferred from the execution
        nodes after the application completes".
        """
        if self._submit_host is None:
            return
        patterns = list(self._desc.transfer_output_files)
        if self._desc.monitored:
            patterns.append(f"paradyn.{self.job_id}.trace")
            if self._desc.tool_daemon is not None and self._desc.tool_daemon.output:
                patterns.append(self._desc.tool_daemon.output)
        if not patterns:
            return
        from repro.tdp.files import FileStager

        stager = FileStager(self._host.cluster)
        exec_fs = self._host.filesystem
        globs = [p for p in patterns if any(ch in p for ch in "*?[")]
        literals = [p for p in patterns if p in exec_fs and p not in globs]
        try:
            records = stager.stage_out(
                self._host.name, self._submit_host, literals + globs
            )
        except errors.StagingError as e:
            self._record("stage_out_failed", error=str(e))
            return
        if records:
            self._record(
                "stage_out", files=",".join(r.path for r in records)
            )

    def _run_mpi(self, handle: TdpHandle) -> None:
        """The MPI universe (paper Section 4.3): master rank first, the
        remaining ranks on rank 0's mpi.init, one paradynd per rank."""
        from repro.condor.mpi_universe import (
            MpiUniverseCoordinator,
            machine_slots_from_wire,
        )

        desc = self._desc
        coordinator = MpiUniverseCoordinator(
            transport=self._transport,
            master_host=self._host,
            master_lass=self._lass_endpoint,
            job_id=self.job_id,
            description=desc,
            extra_machines=machine_slots_from_wire(self._extra_machines),
            tool_registry=self._tools,
            trace=self._trace,
        )
        self._mpi_coordinator = coordinator
        self._record("mpi_master_create", machines=desc.machine_count)
        pid = coordinator.start_master(handle)
        self.app_pid = pid
        self._report({"op": "job_started", "pid": pid, "mode": "mpi"})

        proc = self._host.get_process(pid)
        if self._stdio_endpoint is not None:
            self._relay = StdioRelay(
                self._transport,
                self._host.name,
                self._stdio_endpoint,
                proxy=self._proxy,
                feed_stdin=proc.feed_stdin,
                close_stdin=proc.close_stdin,
            )
            proc.add_stdout_sink(self._relay.forward_stdout)

        if desc.monitored:
            self._launch_tool_daemon(handle, pid)

        self.exit_code = coordinator.wait_all_exited(handle, timeout=None)
        self._record("job_exited", pid=pid, code=self.exit_code)
        self._report({"op": "job_exited", "code": self.exit_code})

    def _disseminate_global_attributes(self, handle: TdpHandle) -> None:
        """Copy pool-global attributes from the CASS into the job's LASS
        context.

        This implements the paper's stated completion of the pilot:
        "port arguments should be published by [the] Paradyn front-end
        and disseminated to remote sites as attribute values" (Section
        4.3).  The tool daemon then finds its front-end via
        ``tdp_get("rt.frontend")`` with no ports on its command line.
        """
        if handle.cass is None:
            return
        from repro.tdp.wellknown import Attr as A

        items: list[tuple[str, str]] = []
        for attribute in (A.RT_FRONTEND, A.RM_PROXY, A.STDIO_ENDPOINT):
            try:
                value = handle.cass.try_get(attribute)
            except errors.NoSuchAttributeError:
                continue
            except errors.TdpError:
                return
            items.append((attribute, value))
        if not items:
            return
        handle.attrs.put_many(items)
        for attribute, value in items:
            self._record("disseminate", attribute=attribute, value=value)

    def _launch_tool_daemon(self, handle: TdpHandle, app_pid: int) -> None:
        desc = self._desc
        tool = desc.tool_daemon
        assert tool is not None
        self._disseminate_global_attributes(handle)
        if self._proxy is not None:
            # Advertise the RM's existing proxy so the tool daemon can
            # cross the private network (Section 2.4: TDP "merely
            # leverages existing [proxies]" and names them to the tool).
            tdp_put(handle, Attr.RM_PROXY, str(self._proxy))
            self._record("tdp_put", attribute=Attr.RM_PROXY, value=str(self._proxy))

        # Step 2: create the tool daemon (not paused).
        self._record("tdp_create_process", target="RT", executable=tool.cmd, mode="run")
        launcher = self._tools.resolve(tool.cmd)
        sink = self._make_tool_output_sink(tool.output)
        context = ToolLaunchContext(
            transport=self._transport,
            host=self._host.name,
            lass_endpoint=self._lass_endpoint,
            context=self.job_id,
            args=split_arguments(tool.args_template),
            job_id=self.job_id,
            trace=self._trace,
            output_sink=sink,
            extras={"sim_host": self._host},
        )
        self._tool_handle = launcher(context)

        # Step 3: publish what the %names in ToolDaemonArgs requested —
        # always including the pid, the pilot's core handshake.
        requested = set(percent_names(tool.args_template)) | {"pid"}
        assert "pid" in requested
        self._record("tdp_put", attribute=Attr.PID, value=str(app_pid))
        # The pid and its standard companions (always published so any
        # tool can discover the application without extra %names) go out
        # as one batched frame: the tool daemon blocked on ``pid`` wakes
        # to find the whole launch record already in place.
        tdp_put_many(
            handle,
            [
                (Attr.PID, str(app_pid)),
                (Attr.EXECUTABLE_NAME, desc.executable),
                (Attr.APP_HOST, self._host.name),
                (Attr.APP_ARGS, join_arguments(desc.arguments)),
            ],
        )

    def _make_tool_output_sink(self, path: str | None):
        if path is None:
            return lambda line: None
        fs = self._host.filesystem
        lock = threading.Lock()

        def sink(line: str) -> None:
            with lock:
                fs[path] = fs.get(path, "") + line + "\n"

        return sink

    # -- reporting / teardown ----------------------------------------------------

    def _report(self, message: dict) -> None:
        if self._shadow_channel is None:
            return
        try:
            self._shadow_channel.send(message)
        except errors.TdpError:
            pass

    def _cleanup(self) -> None:
        if self._mpi_coordinator is not None:
            self._mpi_coordinator.cleanup()
        if self._tool_handle is not None:
            # Give the tool daemon a grace period to observe the job's
            # exit (final samples, trace file) before asking it to stop.
            try:
                self._tool_handle.join(timeout=5.0)
            except errors.ToolError:
                pass
            self._tool_handle.stop()
            try:
                self._tool_handle.join(timeout=10.0)
            except errors.ToolError:
                pass
        # Stage outputs only after the tool finished writing its traces.
        if self.failure is None:
            self._stage_out()
        if self._relay is not None:
            self._relay.close()
        if self._handle is not None:
            self._handle.stop_service_loop()
            self._record("tdp_exit", context=self.job_id)
            tdp_exit(self._handle)
        if self._shadow_channel is not None:
            self._shadow_channel.close()
