"""A ClassAd-like attribute/expression language for matchmaking.

Condor's matchmaking pairs *job ads* with *machine ads*: each ad is a
set of (name, expression) attributes, and two ads match when each ad's
``Requirements`` expression evaluates true in the context of the other
ad (``TARGET.x`` refers to the other ad, ``MY.x``/bare names to one's
own).  ``Rank`` orders acceptable matches.

This is a small, safe expression evaluator — comparison, boolean and
arithmetic operators over numbers/strings/booleans — built on Python's
``ast`` with a strict whitelist (no calls, no attribute access beyond
the MY/TARGET namespaces, no subscripts).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Any

from repro.errors import MatchmakingError

Value = Any  # int | float | str | bool | None


@dataclass
class ClassAd:
    """One advertisement: a named bag of attribute -> constant or expression.

    Values that are strings starting with ``=`` are treated as
    expressions (e.g. ``"=TARGET.Memory >= 512"``); everything else is a
    constant.  This keeps ad authoring compact in Python code.
    """

    kind: str  # "job" | "machine" | ...
    attrs: dict[str, Value] = field(default_factory=dict)

    def get(self, name: str, default: Value = None) -> Value:
        return self.attrs.get(name, default)

    def constant(self, name: str, other: "ClassAd | None" = None) -> Value:
        """Evaluate attribute ``name`` (expression or constant) to a value."""
        raw = self.attrs.get(name)
        if isinstance(raw, str) and raw.startswith("="):
            return evaluate(raw[1:], my=self, target=other)
        return raw

    def copy(self) -> "ClassAd":
        return ClassAd(kind=self.kind, attrs=dict(self.attrs))

    def __contains__(self, name: str) -> bool:
        return name in self.attrs


_ALLOWED_BINOPS = {
    ast.Add: lambda a, b: a + b,
    ast.Sub: lambda a, b: a - b,
    ast.Mult: lambda a, b: a * b,
    ast.Div: lambda a, b: a / b,
    ast.Mod: lambda a, b: a % b,
}

_ALLOWED_CMPOPS = {
    ast.Eq: lambda a, b: a == b,
    ast.NotEq: lambda a, b: a != b,
    ast.Lt: lambda a, b: a < b,
    ast.LtE: lambda a, b: a <= b,
    ast.Gt: lambda a, b: a > b,
    ast.GtE: lambda a, b: a >= b,
}


class _Evaluator(ast.NodeVisitor):
    def __init__(self, my: ClassAd | None, target: ClassAd | None):
        self.my = my
        self.target = target

    def _lookup(self, ad: ClassAd | None, name: str, scope: str) -> Value:
        if ad is None:
            raise MatchmakingError(f"no {scope} ad in scope for {scope}.{name}")
        value = ad.constant(name, other=self.target if scope == "MY" else self.my)
        return value

    def visit(self, node):  # noqa: D102 — dispatch with strict whitelist
        if isinstance(node, ast.Expression):
            return self.visit(node.body)
        if isinstance(node, ast.Constant):
            if isinstance(node.value, (int, float, str, bool)) or node.value is None:
                return node.value
            raise MatchmakingError(f"constant type not allowed: {node.value!r}")
        if isinstance(node, ast.Name):
            name = node.id
            if name in ("True", "False"):
                return name == "True"
            # Bare names resolve in MY scope (Condor semantics), falling
            # back to TARGET — mirroring classad attribute resolution.
            if self.my is not None and name in self.my:
                return self._lookup(self.my, name, "MY")
            if self.target is not None and name in self.target:
                return self._lookup(self.target, name, "TARGET")
            return None  # undefined attribute (classad UNDEFINED)
        if isinstance(node, ast.Attribute):
            if not isinstance(node.value, ast.Name):
                raise MatchmakingError("only MY.x / TARGET.x attribute access allowed")
            scope = node.value.id.upper()
            if scope == "MY":
                return self._lookup(self.my, node.attr, "MY")
            if scope == "TARGET":
                return self._lookup(self.target, node.attr, "TARGET")
            raise MatchmakingError(f"unknown scope {node.value.id!r}")
        if isinstance(node, ast.BoolOp):
            if isinstance(node.op, ast.And):
                result = True
                for v in node.values:
                    val = self.visit(v)
                    result = result and bool(val)
                    if not result:
                        return False
                return True
            if isinstance(node.op, ast.Or):
                for v in node.values:
                    if bool(self.visit(v)):
                        return True
                return False
        if isinstance(node, ast.UnaryOp):
            if isinstance(node.op, ast.Not):
                return not bool(self.visit(node.operand))
            if isinstance(node.op, ast.USub):
                return -self.visit(node.operand)
        if isinstance(node, ast.BinOp):
            op = _ALLOWED_BINOPS.get(type(node.op))
            if op is None:
                raise MatchmakingError(f"operator not allowed: {ast.dump(node.op)}")
            return op(self.visit(node.left), self.visit(node.right))
        if isinstance(node, ast.Compare):
            left = self.visit(node.left)
            for op_node, comparator in zip(node.ops, node.comparators):
                op = _ALLOWED_CMPOPS.get(type(op_node))
                if op is None:
                    raise MatchmakingError(f"comparison not allowed: {ast.dump(op_node)}")
                right = self.visit(comparator)
                try:
                    if left is None or right is None or not op(left, right):
                        return False
                except TypeError:
                    return False
                left = right
            return True
        raise MatchmakingError(f"expression construct not allowed: {ast.dump(node)}")


def evaluate(expression: str, *, my: ClassAd | None = None, target: ClassAd | None = None) -> Value:
    """Evaluate a ClassAd expression string in MY/TARGET context."""
    try:
        tree = ast.parse(expression, mode="eval")
    except SyntaxError as e:
        raise MatchmakingError(f"malformed expression {expression!r}: {e}") from e
    return _Evaluator(my, target).visit(tree)


def requirements_met(ad: ClassAd, other: ClassAd) -> bool:
    """Does ``ad``'s Requirements accept ``other``?  Absent => accept all."""
    requirements = ad.get("Requirements")
    if requirements is None:
        return True
    expr = requirements[1:] if isinstance(requirements, str) and requirements.startswith("=") else str(requirements)
    return bool(evaluate(expr, my=ad, target=other))


def matches(job: ClassAd, machine: ClassAd) -> bool:
    """Symmetric match: both Requirements accept the other ad."""
    return requirements_met(job, machine) and requirements_met(machine, job)


def rank(ad: ClassAd, other: ClassAd) -> float:
    """Evaluate ``ad``'s Rank against ``other``; absent/undefined => 0."""
    raw = ad.get("Rank")
    if raw is None:
        return 0.0
    expr = raw[1:] if isinstance(raw, str) and raw.startswith("=") else str(raw)
    value = evaluate(expr, my=ad, target=other)
    try:
        return float(value)
    except (TypeError, ValueError):
        return 0.0
