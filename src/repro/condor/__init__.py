"""Condor-like batch resource manager (the pilot's RM, paper Section 4.1).

The daemons and their responsibilities mirror Figure 4:

* :mod:`~repro.condor.schedd` — represents resource requests on the
  submit machine; queues jobs, reacts to matches, runs the claiming
  protocol, and spawns one shadow per running job.
* :mod:`~repro.condor.shadow` — submit-side agent of one job: the target
  of remote I/O (stdio) and the collector of results.
* :mod:`~repro.condor.matchmaker` — pairs job ads with machine ads.
* :mod:`~repro.condor.startd` — represents one execution machine; when
  claimed, spawns a starter.
* :mod:`~repro.condor.starter` — sets up the execution environment and
  spawns the job; in the Parador pilot this is the daemon that speaks
  TDP to launch the application paused plus the tool daemon.
* :mod:`~repro.condor.master` — keeps the other daemons running.
* :mod:`~repro.condor.classad` / :mod:`~repro.condor.submit` — the
  ClassAd attribute/expression language and the submit description
  files (including the ``+SuspendJobAtExec`` / ``+ToolDaemon*``
  extensions of Figure 5B).
* :mod:`~repro.condor.pool` — assembles everything on a SimCluster.
"""

from repro.condor.classad import ClassAd, evaluate, matches
from repro.condor.submit import SubmitDescription, parse_submit_file, ToolDaemonSpec
from repro.condor.pool import CondorPool
from repro.condor.universe import Universe

__all__ = [
    "ClassAd",
    "evaluate",
    "matches",
    "SubmitDescription",
    "parse_submit_file",
    "ToolDaemonSpec",
    "CondorPool",
    "Universe",
]
