"""Tool daemon registry: how the starter launches a run-time tool by name.

In the pilot, ``+ToolDaemonCmd = "paradynd"`` names an executable the
starter spawns with ``tdp_create_process`` (Figure 6, step 2).  Our tool
daemons are Python objects running on daemon threads, so the registry
maps the command name to a launcher; the starter still performs (and
traces) the TDP create call, preserving the protocol sequence.

The ``%name`` placeholders in ``+ToolDaemonArgs`` are the pilot's
"temporary mechanism to show which information the starter should put
into LASS and which information should paradynd get from there"
(Section 4.3): the starter *publishes* each named attribute and passes
the argument through *verbatim*; a tool that sees a ``%`` argument knows
it is running under TDP and fetches the value with ``tdp_get``.
"""

from __future__ import annotations

import re
import threading
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Callable

from repro.errors import ToolError
from repro.net.address import Endpoint
from repro.transport.base import Transport
from repro.util.log import TraceRecorder
from repro.util.threads import spawn

_PERCENT_RE = re.compile(r"%([A-Za-z_][A-Za-z0-9_]*)")


def percent_names(args_template: str) -> list[str]:
    """The attribute names a ToolDaemonArgs template asks the starter to
    publish (e.g. ``"-a%pid"`` -> ``["pid"]``)."""
    return _PERCENT_RE.findall(args_template)


@dataclass
class ToolLaunchContext:
    """Everything a tool daemon launcher receives from the starter."""

    transport: Transport
    host: str                     # execution host the daemon runs on
    lass_endpoint: Endpoint       # the LASS to tdp_init against
    context: str                  # attribute-space context for this job
    args: list[str]               # ToolDaemonArgs, %names passed verbatim
    job_id: str
    trace: TraceRecorder | None = None
    #: where the daemon's own stdout/stderr go (host-fs paths), per
    #: +ToolDaemonOutput / +ToolDaemonError
    output_sink: Callable[[str], None] = lambda line: None
    #: sim-only escape hatch for instrumentation engines
    extras: dict = field(default_factory=dict)


class ToolDaemonHandle(ABC):
    """A launched tool daemon, as seen by the starter."""

    @abstractmethod
    def join(self, timeout: float | None = None) -> None:
        """Wait for the daemon to finish its work."""

    @abstractmethod
    def stop(self) -> None:
        """Ask the daemon to shut down; idempotent."""

    @property
    @abstractmethod
    def failed(self) -> bool: ...


class ThreadToolHandle(ToolDaemonHandle):
    """Handle over a tool daemon running a ``run(stop_event)`` callable."""

    def __init__(self, name: str, run: Callable[[threading.Event], None]):
        self._stop_event = threading.Event()
        self._error: BaseException | None = None

        def runner() -> None:
            try:
                run(self._stop_event)
            except BaseException as e:  # noqa: BLE001 — recorded for the starter
                self._error = e

        self._thread = spawn(runner, name=name)

    def join(self, timeout: float | None = None) -> None:
        self._thread.join(timeout)
        if self._thread.is_alive():
            raise ToolError(f"tool daemon {self._thread.name} did not finish")

    def stop(self) -> None:
        self._stop_event.set()

    @property
    def failed(self) -> bool:
        return self._error is not None

    @property
    def error(self) -> BaseException | None:
        return self._error


ToolLauncher = Callable[[ToolLaunchContext], ToolDaemonHandle]


class ToolRegistry:
    """Command name -> launcher (the starter's PATH for tool daemons)."""

    def __init__(self) -> None:
        self._launchers: dict[str, ToolLauncher] = {}
        self._lock = threading.Lock()

    def register(self, name: str, launcher: ToolLauncher) -> None:
        with self._lock:
            if name in self._launchers:
                raise ValueError(f"tool {name!r} already registered")
            self._launchers[name] = launcher

    def resolve(self, name: str) -> ToolLauncher:
        with self._lock:
            launcher = self._launchers.get(name)
        if launcher is None:
            raise ToolError(f"no such tool daemon {name!r} (registered: "
                            f"{sorted(self._launchers)})")
        return launcher

    def names(self) -> list[str]:
        with self._lock:
            return sorted(self._launchers)
