"""condor_startd: represents one execution machine in the pool.

"The condor_startd runs on each machine … on which you wish to be able
to execute jobs.  When the condor_startd is ready to execute a Condor
job, it spawns the condor_starter" (Section 4.1).

The startd also starts the host's LASS at boot — the paper assigns LASS
startup to the RM ("The LASS's are started by the RM", Section 2.1) and
the startd is the RM's per-host presence.

Wire protocol (schedd -> startd):

* ``claim_request {claim_id, job_ad}`` — the claiming protocol; the
  startd re-verifies willingness and may refuse.
* ``activate_claim {claim_id, job, shadow, stdio}`` — spawn a starter.
* ``release_claim {claim_id}``
"""

from __future__ import annotations

import threading

from repro import errors
from repro.attrspace.server import AttributeSpaceServer, ServerRole
from repro.condor.classad import ClassAd, matches
from repro.condor.starter import Starter
from repro.condor.submit import SubmitDescription, ToolDaemonSpec
from repro.condor.tools import ToolRegistry
from repro.net.address import Endpoint, parse_endpoint
from repro.sim.host import SimHost
from repro.transport.base import Transport
from repro.util.log import TraceRecorder, get_logger
from repro.util.strings import split_arguments
from repro.util.sync import tracked_lock
from repro.util.threads import spawn

_log = get_logger("condor.startd")


def default_machine_ad(host: SimHost, *, memory: int = 1024, cpus: int = 1) -> ClassAd:
    """The machine ad a startd advertises (the resource offer)."""
    return ClassAd(
        kind="machine",
        attrs={
            "Name": host.name,
            "Machine": host.name,
            "Memory": memory,
            "Cpus": cpus,
            "Arch": "X86_64",
            "OpSys": "LINUX",
            "State": "Unclaimed",
        },
    )


class Startd:
    """One startd daemon on one simulated host."""

    def __init__(
        self,
        transport: Transport,
        host: SimHost,
        tool_registry: ToolRegistry,
        *,
        machine_ad: ClassAd | None = None,
        trace: TraceRecorder | None = None,
        proxy: Endpoint | None = None,
    ):
        self._transport = transport
        self.host = host
        self._tools = tool_registry
        self._trace = trace
        self._proxy = proxy
        self.ad = machine_ad if machine_ad is not None else default_machine_ad(host)
        # The RM starts the LASS on each execution host (Section 2.1).
        # It runs on the cluster's clock: blocking-get timeouts in a
        # scenario run fire on virtual time, not wall time.
        self.lass = AttributeSpaceServer(
            transport, host.name, role=ServerRole.LASS,
            name=f"lass@{host.name}", local_only=True,
            clock=host.cluster.clock,
        )
        self._listener = transport.listen(host.name)
        self._claims: dict[str, dict] = {}  # claim_id -> {"job_ad", "starter"}
        self._all_starters: list[Starter] = []  # history incl. released claims
        self._lock = tracked_lock("condor.startd.Startd._lock")
        # tdp-guard: _stopped -> volatile
        # (monotonic stop latch: set once by stop(), polled by the loop)
        self._stopped = False
        spawn(self._accept_loop, name=f"startd-{host.name}")

    @property
    def endpoint(self) -> Endpoint:
        return self._listener.endpoint

    def stop(self) -> None:
        self._stopped = True
        self._listener.close()
        self.lass.stop()

    def _record(self, action: str, **details) -> None:
        if self._trace is not None:
            self._trace.record(f"startd@{self.host.name}", action, **details)

    @property
    def claimed(self) -> bool:
        with self._lock:
            return bool(self._claims)

    def starters(self) -> list[Starter]:
        """Every starter this startd ever spawned (incl. finished jobs)."""
        with self._lock:
            return list(self._all_starters)

    # -- RPC server -------------------------------------------------------------

    def _accept_loop(self) -> None:
        while not self._stopped:
            try:
                channel = self._listener.accept()
            except errors.TdpError:
                return
            spawn(self._serve, args=(channel,), name=f"startd-conn-{self.host.name}")

    def _serve(self, channel) -> None:
        try:
            while True:
                request = channel.recv()
                op = request.get("op")
                if op == "claim_request":
                    channel.send(self._claim_request(request))
                elif op == "activate_claim":
                    channel.send(self._activate_claim(request))
                elif op == "release_claim":
                    channel.send(self._release_claim(request))
                elif op == "suspend_job":
                    channel.send(self._suspend_resume(request, suspend=True))
                elif op == "resume_job":
                    channel.send(self._suspend_resume(request, suspend=False))
                elif op == "kill_job":
                    channel.send(self._kill_job(request))
                elif op == "attach_tool":
                    channel.send(self._attach_tool(request))
                else:
                    channel.send({"ok": False, "error": f"unknown op {op!r}"})
        except errors.TdpError:
            pass
        finally:
            channel.close()

    # -- claiming protocol ---------------------------------------------------------

    def _claim_request(self, request: dict) -> dict:
        claim_id = str(request.get("claim_id"))
        job_ad = ClassAd(kind="job", attrs=dict(request.get("job_ad", {})))
        # "either party may decide not to complete the allocation": the
        # startd re-verifies the match before accepting.
        if not matches(job_ad, self.ad):
            self._record("claim_refused", claim=claim_id)
            return {"ok": False, "error": "requirements no longer satisfied"}
        with self._lock:
            if self._claims:
                self._record("claim_refused", claim=claim_id, reason="busy")
                return {"ok": False, "error": "machine already claimed"}
            self._claims[claim_id] = {"job_ad": job_ad, "starter": None}
        self.ad.attrs["State"] = "Claimed"
        self._record("claim_accepted", claim=claim_id, job=job_ad.get("JobId"))
        return {"ok": True}

    def _activate_claim(self, request: dict) -> dict:
        claim_id = str(request.get("claim_id"))
        with self._lock:
            claim = self._claims.get(claim_id)
        if claim is None:
            return {"ok": False, "error": f"no such claim {claim_id!r}"}
        try:
            description = _description_from_wire(dict(request.get("job", {})))
            shadow = parse_endpoint(str(request["shadow"]))
            stdio = (
                parse_endpoint(str(request["stdio"]))
                if request.get("stdio")
                else None
            )
        except (KeyError, errors.TdpError) as e:
            return {"ok": False, "error": f"malformed activation: {e}"}
        starter = Starter(
            transport=self._transport,
            host=self.host,
            lass_endpoint=self.lass.endpoint,
            job_id=str(request.get("job_id", claim_id)),
            description=description,
            shadow_endpoint=shadow,
            stdio_endpoint=stdio,
            tool_registry=self._tools,
            trace=self._trace,
            proxy=self._proxy,
            extra_machines=list(request.get("extra_machines", [])),
            submit_host=str(request.get("submit_host", "")) or None,
            cass_endpoint=(
                parse_endpoint(str(request["cass"]))
                if request.get("cass")
                else None
            ),
        )
        with self._lock:
            claim["starter"] = starter
            self._all_starters.append(starter)
        self._record("spawn_starter", claim=claim_id, job=request.get("job_id"))
        starter.start()
        return {"ok": True}

    def _suspend_resume(self, request: dict, *, suspend: bool) -> dict:
        claim_id = str(request.get("claim_id"))
        with self._lock:
            claim = self._claims.get(claim_id)
        starter = claim.get("starter") if claim else None
        if starter is None:
            return {"ok": False, "error": f"no active starter for {claim_id!r}"}
        ok = starter.suspend_job() if suspend else starter.resume_job()
        if not ok:
            return {"ok": False, "error": "job not in a controllable state"}
        return {"ok": True}

    def _attach_tool(self, request: dict) -> dict:
        claim_id = str(request.get("claim_id"))
        with self._lock:
            claim = self._claims.get(claim_id)
        starter = claim.get("starter") if claim else None
        if starter is None:
            return {"ok": False, "error": f"no active starter for {claim_id!r}"}
        ok = starter.attach_tool(
            str(request.get("cmd", "")),
            str(request.get("args", "")),
            request.get("output"),
        )
        if not ok:
            return {"ok": False, "error": "could not attach tool (already monitored?)"}
        return {"ok": True}

    def _kill_job(self, request: dict) -> dict:
        claim_id = str(request.get("claim_id"))
        with self._lock:
            claim = self._claims.get(claim_id)
        starter = claim.get("starter") if claim else None
        if starter is None:
            return {"ok": False, "error": f"no active starter for {claim_id!r}"}
        if not starter.kill_job():
            return {"ok": False, "error": "job not in a killable state"}
        return {"ok": True}

    def _release_claim(self, request: dict) -> dict:
        claim_id = str(request.get("claim_id"))
        with self._lock:
            self._claims.pop(claim_id, None)
            busy = bool(self._claims)
        if not busy:
            self.ad.attrs["State"] = "Unclaimed"
        self._record("claim_released", claim=claim_id)
        return {"ok": True}


def _description_from_wire(wire: dict) -> SubmitDescription:
    """Rebuild a SubmitDescription from its activation-message form."""
    tool = None
    if wire.get("tool_daemon"):
        t = wire["tool_daemon"]
        tool = ToolDaemonSpec(
            cmd=str(t["cmd"]),
            args_template=str(t.get("args_template", "")),
            output=t.get("output"),
            error=t.get("error"),
            input=t.get("input"),
            transfer_input=list(t.get("transfer_input", [])),
        )
    return SubmitDescription(
        universe=str(wire.get("universe", "vanilla")),
        executable=str(wire["executable"]),
        arguments=list(wire.get("arguments", [])),
        input=wire.get("input"),
        output=wire.get("output"),
        error=wire.get("error"),
        environment=dict(wire.get("environment", {})),
        machine_count=int(wire.get("machine_count", 1)),
        transfer_input_files=list(wire.get("transfer_input_files", [])),
        transfer_output_files=list(wire.get("transfer_output_files", [])),
        suspend_job_at_exec=bool(wire.get("suspend_job_at_exec", False)),
        tool_daemon=tool,
    )


def description_to_wire(desc: SubmitDescription) -> dict:
    """Serialize a SubmitDescription for the activation message."""
    wire: dict = {
        "universe": desc.universe,
        "executable": desc.executable,
        "arguments": desc.arguments,
        "input": desc.input,
        "output": desc.output,
        "error": desc.error,
        "environment": desc.environment,
        "machine_count": desc.machine_count,
        "transfer_input_files": desc.transfer_input_files,
        "transfer_output_files": desc.transfer_output_files,
        "suspend_job_at_exec": desc.suspend_job_at_exec,
    }
    if desc.tool_daemon is not None:
        t = desc.tool_daemon
        wire["tool_daemon"] = {
            "cmd": t.cmd,
            "args_template": t.args_template,
            "output": t.output,
            "error": t.error,
            "input": t.input,
            "transfer_input": t.transfer_input,
        }
    return wire
