"""The Condor MPI universe under TDP (paper Section 4.3).

The paper's flow, reproduced step by step:

1. The job "does not start until a suitable number of machines are
   allocated by Condor" — the schedd claims ``machine_count`` machines
   and activates the first; its starter becomes the *master starter*.
2. "A first process (called 'master process') is started.  In MPI
   terminology, this process has rank 0.  A paradynd is created
   afterwards, information is exchanged between starter and paradynd
   using the LASS, paradynd attaches to the process" — the vanilla
   create-paused handshake, applied to rank 0.
3. "Once the user issues the run command, the rest of the processes …
   are created with a paradynd attached to each one of them.  Processes
   are created and stopped, paradynds attach to them and, after
   reporting to the front-end, they immediately issue a run command" —
   rank 0's ``mpi.init`` (it only happens once the user ran it) triggers
   the coordinator, which creates each remaining rank paused on its
   claimed machine, stands up the per-host RM presence, launches a
   paradynd per rank (``auto_run`` — they immediately continue), and
   the job completes when every rank has exited.

Simplification (documented): worker-rank creation is performed by this
coordinator using the claimed machines' hosts and LASSes directly,
standing in for the per-machine starters that real Condor would run;
every protocol step they would perform (per-host LASS context, RM-side
control service, pid publication, paradynd handshake) is preserved.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

from repro import errors
from repro.condor.submit import SubmitDescription
from repro.condor.tools import ToolRegistry
from repro.mpisim.runtime import MpiRuntime, RankInfo
from repro.net.address import Endpoint, parse_endpoint
from repro.sim.host import SimHost
from repro.tdp.api import (
    tdp_create_process,
    tdp_exit,
    tdp_init,
    tdp_put_many,
)
from repro.tdp.handle import Role, TdpHandle
from repro.tdp.process import SimHostBackend
from repro.tdp.wellknown import Attr, CreateMode
from repro.transport.base import Transport
from repro.util.log import TraceRecorder
from repro.util.strings import join_arguments, split_arguments
from repro.util.threads import spawn


@dataclass
class MachineSlot:
    """One claimed machine: where a rank will run."""

    hostname: str
    lass_endpoint: Endpoint


class MpiUniverseCoordinator:
    """Runs one MPI-universe job from the master starter's position."""

    def __init__(
        self,
        *,
        transport: Transport,
        master_host: SimHost,
        master_lass: Endpoint,
        job_id: str,
        description: SubmitDescription,
        extra_machines: list[MachineSlot],
        tool_registry: ToolRegistry,
        trace: TraceRecorder | None = None,
    ):
        self._transport = transport
        self._master_host = master_host
        self._master_lass = master_lass
        self.job_id = job_id
        self._desc = description
        self._machines = [
            MachineSlot(master_host.name, master_lass),
            *extra_machines,
        ]
        self._tools = tool_registry
        self._trace = trace
        self.size = description.machine_count
        if len(self._machines) < self.size:
            raise errors.UniverseError(
                f"MPI job needs {self.size} machines, got {len(self._machines)}"
            )
        self._cluster = master_host.cluster
        self._runtime = MpiRuntime.ensure(self._cluster)
        self._rank_handles: dict[int, TdpHandle] = {}
        self._rank_pids: dict[int, tuple[str, int]] = {}  # rank -> (host, pid)
        self._tool_handles: list = []
        self._lock = threading.Lock()
        self._workers_started = threading.Event()
        # tdp-guard: master_pid -> volatile
        # (written once when the master rank is created, before the
        # launch report that makes control requests possible)
        self.master_pid: int | None = None

    def _record(self, action: str, **details) -> None:
        if self._trace is not None:
            self._trace.record(f"mpi-coord/{self.job_id}", action, **details)

    # -- environment ------------------------------------------------------------

    def _rank_env(self, rank: int) -> dict[str, str]:
        return {
            **self._desc.environment,
            "MPI_JOB": self.job_id,
            "MPI_RANK": str(rank),
            "MPI_SIZE": str(self.size),
        }

    # -- the flow -----------------------------------------------------------------

    def start_master(self, master_handle: TdpHandle) -> int:
        """Create rank 0 (paused when monitored) under the starter's handle.

        Returns rank 0's pid.  Worker creation is armed on rank 0's
        ``mpi.init``; the starter then launches rank 0's paradynd and
        publishes the pid exactly as in the vanilla path.
        """
        self._runtime.create_job(self.job_id, self.size)
        self._runtime.on_master_init(self.job_id, self._on_master_running)
        mode = (
            CreateMode.PAUSED
            if (self._desc.monitored and self._desc.suspend_job_at_exec)
            else CreateMode.RUN
        )
        self._record("create_master", rank=0, mode=mode.value)
        info = tdp_create_process(
            master_handle,
            self._desc.executable,
            self._desc.arguments,
            env=self._rank_env(0),
            mode=mode,
        )
        self.master_pid = info.pid
        with self._lock:
            self._rank_pids[0] = (self._master_host.name, info.pid)
        return info.pid

    def _on_master_running(self, master: RankInfo) -> None:
        """Rank 0 reached mpi.init: create the remaining ranks.

        Runs on the scheduler thread (service-hook context), so the
        actual work is handed to a coordinator thread — creating paused
        processes and doing TDP handshakes must not block the scheduler.
        """
        self._record("master_running", pid=master.pid)
        spawn(self._start_workers, name=f"mpi-workers-{self.job_id}")

    def _start_workers(self) -> None:
        try:
            for rank in range(1, self.size):
                self._start_one_worker(rank)
        finally:
            self._workers_started.set()

    def _start_one_worker(self, rank: int) -> None:
        slot = self._machines[rank]
        host = self._cluster.host(slot.hostname)
        context = f"{self.job_id}.r{rank}"
        # The per-machine RM presence (the starter that machine's startd
        # would have spawned).
        self._record("tdp_init", rank=rank, host=slot.hostname, context=context)
        handle = tdp_init(
            self._transport,
            slot.lass_endpoint,
            member=f"starter/{context}",
            role=Role.RM,
            context=context,
            backend=SimHostBackend(host),
        )
        assert handle.control is not None
        handle.control.serve_tool_requests()
        handle.start_service_loop()
        with self._lock:
            self._rank_handles[rank] = handle

        monitored = self._desc.monitored
        mode = CreateMode.PAUSED if monitored else CreateMode.RUN
        self._record(
            "tdp_create_process", target=f"AP.r{rank}", mode=mode.value,
            host=slot.hostname,
        )
        info = tdp_create_process(
            handle,
            self._desc.executable,
            self._desc.arguments,
            env=self._rank_env(rank),
            mode=mode,
        )
        with self._lock:
            self._rank_pids[rank] = (slot.hostname, info.pid)

        if monitored:
            tool = self._desc.tool_daemon
            assert tool is not None
            from repro.condor.tools import ToolLaunchContext

            self._record("tdp_create_process", target=f"RT.r{rank}", mode="run")
            launcher = self._tools.resolve(tool.cmd)
            ctx = ToolLaunchContext(
                transport=self._transport,
                host=slot.hostname,
                lass_endpoint=slot.lass_endpoint,
                context=context,
                args=split_arguments(tool.args_template),
                job_id=context,
                trace=self._trace,
                # Worker-rank tools run immediately after attach — the
                # paper's "they immediately issue a run command".
                extras={"sim_host": host, "force_auto_run": True},
            )
            tool_handle = launcher(ctx)
            with self._lock:
                self._tool_handles.append(tool_handle)
            self._record("tdp_put", rank=rank, attribute=Attr.PID, value=str(info.pid))
            # One batched frame per rank: pid plus its standard
            # companions land atomically before this rank's paradynd,
            # blocked on ``pid``, is woken.
            tdp_put_many(
                handle,
                [
                    (Attr.PID, str(info.pid)),
                    (Attr.EXECUTABLE_NAME, self._desc.executable),
                    (Attr.APP_HOST, slot.hostname),
                    (Attr.APP_ARGS, join_arguments(self._desc.arguments)),
                ],
            )
            # paradynd will attach and (auto_run) immediately continue —
            # "they immediately issue a run command".

    # -- completion -----------------------------------------------------------------

    def wait_all_exited(self, master_handle: TdpHandle, timeout: float | None = None) -> int:
        """Wait for every rank; returns 0 if all clean, else first nonzero."""
        assert master_handle.control is not None
        assert self.master_pid is not None
        codes = [master_handle.control.wait_exit(self.master_pid, timeout=timeout)]
        # Workers exist only if the master ever ran; after its exit the
        # worker-creation thread has either run or never will.
        if self._workers_started.wait(timeout=10.0):
            with self._lock:
                workers = [
                    (rank, self._rank_handles[rank], self._rank_pids[rank][1])
                    for rank in sorted(self._rank_handles)
                ]
            for _rank, handle, pid in workers:
                assert handle.control is not None
                codes.append(handle.control.wait_exit(pid, timeout=timeout))
        self._record("all_ranks_exited", codes=",".join(map(str, codes)))
        return next((c for c in codes if c != 0), 0)

    def cleanup(self) -> None:
        for tool_handle in self._tool_handles:
            try:
                tool_handle.join(timeout=5.0)
            except errors.ToolError:
                pass
            tool_handle.stop()
        with self._lock:
            handles = list(self._rank_handles.values())
            self._rank_handles.clear()
        for handle in handles:
            handle.stop_service_loop()
            tdp_exit(handle)


def machine_slots_from_wire(extra_machines: list[dict]) -> list[MachineSlot]:
    """Decode the activation message's extra machine list."""
    slots = []
    for entry in extra_machines:
        lass = str(entry.get("lass", ""))
        if not lass:
            raise errors.UniverseError(
                f"claimed machine {entry.get('machine')!r} has no LASS endpoint"
            )
        slots.append(
            MachineSlot(
                hostname=str(entry["machine"]),
                lass_endpoint=parse_endpoint(lass),
            )
        )
    return slots
