"""Condor submit description files — including the Parador extensions.

The grammar is the classic ``key = value`` per line, ``#`` comments,
``queue [N]`` to enqueue, and Condor's ``+Attribute`` prefix for ad
extensions.  The pilot's new entries (paper Figure 5B) are:

* ``+SuspendJobAtExec = True`` — create the application but stop it
  before it starts executing;
* ``+ToolDaemonCmd / +ToolDaemonArgs / +ToolDaemonOutput /
  +ToolDaemonError / +ToolDaemonInput`` — "equivalent to the description
  of a regular job" for the tool daemon the starter must co-launch.

``%pid``-style placeholders in ``ToolDaemonArgs`` are expanded by the
starter at launch time from LASS-published values (Section 4.3's
"temporary mechanism", kept because it documents the data flow).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import SubmitError
from repro.util.strings import split_arguments


#: submit keys we understand; unknown keys raise (catches typos loudly)
_KNOWN_KEYS = {
    "universe",
    "executable",
    "arguments",
    "input",
    "output",
    "error",
    "environment",
    "requirements",
    "rank",
    "machine_count",
    "transfer_files",
    "transfer_input_files",
    "should_transfer_files",
    "transfer_output_files",
    "notification",
    "log",
    "priority",
    # Figure 5B of the paper contains the literal line
    # "tranfer_input_files = paradynd" (sic, missing the 's'); we accept
    # the misspelling as an alias so the verbatim figure parses.
    "tranfer_input_files",
}

_TOOL_KEYS = {
    "suspendjobatexec",
    "tooldaemoncmd",
    "tooldaemonargs",
    "tooldaemonoutput",
    "tooldaemonerror",
    "tooldaemoninput",
    "tooldaemontransferinput",
}


@dataclass
class ToolDaemonSpec:
    """Everything needed to launch the run-time tool daemon (Fig. 5A/B)."""

    cmd: str
    args_template: str = ""
    output: str | None = None
    error: str | None = None
    input: str | None = None
    transfer_input: list[str] = field(default_factory=list)


@dataclass
class SubmitDescription:
    """One parsed job (one ``queue`` statement's worth)."""

    universe: str = "vanilla"
    executable: str = ""
    arguments: list[str] = field(default_factory=list)
    input: str | None = None
    output: str | None = None
    error: str | None = None
    environment: dict[str, str] = field(default_factory=dict)
    requirements: str | None = None
    rank: str | None = None
    machine_count: int = 1
    transfer_input_files: list[str] = field(default_factory=list)
    transfer_output_files: list[str] = field(default_factory=list)
    count: int = 1  # queue N

    # Parador extensions
    suspend_job_at_exec: bool = False
    tool_daemon: ToolDaemonSpec | None = None

    def validate(self) -> "SubmitDescription":
        if not self.executable:
            raise SubmitError("submit file missing 'executable'")
        if self.machine_count < 1:
            raise SubmitError(f"machine_count must be >= 1, got {self.machine_count}")
        if self.universe not in ("vanilla", "mpi"):
            raise SubmitError(f"unsupported universe {self.universe!r}")
        if self.universe == "mpi" and self.machine_count < 1:
            raise SubmitError("mpi universe requires machine_count")
        if self.tool_daemon is not None and not self.tool_daemon.cmd:
            raise SubmitError("+ToolDaemonCmd must not be empty")
        if self.suspend_job_at_exec and self.tool_daemon is None:
            # Legal but useless: nothing will ever continue the job.
            raise SubmitError(
                "+SuspendJobAtExec without +ToolDaemonCmd would hang the job"
            )
        return self

    @property
    def monitored(self) -> bool:
        """Is this a Parador-style monitored job?"""
        return self.tool_daemon is not None


def _parse_bool(raw: str, key: str) -> bool:
    lowered = raw.strip().lower()
    if lowered in ("true", "1", "yes"):
        return True
    if lowered in ("false", "0", "no"):
        return False
    raise SubmitError(f"{key}: expected boolean, got {raw!r}")


def _strip_quotes(raw: str) -> str:
    raw = raw.strip()
    if len(raw) >= 2 and raw[0] == raw[-1] and raw[0] in "\"'":
        return raw[1:-1]
    return raw


def parse_submit_file(text: str) -> list[SubmitDescription]:
    """Parse a submit description file into one job per ``queue``.

    Keys accumulate until a ``queue`` line snapshot-commits them, as in
    Condor; later sections inherit earlier keys unless overridden.
    """
    jobs: list[SubmitDescription] = []
    state: dict[str, str] = {}
    tool_state: dict[str, str] = {}

    def commit(count: int) -> None:
        desc = SubmitDescription(count=count)
        for key, raw in state.items():
            value = _strip_quotes(raw)
            if key == "universe":
                desc.universe = value.lower()
            elif key == "executable":
                desc.executable = value
            elif key == "arguments":
                desc.arguments = split_arguments(value)
            elif key == "input":
                desc.input = value
            elif key == "output":
                desc.output = value
            elif key == "error":
                desc.error = value
            elif key == "environment":
                for pair in value.split(";"):
                    if not pair.strip():
                        continue
                    if "=" not in pair:
                        raise SubmitError(f"bad environment entry {pair!r}")
                    k, _, v = pair.partition("=")
                    desc.environment[k.strip()] = v.strip()
            elif key == "requirements":
                desc.requirements = value
            elif key == "rank":
                desc.rank = value
            elif key == "machine_count":
                try:
                    desc.machine_count = int(value)
                except ValueError:
                    raise SubmitError(f"machine_count: not an int: {value!r}") from None
            elif key in ("transfer_input_files", "tranfer_input_files"):
                desc.transfer_input_files = [
                    p.strip() for p in value.split(",") if p.strip()
                ]
            elif key == "transfer_output_files":
                desc.transfer_output_files = [
                    p.strip() for p in value.split(",") if p.strip()
                ]
            # transfer_files / should_transfer_files / notification / log /
            # priority are accepted and ignored (no-ops in the simulation).
        if "suspendjobatexec" in tool_state:
            desc.suspend_job_at_exec = _parse_bool(
                tool_state["suspendjobatexec"], "+SuspendJobAtExec"
            )
        if "tooldaemoncmd" in tool_state:
            desc.tool_daemon = ToolDaemonSpec(
                cmd=_strip_quotes(tool_state["tooldaemoncmd"]),
                args_template=_strip_quotes(tool_state.get("tooldaemonargs", "")),
                output=_strip_quotes(tool_state["tooldaemonoutput"])
                if "tooldaemonoutput" in tool_state
                else None,
                error=_strip_quotes(tool_state["tooldaemonerror"])
                if "tooldaemonerror" in tool_state
                else None,
                input=_strip_quotes(tool_state["tooldaemoninput"])
                if "tooldaemoninput" in tool_state
                else None,
                transfer_input=[
                    p.strip()
                    for p in _strip_quotes(
                        tool_state.get("tooldaemontransferinput", "")
                    ).split(",")
                    if p.strip()
                ],
            )
        jobs.append(desc.validate())

    for lineno, raw_line in enumerate(text.splitlines(), start=1):
        line = raw_line.strip()
        if not line or line.startswith("#"):
            continue
        if line.lower().startswith("queue"):
            rest = line[5:].strip()
            count = 1
            if rest:
                try:
                    count = int(rest)
                except ValueError:
                    raise SubmitError(f"line {lineno}: bad queue count {rest!r}") from None
                if count < 1:
                    raise SubmitError(f"line {lineno}: queue count must be >= 1")
            commit(count)
            continue
        if "=" not in line:
            raise SubmitError(f"line {lineno}: expected key = value, got {line!r}")
        key, _, value = line.partition("=")
        key = key.strip()
        value = value.strip()
        if key.startswith("+"):
            tool_key = key[1:].lower()
            if tool_key not in _TOOL_KEYS and tool_key != "suspendjobatexec":
                raise SubmitError(f"line {lineno}: unknown extension attribute {key!r}")
            tool_state[tool_key] = value
        else:
            norm = key.lower()
            if norm not in _KNOWN_KEYS:
                raise SubmitError(f"line {lineno}: unknown submit key {key!r}")
            state[norm] = value

    if not jobs:
        raise SubmitError("submit file has no 'queue' statement")
    return jobs


#: The exact submit file of paper Figure 5B (adapted executable/host names
#: are preserved verbatim; used by tests and the FIG5 bench).
FIG5B_SUBMIT_FILE = """\
universe = Vanilla
executable = foo
input = infile
output = outfile
arguments = 1 2 3
transfer_files = always
+SuspendJobAtExec = True
+ToolDaemonCmd = "paradynd"
+ToolDaemonArgs = "-zunix -l3 -mpinguino.cs.wisc.edu -p2090 -P2091 -a%pid"
+ToolDaemonOutput = "daemon.out"
+ToolDaemonError = "daemon.err"
tranfer_input_files = paradynd
queue
"""
