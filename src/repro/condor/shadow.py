"""condor_shadow: the submit-side agent of one running job.

"This program runs on the machine where a given request was submitted
and acts as the resource manager for the request.  … Any system call
performed on the remote execute machine is sent over the network to the
condor_shadow which actually performs the system call (such as file
I/O) on the submit machine" (Section 4.1).

Our shadow performs the two remote services the scenarios exercise:

* **job stdio** — it owns a :class:`StdioCollector`; output lines arrive
  over the network and the shadow writes them into the submit host's
  filesystem at the submit file's ``output`` path (remote file I/O);
* **status reporting** — the starter reports started/exited/failed over
  a dedicated channel, and the shadow updates the job record.
"""

from __future__ import annotations

from repro import errors
from repro.condor.job import JobRecord, JobStatus
from repro.net.address import Endpoint
from repro.tdp.stdio import StdioCollector
from repro.transport.base import Transport
from repro.util.log import TraceRecorder, get_logger
from repro.util.sync import tracked_lock
from repro.util.threads import spawn

_log = get_logger("condor.shadow")


class Shadow:
    """One shadow per running job, on the submit host."""

    def __init__(
        self,
        transport: Transport,
        submit_host: str,
        record: JobRecord,
        *,
        submit_fs: dict[str, str] | None = None,
        trace: TraceRecorder | None = None,
    ):
        self._transport = transport
        self.submit_host = submit_host
        self.record = record
        self._submit_fs = submit_fs if submit_fs is not None else {}
        self._trace = trace
        self._listener = transport.listen(submit_host)
        self.stdio = StdioCollector(transport, submit_host)
        self._stdout_pump = spawn(
            self._pump_stdout, name=f"shadow-stdout-{record.job_id}"
        )
        # stop() can race between the schedd's remove path and normal
        # job teardown; the flag flip must be atomic so the listener and
        # collector are closed exactly once.
        self._lock = tracked_lock("condor.shadow.Shadow._lock")
        self._stopped = False
        spawn(self._serve_starter, name=f"shadow-{record.job_id}")

    @property
    def endpoint(self) -> Endpoint:
        """Where the starter reports job status."""
        return self._listener.endpoint

    @property
    def stdio_endpoint(self) -> Endpoint:
        return self.stdio.endpoint

    def _record_event(self, action: str, **details) -> None:
        if self._trace is not None:
            self._trace.record("shadow", action, **details)

    def _pump_stdout(self) -> None:
        """Perform the 'remote system call': write job output locally."""
        output_path = self.record.description.output
        while True:
            try:
                line = self.stdio.wait_line(timeout=None)
            except errors.TdpError:
                return
            self.record.stdout_lines.append(line)
            if output_path:
                existing = self._submit_fs.get(output_path, "")
                self._submit_fs[output_path] = existing + line + "\n"

    def _serve_starter(self) -> None:
        try:
            channel = self._listener.accept()
        except errors.TdpError:
            return
        self._record_event("starter_connected", peer=channel.remote_host)
        try:
            while True:
                message = channel.recv()
                op = message.get("op")
                if op == "job_started":
                    self.record.app_pid = int(message.get("pid", -1))
                    self.record.set_status(JobStatus.RUNNING)
                    self._record_event("job_started", pid=self.record.app_pid)
                elif op == "job_exited":
                    code = int(message.get("code", -1))
                    self._record_event("job_exited", code=code)
                    final = (
                        JobStatus.REMOVED
                        if self.record.removal_requested
                        else JobStatus.COMPLETED
                    )
                    self.record.set_status(final, exit_code=code)
                elif op == "job_suspended":
                    self._record_event("job_suspended")
                elif op == "job_resumed":
                    self._record_event("job_resumed")
                elif op == "job_failed":
                    reason = str(message.get("reason", "unknown"))
                    self._record_event("job_failed", reason=reason)
                    self.record.set_status(JobStatus.FAILED, failure_reason=reason)
        except errors.TdpError:
            pass

    def stop(self) -> None:
        with self._lock:
            if self._stopped:
                return
            self._stopped = True
        self._listener.close()
        self.stdio.close()
