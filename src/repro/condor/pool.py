"""CondorPool: assemble a whole pool on a simulated cluster.

One call builds the Figure 4 world: a matchmaker and schedd on the
submit host, a startd (with its LASS) on every execution host, and a
master supervising them.  The pool owns the trace recorder that the
figure-regeneration benches read.
"""

from __future__ import annotations

from repro.condor.job import JobRecord
from repro.condor.master import Master
from repro.condor.matchmaker import Matchmaker
from repro.condor.schedd import Schedd
from repro.condor.startd import Startd
from repro.condor.submit import SubmitDescription
from repro.condor.tools import ToolRegistry
from repro.net.address import Endpoint
from repro.sim.cluster import SimCluster
from repro.util.log import TraceRecorder


class CondorPool:
    """A running pool over one :class:`SimCluster`.

    >>> with SimCluster.flat(["submit", "node1"]) as cluster:
    ...     pool = CondorPool(cluster, submit_host="submit",
    ...                       execute_hosts=["node1"])
    ...     job = pool.submit_description(desc)
    ...     job.wait_terminal(timeout=30)
    ...     pool.stop()
    """

    def __init__(
        self,
        cluster: SimCluster,
        *,
        submit_host: str,
        execute_hosts: list[str],
        tool_registry: ToolRegistry | None = None,
        trace: TraceRecorder | None = None,
        proxy: Endpoint | None = None,
        supervise: bool = False,
    ):
        self.cluster = cluster
        self.submit_host = submit_host
        # Default to the cluster's virtual clock so pool traces carry
        # simulated timestamps (wall time would mis-order against vtime).
        self.trace = (
            trace if trace is not None else TraceRecorder(clock=cluster.clock)
        )
        self.tools = tool_registry if tool_registry is not None else ToolRegistry()
        self.matchmaker = Matchmaker(
            cluster.transport, submit_host, trace=self.trace
        )
        self.schedd = Schedd(
            cluster.transport,
            submit_host,
            self.matchmaker.endpoint,
            submit_fs=cluster.host(submit_host).filesystem,
            trace=self.trace,
        )
        self.startds: dict[str, Startd] = {}
        for hostname in execute_hosts:
            startd = Startd(
                cluster.transport,
                cluster.host(hostname),
                self.tools,
                trace=self.trace,
                proxy=proxy,
            )
            self.startds[hostname] = startd
            self._advertise(startd)
        self.master = Master() if supervise else None
        if self.master is not None:
            for hostname, startd in self.startds.items():
                self._supervise_startd(hostname, startd)

    def _advertise(self, startd: Startd) -> None:
        channel = self.cluster.transport.connect(
            startd.host.name, self.matchmaker.endpoint, timeout=10.0
        )
        try:
            reply = channel.request(
                {
                    "op": "advertise_machine",
                    "ad": startd.ad.attrs,
                    "startd": str(startd.endpoint),
                    "lass": str(startd.lass.endpoint),
                },
                timeout=10.0,
            )
            assert reply.get("ok"), reply
        finally:
            channel.close()

    def _supervise_startd(self, hostname: str, startd: Startd) -> None:
        assert self.master is not None

        def restart() -> None:
            old = self.startds[hostname]
            old.stop()
            fresh = Startd(
                self.cluster.transport,
                self.cluster.host(hostname),
                self.tools,
                trace=self.trace,
            )
            self.startds[hostname] = fresh
            self._advertise(fresh)
            self._supervise_startd(hostname, fresh)

        self.master.supervise(
            f"startd@{hostname}",
            alive=lambda: not self.startds[hostname]._stopped,
            restart=restart,
        )

    # -- submission --------------------------------------------------------------

    def submit_description(self, description: SubmitDescription) -> JobRecord:
        return self.schedd.submit(description)

    def submit_file(self, text: str) -> list[JobRecord]:
        return self.schedd.submit_file(text)

    # -- teardown -----------------------------------------------------------------

    def stop(self) -> None:
        if self.master is not None:
            self.master.stop()
        self.schedd.stop()
        for startd in self.startds.values():
            startd.stop()
        self.matchmaker.stop()

    def __enter__(self) -> "CondorPool":
        return self

    def __exit__(self, *exc) -> None:
        self.stop()
