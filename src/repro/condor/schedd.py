"""condor_schedd: the submit-side job queue and claim orchestrator.

"Any submit machine needs to have a condor_schedd running.  Basically,
condor_schedd takes care of the job until a suitable and available
resource is found for the job.  The condor_schedd spawns a
condor_shadow daemon to serve that particular request" (Section 4.1).

Flow per job (the Figure 4 interaction the FIG4 bench traces):

1. ``submit`` queues the job (status IDLE) and wakes the negotiation
   thread;
2. the schedd sends the job ad to the **matchmaker** and receives
   machine matches;
3. it runs the **claiming protocol** against each matched startd (which
   may refuse — then the reservation is released and the job retried);
4. it spawns a **shadow** and sends the startd an activation message
   naming the shadow and stdio endpoints;
5. the shadow tracks the job to completion.
"""

from __future__ import annotations

from repro import errors
from repro.attrspace.server import AttributeSpaceServer, ServerRole
from repro.condor.job import JobId, JobRecord, JobStatus, job_ad
from repro.condor.shadow import Shadow
from repro.condor.startd import description_to_wire
from repro.condor.submit import SubmitDescription, parse_submit_file
from repro.net.address import Endpoint, parse_endpoint
from repro.transport.base import Transport
from repro.util.clock import Clock, WallClock
from repro.util.ids import IdAllocator, fresh_token
from repro.util.log import TraceRecorder, get_logger
from repro.util.sync import tracked_condition
from repro.util.threads import spawn

_log = get_logger("condor.schedd")


class Schedd:
    """The submit-machine queue daemon."""

    #: how long to wait before retrying a job that found no match
    RETRY_INTERVAL = 0.05
    #: attempts before a job is marked FAILED
    MAX_ATTEMPTS = 20

    def __init__(
        self,
        transport: Transport,
        submit_host: str,
        matchmaker_endpoint: Endpoint,
        *,
        submit_fs: dict[str, str] | None = None,
        trace: TraceRecorder | None = None,
        start_cass: bool = True,
        clock: Clock | None = None,
    ):
        self._transport = transport
        self.submit_host = submit_host
        self._matchmaker_endpoint = matchmaker_endpoint
        #: timebase for retry/requeue timers and the CASS's blocking-get
        #: timeouts; wall clock unless a scenario injects its own.
        self._clock = clock if clock is not None else WallClock()
        # "There is also a central attribute space server (CASS) process
        # on the host running the tool front-end", started by the RM
        # front-end (paper Section 2.1) — which is this daemon.
        self.cass: AttributeSpaceServer | None = (
            AttributeSpaceServer(
                transport, submit_host, role=ServerRole.CASS,
                name=f"cass@{submit_host}", clock=self._clock,
            )
            if start_cass
            else None
        )
        self._submit_fs = submit_fs if submit_fs is not None else {}
        self._trace = trace
        self._clusters = IdAllocator()
        self._jobs: dict[str, JobRecord] = {}
        self._shadows: dict[str, Shadow] = {}
        # job_id -> [(machine, startd_endpoint, claim_id, lass)] while active
        self._active_claims: dict[str, list] = {}
        self._queue: list[JobRecord] = []
        self._cond = tracked_condition("condor.schedd.Schedd._cond")
        self._stopped = False
        self._negotiator = spawn(self._negotiation_loop, name="schedd-negotiate")

    def _record(self, action: str, **details) -> None:
        if self._trace is not None:
            self._trace.record("schedd", action, **details)

    # -- submission -------------------------------------------------------------

    def submit(self, description: SubmitDescription) -> JobRecord:
        """Queue one job; returns its record immediately (status IDLE)."""
        description.validate()
        cluster = self._clusters.next()
        record = JobRecord(job_id=JobId(cluster), description=description)
        with self._cond:
            self._jobs[str(record.job_id)] = record
            self._queue.append(record)
            self._cond.notify()
        self._record("submit", job=str(record.job_id), executable=description.executable)
        return record

    def submit_file(self, text: str) -> list[JobRecord]:
        """Parse a submit description file and queue all its jobs.

        A ``queue N`` statement enqueues N independent copies (Condor's
        cluster/proc expansion, flattened to separate clusters here).
        """
        records = []
        for desc in parse_submit_file(text):
            for _ in range(desc.count):
                records.append(self.submit(desc))
        return records

    def job(self, job_id: str) -> JobRecord:
        with self._cond:
            record = self._jobs.get(job_id)
        if record is None:
            raise errors.ResourceManagerError(f"no such job {job_id!r}")
        return record

    def jobs(self) -> list[JobRecord]:
        with self._cond:
            return list(self._jobs.values())

    # -- negotiation / claiming ----------------------------------------------------

    def _negotiation_loop(self) -> None:
        attempts: dict[str, int] = {}
        while True:
            # The stop flag is only read under _cond (the inner wait
            # loop re-checks it); an unguarded pre-check here would race
            # with stop() for no latency benefit.
            with self._cond:
                while not self._queue and not self._stopped:
                    self._cond.wait(timeout=0.2)
                if self._stopped:
                    return
                record = self._queue.pop(0)
            try:
                placed = self._try_place(record)
            except errors.TdpError as e:
                placed = False
                _log.warning("placement error for %s: %s", record.job_id, e)
            if placed:
                attempts.pop(str(record.job_id), None)
                continue
            n = attempts.get(str(record.job_id), 0) + 1
            attempts[str(record.job_id)] = n
            if n >= self.MAX_ATTEMPTS:
                record.set_status(
                    JobStatus.FAILED,
                    failure_reason="no matching/claimable machines",
                )
                self._record("job_unplaceable", job=str(record.job_id))
                continue
            # Requeue after a pause (machines may free up).
            def requeue(rec=record):
                with self._cond:
                    if not self._stopped:
                        self._queue.append(rec)
                        self._cond.notify()

            self._clock.call_later(self.RETRY_INTERVAL, requeue)

    def _matchmaker_rpc(self, message: dict) -> dict:
        channel = self._transport.connect(
            self.submit_host, self._matchmaker_endpoint, timeout=10.0
        )
        try:
            return channel.request(message, timeout=10.0)
        finally:
            channel.close()

    def _startd_rpc(self, endpoint: Endpoint, message: dict) -> dict:
        channel = self._transport.connect(self.submit_host, endpoint, timeout=10.0)
        try:
            return channel.request(message, timeout=30.0)
        finally:
            channel.close()

    def _try_place(self, record: JobRecord) -> bool:
        """One negotiate+claim+activate attempt.  True when job is running."""
        ad = job_ad(record)
        wanted = record.description.machine_count
        reply = self._matchmaker_rpc(
            {"op": "negotiate", "job_ad": ad.attrs, "count": wanted}
        )
        if not reply.get("ok"):
            return False
        matches = reply["matches"]
        record.set_status(JobStatus.MATCHED)
        self._record(
            "match_notification",
            job=str(record.job_id),
            machines=",".join(m["machine"] for m in matches),
        )

        # Claiming protocol against each matched startd.
        # entries: (machine, startd_endpoint, claim_id, lass_endpoint_str)
        claims: list[tuple[str, Endpoint, str, str]] = []
        for m in matches:
            startd_endpoint = parse_endpoint(str(m["startd"]))
            claim_id = fresh_token("claim")
            self._record("claim_request", machine=m["machine"], claim=claim_id)
            try:
                answer = self._startd_rpc(
                    startd_endpoint,
                    {"op": "claim_request", "claim_id": claim_id, "job_ad": ad.attrs},
                )
            except errors.TdpError:
                answer = {"ok": False}
            if not answer.get("ok"):
                # Claim refused: release everything and let the caller retry.
                self._record("claim_refused", machine=m["machine"], claim=claim_id)
                for machine, endpoint, cid, _lass in claims:
                    self._startd_rpc(endpoint, {"op": "release_claim", "claim_id": cid})
                    self._matchmaker_rpc({"op": "release", "machine": machine})
                self._matchmaker_rpc({"op": "release", "machine": m["machine"]})
                record.set_status(JobStatus.IDLE)
                return False
            claims.append(
                (m["machine"], startd_endpoint, claim_id, str(m.get("lass", "")))
            )
        record.machines = [c[0] for c in claims]
        record.set_status(JobStatus.CLAIMED)

        # Spawn the shadow for this request, then activate the claim(s).
        shadow = Shadow(
            self._transport,
            self.submit_host,
            record,
            submit_fs=self._submit_fs,
            trace=self._trace,
        )
        self._shadows[str(record.job_id)] = shadow
        self._record("spawn_shadow", job=str(record.job_id))

        job_wire = description_to_wire(record.description)
        primary_machine, primary_endpoint, primary_claim, _primary_lass = claims[0]
        activation = {
            "op": "activate_claim",
            "claim_id": primary_claim,
            "job_id": str(record.job_id),
            "submit_host": self.submit_host,
            "cass": str(self.cass.endpoint) if self.cass is not None else "",
            "job": job_wire,
            "shadow": str(shadow.endpoint),
            "stdio": str(shadow.stdio_endpoint),
            "extra_machines": [
                {"machine": mach, "startd": str(ep), "claim": cid, "lass": lass}
                for mach, ep, cid, lass in claims[1:]
            ],
        }
        self._active_claims[str(record.job_id)] = claims
        self._record("activate_claim", machine=primary_machine, claim=primary_claim)
        answer = self._startd_rpc(primary_endpoint, activation)
        if not answer.get("ok"):
            record.set_status(
                JobStatus.FAILED, failure_reason=str(answer.get("error"))
            )
            return True  # terminal; do not retry

        # Release machinery when the job reaches a terminal state.
        def releaser() -> None:
            try:
                record.wait_terminal(timeout=None)
            except errors.TdpError:
                return
            self._active_claims.pop(str(record.job_id), None)
            for machine, endpoint, cid, _lass in claims:
                try:
                    self._startd_rpc(endpoint, {"op": "release_claim", "claim_id": cid})
                    self._matchmaker_rpc({"op": "release", "machine": machine})
                except errors.TdpError:
                    pass
            shadow.stop()

        spawn(releaser, name=f"schedd-release-{record.job_id}")
        return True

    # -- user job control (condor_hold / condor_release) ----------------------------

    def _primary_claim(self, job_id: str):
        claims = self._active_claims.get(job_id)
        if not claims:
            raise errors.ResourceManagerError(
                f"job {job_id!r} has no active claim (not running?)"
            )
        return claims[0]

    def hold(self, job_id: str) -> None:
        """Suspend a running job (the RM pauses it; tools see 'stopped')."""
        record = self.job(job_id)
        _machine, endpoint, claim_id, _lass = self._primary_claim(job_id)
        answer = self._startd_rpc(
            endpoint, {"op": "suspend_job", "claim_id": claim_id}
        )
        if not answer.get("ok"):
            raise errors.ResourceManagerError(
                f"hold failed: {answer.get('error')}"
            )
        record.set_status(JobStatus.HELD)
        self._record("job_held", job=job_id)

    def release(self, job_id: str) -> None:
        """Resume a held job."""
        record = self.job(job_id)
        _machine, endpoint, claim_id, _lass = self._primary_claim(job_id)
        answer = self._startd_rpc(
            endpoint, {"op": "resume_job", "claim_id": claim_id}
        )
        if not answer.get("ok"):
            raise errors.ResourceManagerError(
                f"release failed: {answer.get('error')}"
            )
        record.set_status(JobStatus.RUNNING)
        self._record("job_released", job=job_id)

    def attach_tool(
        self, job_id: str, cmd: str, args: str, *, output: str | None = None
    ) -> None:
        """Ask the execution-side RM to attach a run-time tool to a
        RUNNING job (the Figure 3B flow through the batch system)."""
        self.job(job_id)  # validates existence
        _machine, endpoint, claim_id, _lass = self._primary_claim(job_id)
        answer = self._startd_rpc(
            endpoint,
            {"op": "attach_tool", "claim_id": claim_id, "cmd": cmd,
             "args": args, "output": output},
        )
        if not answer.get("ok"):
            raise errors.ResourceManagerError(
                f"attach_tool failed: {answer.get('error')}"
            )
        self._record("tool_attached", job=job_id, cmd=cmd)

    def remove(self, job_id: str) -> None:
        """condor_rm: remove a job — dequeue it if idle, kill it if running.

        The terminal status becomes REMOVED either way.
        """
        record = self.job(job_id)
        claims = self._active_claims.get(job_id)
        if claims:
            record.removal_requested = True
            _machine, endpoint, claim_id, _lass = claims[0]
            answer = self._startd_rpc(
                endpoint, {"op": "kill_job", "claim_id": claim_id}
            )
            if not answer.get("ok"):
                raise errors.ResourceManagerError(
                    f"remove failed: {answer.get('error')}"
                )
            self._record("job_removed", job=job_id, how="killed")
            return
        # Idle/queued: drop it from the queue.
        with self._cond:
            self._queue = [r for r in self._queue if str(r.job_id) != job_id]
        record.set_status(JobStatus.REMOVED)
        self._record("job_removed", job=job_id, how="dequeued")

    # -- lifecycle ----------------------------------------------------------------

    def stop(self) -> None:
        with self._cond:
            self._stopped = True
            self._cond.notify_all()
        for shadow in self._shadows.values():
            shadow.stop()
        if self.cass is not None:
            self.cass.stop()
