"""Simulated distributed OS substrate.

This package stands in for the Unix process machinery the paper's C
library sits on (``fork``/``exec``, ``ptrace``, ``/proc``): simulated
hosts with pid tables, processes that execute *virtual programs*
(generator functions yielding syscalls), a round-robin scheduler with a
virtual CPU clock, message passing, signals, and stdio.

The process state machine reproduces exactly the states TDP's process
management interface needs (paper Sections 2.2, 3.1):

* **create paused** — stopped "just after the execution of the exec
  call", before ``main`` runs and before libraries initialize;
* **attach** — stop an already-running process "at some unknown point in
  its execution";
* **continue** — resume a stopped process;
* run-to-exit with status codes the RM collects (Section 2.3's single
  point of responsibility).
"""

from repro.sim.syscalls import (
    Compute,
    EnterFunction,
    ExitFunction,
    ExitProgram,
    GetPid,
    GetArgs,
    GetEnv,
    Print,
    ReadLine,
    RecvMsg,
    SendMsg,
    Service,
    Sleep,
    call,
)
from repro.sim.process import ProcessState, SimProcess
from repro.sim.host import SimHost
from repro.sim.kernel import Scheduler
from repro.sim.cluster import SimCluster
from repro.sim.loader import ProgramRegistry, default_registry

__all__ = [
    "Compute",
    "EnterFunction",
    "ExitFunction",
    "ExitProgram",
    "GetPid",
    "GetArgs",
    "GetEnv",
    "Print",
    "ReadLine",
    "RecvMsg",
    "SendMsg",
    "Service",
    "Sleep",
    "call",
    "ProcessState",
    "SimProcess",
    "SimHost",
    "Scheduler",
    "SimCluster",
    "ProgramRegistry",
    "default_registry",
]
