"""Simulated host: pid table and process lifecycle on one machine.

A host is where the RM's execution-side daemons do their work: it can
create processes (optionally paused — the split ``fork``/``exec``-then-
stop that TDP requires), look them up by pid, signal them, and observe
exits.  Hosts belong to a :class:`~repro.sim.cluster.SimCluster`, which
provides the scheduler, the network, and the executable registry.
"""

from __future__ import annotations

import threading
from typing import TYPE_CHECKING, Callable

from repro.errors import ExecutableNotFoundError, NoSuchProcessError
from repro.sim.process import ProcessState, SimProcess
from repro.sim.syscalls import Program
from repro.util.ids import IdAllocator
from repro.util.sync import tracked_lock

if TYPE_CHECKING:
    from repro.sim.cluster import SimCluster

#: factory signature for executables: argv -> program generator
ProgramFactory = Callable[[list[str]], Program]


class SimHost:
    """One machine in the simulated cluster."""

    def __init__(self, cluster: "SimCluster", name: str):
        self.cluster = cluster
        self.name = name
        self._pids = IdAllocator(first=1000)  # conventional "not init" range
        self._procs: dict[int, SimProcess] = {}
        self._lock = tracked_lock("sim.host.SimHost._lock")
        #: this host's simulated filesystem: path -> file content.  The
        #: TDP file-staging service copies tool config/output files
        #: between these per-host namespaces.
        self.filesystem: dict[str, str] = {}

    def __repr__(self) -> str:
        return f"<SimHost {self.name} procs={len(self._procs)}>"

    # -- process creation -------------------------------------------------------

    def create_process(
        self,
        executable: str | ProgramFactory,
        argv: list[str] | None = None,
        *,
        env: dict[str, str] | None = None,
        paused: bool = False,
    ) -> SimProcess:
        """fork+exec a program; ``paused=True`` stops it before ``main``.

        ``executable`` is a name resolved through the cluster's program
        registry (how the Condor starter launches a submit file's
        ``executable = foo``) or a program factory for direct use.
        """
        if isinstance(executable, str):
            factory = self.cluster.registry.resolve(executable)
            if factory is None:
                raise ExecutableNotFoundError(
                    f"no such executable {executable!r} on {self.name}"
                )
            exe_name = executable
        else:
            factory = executable
            exe_name = getattr(executable, "__name__", "<factory>")
        argv = list(argv or [])
        program = factory(argv)
        with self._lock:
            pid = self._pids.next()
            proc = SimProcess(
                self,
                pid,
                program,
                argv,
                env,
                paused=paused,
                executable=exe_name,
            )
            self._procs[pid] = proc
        self.cluster.scheduler.register(proc)
        return proc

    # -- lookup / control ----------------------------------------------------------

    def get_process(self, pid: int) -> SimProcess:
        with self._lock:
            proc = self._procs.get(pid)
        if proc is None:
            raise NoSuchProcessError(pid, self.name)
        return proc

    def has_process(self, pid: int) -> bool:
        with self._lock:
            return pid in self._procs

    def processes(self, *, alive_only: bool = False) -> list[SimProcess]:
        with self._lock:
            procs = list(self._procs.values())
        if alive_only:
            procs = [p for p in procs if p.state is not ProcessState.EXITED]
        return procs

    def signal(self, pid: int, signum: int) -> None:
        self.get_process(pid).deliver_signal(signum)

    def kill_all(self) -> None:
        """Terminate every living process on this host (host teardown)."""
        for proc in self.processes(alive_only=True):
            proc.terminate(9)

    def scheduler_notify(self) -> None:
        self.cluster.scheduler.notify()
