"""The simulation kernel: syscall interpreter + round-robin scheduler.

One scheduler thread drives every process in a cluster with round-robin
time slices, advancing a shared :class:`~repro.util.clock.VirtualClock`
by the virtual CPU cost each process consumes.  Real threads (the RM and
RT daemons) interact with processes purely through the state machine in
:mod:`repro.sim.process` — they never run program code — so the blocking
TDP API composes naturally with the simulation.

Determinism: a single scheduler thread, fixed registration order, and a
virtual clock mean CPU attribution (and therefore the Paradyn metric
values) are reproducible run to run; only interleavings with external
daemon threads vary, and those are synchronized through explicit state
waits, never timing.
"""

from __future__ import annotations

import threading
import traceback
from typing import TYPE_CHECKING, Any

from repro import obs
from repro.errors import NoSuchProcessError, SimulationError, TdpError
from repro.sim.process import ProcessState, SimProcess, StopReason
from repro.sim import syscalls as sc
from repro.util.clock import VirtualClock
from repro.util.log import get_logger
from repro.util.sync import tracked_lock
from repro.util.threads import spawn

if TYPE_CHECKING:
    from repro.sim.cluster import SimCluster

_log = get_logger("sim.kernel")

#: virtual seconds charged for any syscall (keeps zero-cost loops finite
#: in virtual time and gives message ping-pongs a nonzero duration)
SYSCALL_COST = 1e-6


class Scheduler:
    """Round-robin scheduler over all processes of one cluster."""

    #: virtual seconds of CPU one slice may consume before rotating
    QUANTUM = 0.05
    #: hard bound on syscalls per slice (latency bound for control ops)
    MAX_SYSCALLS_PER_SLICE = 500

    def __init__(self, cluster: "SimCluster", clock: VirtualClock):
        self._cluster = cluster
        self.clock = clock
        self._procs: list[SimProcess] = []
        self._lock = tracked_lock("sim.kernel.Scheduler._lock")
        self._wake = threading.Event()
        # tdp-guard: _stop -> volatile
        # (monotonic stop latch: set once by stop(), polled by the loop)
        self._stop = False
        self._thread: threading.Thread | None = None
        self.slices_executed = 0

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> None:
        if self._thread is not None:
            return
        self._thread = spawn(self._loop, name="sim-scheduler")

    def stop(self) -> None:
        self._stop = True
        self._wake.set()
        if self._thread is not None:
            self._thread.join(timeout=10.0)
            if self._thread.is_alive():
                raise SimulationError("scheduler thread did not exit")
            self._thread = None

    def register(self, proc: SimProcess) -> None:
        with self._lock:
            self._procs.append(proc)
        self.notify()

    def notify(self) -> None:
        """Wake the scheduler (a process became runnable / got input)."""
        self._wake.set()

    def processes(self) -> list[SimProcess]:
        with self._lock:
            return list(self._procs)

    # -- main loop -------------------------------------------------------------

    def _loop(self) -> None:
        while not self._stop:
            progressed = False
            for proc in self.processes():
                if self._stop:
                    return
                with proc.lock:
                    runnable = proc.state is ProcessState.RUNNABLE
                if runnable:
                    self._slice(proc)
                    progressed = True
            self._reap()
            if progressed:
                continue
            # Nothing runnable: maybe time needs to pass for sleepers.
            if self._advance_to_next_sleeper():
                continue
            # Genuinely idle: wait for external stimulus.
            self._wake.wait(timeout=0.02)
            self._wake.clear()

    def _reap(self) -> None:
        # Classify under each process lock first: taking p.lock (rank
        # 42) inside self._lock (rank 46) would invert the declared
        # order.  EXITED is terminal, so the two-phase split is safe —
        # a process that exits between the phases is reaped next round.
        dead = []
        for p in self.processes():
            with p.lock:
                if p.state is ProcessState.EXITED:
                    dead.append(p)
        if dead:
            gone = {id(p) for p in dead}
            with self._lock:
                self._procs = [p for p in self._procs if id(p) not in gone]
        for p in dead:
            with p.lock:
                if p._close_pending:
                    p._close_pending = False
                    try:
                        p._generator.close()
                    except (RuntimeError, ValueError):
                        pass

    def _advance_to_next_sleeper(self) -> bool:
        deadlines = []
        for p in self.processes():
            with p.lock:
                if (
                    p.state is ProcessState.BLOCKED
                    and p._sleep_until is not None
                ):
                    deadlines.append(p._sleep_until)
        if not deadlines:
            return False
        self.clock.advance_to(min(deadlines))
        woke = False
        for p in self.processes():
            with p.state_changed:
                until = p._sleep_until
                if (
                    until is not None
                    and p.state is ProcessState.BLOCKED
                    and self.clock.now() >= until
                ):
                    p._set_state(ProcessState.RUNNABLE, None)
                    woke = True
        return woke

    # -- one scheduling slice -----------------------------------------------------

    def _slice(self, proc: SimProcess) -> None:
        """Run ``proc`` for up to one quantum of virtual CPU."""
        self.slices_executed += 1
        if obs.enabled():
            obs.registry().counter("sim.slices").increment()
        budget = self.QUANTUM
        steps = 0
        while budget > 0 and steps < self.MAX_SYSCALLS_PER_SLICE:
            steps += 1
            # Honor stop requests at syscall boundaries.
            with proc.state_changed:
                if proc.state is not ProcessState.RUNNABLE:
                    return
                if proc._stop_requested is not None:
                    reason = proc._stop_requested
                    proc._stop_requested = None
                    proc._set_state(ProcessState.STOPPED, reason)
                    return
            cost = self._execute_one(proc)
            if cost is None:
                return  # blocked, stopped, or exited
            budget -= cost

    def _execute_one(self, proc: SimProcess) -> float | None:
        """Advance ``proc`` by one syscall.

        Returns the virtual cost consumed, or ``None`` when the process
        can make no further progress right now.
        """
        syscall = proc.pending_syscall
        if syscall is None:
            try:
                if not proc._started:
                    proc._started = True
                    proc.start_vtime = self.clock.now()
                    syscall = next(proc._generator)
                else:
                    syscall = proc._generator.send(proc._last_result)
            except StopIteration as stop:
                code = stop.value if isinstance(stop.value, int) else 0
                with proc.lock:
                    proc._finish(exit_code=code)
                obs.record(
                    "proc.exit", actor="sim", pid=proc.pid,
                    exit_code=code, vtime=self.clock.now(),
                )
                proc._run_exit_listeners()
                return None
            except Exception:  # noqa: BLE001 — program crash becomes a fault
                with proc.lock:
                    proc.fault = traceback.format_exc(limit=5)
                    proc._finish(exit_code=139)
                obs.record(
                    "proc.fault", actor="sim", pid=proc.pid,
                    vtime=self.clock.now(),
                )
                _log.warning("program fault in %r:\n%s", proc, proc.fault)
                proc._run_exit_listeners()
                return None
            # terminate() may have fired while we were inside gen.send();
            # honor the death before executing the yielded syscall, and
            # finish the generator close the terminator could not do.
            with proc.lock:
                if proc.state is ProcessState.EXITED:
                    if proc._close_pending:
                        proc._close_pending = False
                        try:
                            proc._generator.close()
                        except (RuntimeError, ValueError):
                            pass
                    return None
            if not isinstance(syscall, sc.SysCall):
                with proc.lock:
                    proc.fault = f"program yielded non-syscall {syscall!r}"
                    proc._finish(exit_code=139)
                proc._run_exit_listeners()
                return None
            proc.pending_syscall = syscall

        # Blocking-capable syscalls: evaluate-and-park atomically with the
        # process lock, so a concurrent deliver/feed cannot slip between
        # the emptiness check and the BLOCKED transition.  Only the narrow
        # _try_blocking_syscall runs under the lock — it touches nothing
        # but this process and the clock, keeping the lock hierarchy flat
        # (routing a SendMsg to a peer process must not happen while
        # holding the sender's lock).
        try:
            if isinstance(syscall, (sc.ReadLine, sc.RecvMsg, sc.Sleep)):
                with proc.state_changed:
                    done, result, cost = self._try_blocking_syscall(proc, syscall)
                    if not done:
                        if proc.state is ProcessState.RUNNABLE:
                            proc._set_state(ProcessState.BLOCKED, None)
                        return None
            else:
                done, result, cost = self._try_syscall(proc, syscall)
                assert done, f"non-blocking syscall reported blocked: {syscall!r}"
        except TdpError as e:
            # A bad syscall (unknown host, unknown service, service-level
            # error) crashes the *program*, never the scheduler.
            with proc.lock:
                proc.fault = str(e)
                proc._finish(exit_code=139)
            obs.record(
                "proc.fault", actor="sim", pid=proc.pid,
                reason=str(e), vtime=self.clock.now(),
            )
            _log.warning("syscall fault in %r: %s", proc, e)
            proc._run_exit_listeners()
            return None
        with proc.lock:
            exited = proc.state is ProcessState.EXITED
        if exited:
            return None
        proc.pending_syscall = None
        proc._last_result = result
        if obs.enabled():
            obs.registry().counter("sim.syscalls").increment()
        total = cost + SYSCALL_COST
        with proc.lock:
            proc.cpu_time += total
        self.clock.advance(total)
        return total

    # -- individual syscalls --------------------------------------------------------

    def _try_blocking_syscall(
        self, proc: SimProcess, syscall: sc.SysCall
    ) -> tuple[bool, Any, float]:
        """Attempt a blocking-capable syscall (ReadLine/RecvMsg/Sleep).

        The caller holds ``proc.state_changed``; everything here must
        stay within this process (plus the leaf clock lock) so the
        evaluate-and-park critical section never reaches into another
        daemon's locks.
        """
        if isinstance(syscall, sc.ReadLine):
            with proc.lock:
                if proc.stdin_lines:
                    return True, proc.stdin_lines.pop(0), 0.0
                if proc.stdin_eof:
                    return True, None, 0.0
            return False, None, 0.0

        if isinstance(syscall, sc.RecvMsg):
            record = proc.take_message(syscall.tag)
            if record is None:
                return False, None, 0.0
            return True, record, 0.0

        if isinstance(syscall, sc.Sleep):
            until = getattr(proc, "_sleep_until", None)
            if until is None:
                proc._sleep_until = self.clock.now() + syscall.seconds  # type: ignore[attr-defined]
                if syscall.seconds > 0:
                    return False, None, 0.0
                until = proc._sleep_until  # type: ignore[attr-defined]
            if self.clock.now() >= until:
                proc._sleep_until = None  # type: ignore[attr-defined]
                return True, None, 0.0
            return False, None, 0.0

        raise AssertionError(f"not a blocking-capable syscall: {syscall!r}")

    def _try_syscall(
        self, proc: SimProcess, syscall: sc.SysCall
    ) -> tuple[bool, Any, float]:
        """Attempt one syscall: (completed?, result, extra_cost)."""
        if isinstance(syscall, (sc.ReadLine, sc.RecvMsg, sc.Sleep)):
            return self._try_blocking_syscall(proc, syscall)

        if isinstance(syscall, sc.Compute):
            return True, None, syscall.cost

        if isinstance(syscall, sc.EnterFunction):
            from repro.sim.process import FunctionFrame

            with proc.lock:
                proc.frames.append(
                    FunctionFrame(name=syscall.name, entered_cpu=proc.cpu_time)
                )
                proc.functions_seen.add(syscall.name)
                probes = list(proc.probes.get((syscall.name, "entry"), ()))
            for probe in probes:
                probe.action(proc, syscall.name, "entry")
            return True, None, 0.0

        if isinstance(syscall, sc.ExitFunction):
            with proc.lock:
                probes = list(proc.probes.get((syscall.name, "exit"), ()))
            for probe in probes:
                probe.action(proc, syscall.name, "exit")
            with proc.lock:
                if proc.frames and proc.frames[-1].name == syscall.name:
                    proc.frames.pop()
            return True, None, 0.0

        if isinstance(syscall, sc.Print):
            proc.write_stdout(syscall.text)
            return True, None, 0.0

        if isinstance(syscall, sc.SendMsg):
            self._cluster.route_message(proc, syscall)
            return True, None, 0.0

        if isinstance(syscall, sc.ExitProgram):
            with proc.lock:
                proc._finish(exit_code=syscall.code)
            proc._run_exit_listeners()
            return True, None, 0.0

        if isinstance(syscall, sc.GetPid):
            return True, proc.pid, 0.0

        if isinstance(syscall, sc.GetArgs):
            return True, list(proc.argv), 0.0

        if isinstance(syscall, sc.GetEnv):
            return True, proc.env.get(syscall.name), 0.0

        if isinstance(syscall, sc.Service):
            result = self._cluster.call_service(syscall.name, proc, syscall.args)
            return True, result, 0.0

        # Unknown syscall type: programming error in the program.
        with proc.lock:
            proc.fault = f"unknown syscall {syscall!r}"
            proc._finish(exit_code=139)
        proc._run_exit_listeners()
        return True, None, 0.0
