"""Simulated process: state machine, interpreter state, tracing hooks.

A :class:`SimProcess` owns a virtual program (generator), a mailbox,
stdio buffers, CPU accounting, and — crucially for TDP — the stop/attach
machinery:

* ``create paused``  → state STOPPED with the generator *unstarted*
  (the paper's "stopped just after the exec call": no library init, no
  ``main``); the RT attaches and instruments before anything ran.
* ``attach``         → a tracer is registered and the process stops at a
  syscall boundary ("some unknown point in its execution").
* ``continue``       → a STOPPED process resumes — to RUNNABLE, or back
  to BLOCKED if it was parked on an incomplete blocking syscall.

Control operations are *mechanism* here; the policy of who may call them
(the RM, per paper Section 2.3) is enforced by :mod:`repro.tdp.process`.
"""

from __future__ import annotations

import enum
import threading
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable

from repro.errors import AttachError, InvalidProcessStateError
from repro.sim.syscalls import MsgRecord, Program, SysCall
from repro.util.sync import tracked_condition, tracked_rlock

if TYPE_CHECKING:
    from repro.sim.host import SimHost


class ProcessState(enum.Enum):
    """Externally visible process states."""

    STOPPED = "stopped"    # created-paused, signalled stop, or tracer stop
    RUNNABLE = "runnable"  # ready; the scheduler will step it
    BLOCKED = "blocked"    # parked on an incomplete blocking syscall
    EXITED = "exited"      # terminal


class StopReason(enum.Enum):
    """Why a process is STOPPED (diagnostic detail for the tracer)."""

    CREATED_PAUSED = "created-paused"
    SIGNAL = "signal"
    TRACER = "tracer"
    BREAKPOINT = "breakpoint"


@dataclass
class ProbePoint:
    """A dynamic-instrumentation probe at a function entry or exit.

    ``action(process, function, where)`` runs on the scheduler thread;
    it may call :meth:`SimProcess.request_stop` (a breakpoint) but must
    not block.  Probes are inserted/removed by the tool at run time —
    the Dyninst capability the pilot relies on.
    """

    probe_id: int
    function: str
    where: str  # "entry" | "exit"
    action: Callable[["SimProcess", str, str], None]


@dataclass
class FunctionFrame:
    """One live stack frame (for CPU attribution and tool stack walks)."""

    name: str
    entered_cpu: float  # process CPU time at entry
    child_cpu: float = 0.0


class SimProcess:
    """One simulated process.  All mutation happens under ``self.lock``.

    The interpreter fields (``_generator``, ``pending_syscall``, …) are
    only touched by the scheduler thread; state transitions are shared
    with control threads and guarded by the lock + condition.
    """

    def __init__(
        self,
        host: "SimHost",
        pid: int,
        program: Program,
        argv: list[str],
        env: dict[str, str] | None = None,
        *,
        paused: bool,
        executable: str = "?",
    ):
        self.host = host
        self.pid = pid
        self.argv = list(argv)
        self.env = dict(env or {})
        self.executable = executable

        self.lock = tracked_rlock("sim.process.SimProcess.lock")
        self.state_changed = tracked_condition("sim.process.SimProcess.lock", self.lock)
        self.state = ProcessState.STOPPED if paused else ProcessState.RUNNABLE
        self.stop_reason: StopReason | None = (
            StopReason.CREATED_PAUSED if paused else None
        )
        self._stop_requested: StopReason | None = None

        # Interpreter state (scheduler thread only).
        self._generator = program
        # tdp-guard: _started -> volatile
        # (monotonic latch set at the first executed syscall; the
        # `started` property reads it under the lock, the scheduler's
        # own read-modify-write is single-threaded by confinement)
        self._started = False
        # tdp-guard: pending_syscall -> confined:sim.kernel.Scheduler._loop
        # (terminate()'s cross-thread clear in _finish is individually
        # waived: it runs under the lock after EXITED is published)
        self.pending_syscall: SysCall | None = None
        self._last_result: Any = None
        self._sleep_until: float | None = None
        #: set when a terminate() raced the scheduler and could not close
        #: the generator itself; the scheduler finishes the close
        self._close_pending = False

        # Accounting and tool-visible structure.
        self.cpu_time = 0.0
        #: virtual time at first executed syscall / at exit (wall-clock
        #: analogue; Sleep advances wall but not CPU)
        # tdp-guard: start_vtime -> volatile
        # (written once by the scheduler at first execution; accounting
        # readers tolerate None-until-started)
        self.start_vtime: float | None = None
        self.end_vtime: float | None = None
        self.frames: list[FunctionFrame] = []
        self.functions_seen: set[str] = set()
        self.probes: dict[tuple[str, str], list[ProbePoint]] = {}

        # I/O.
        self.mailbox: list[MsgRecord] = []
        self.stdin_lines: list[str] = []
        self.stdin_eof = False
        self.stdout_lines: list[str] = []
        self.stdout_sinks: list[Callable[[str], None]] = []

        # Termination.
        # tdp-guard: exit_code -> volatile
        # (written once, under the lock, before EXITED is published;
        # readers are ordered after it by wait_for_state)
        self.exit_code: int | None = None
        self.exit_signal: int | None = None
        self.fault: str | None = None
        self.exit_listeners: list[Callable[["SimProcess"], None]] = []

        # Tracing.
        self.tracer: str | None = None

    # -- identity ---------------------------------------------------------

    def __repr__(self) -> str:
        return (
            f"<SimProcess {self.host.name}:{self.pid} {self.executable!r} "
            f"{self.state.value}>"
        )

    # -- state queries ------------------------------------------------------

    @property
    def alive(self) -> bool:
        with self.lock:
            return self.state is not ProcessState.EXITED

    @property
    def started(self) -> bool:
        """Has the program executed at least one syscall?  ``False`` for a
        created-paused process that nobody continued yet — the window in
        which pre-``main`` instrumentation is possible."""
        with self.lock:
            return self._started

    def wait_for_state(
        self, *states: ProcessState, timeout: float | None = None
    ) -> ProcessState:
        """Block until the process reaches one of ``states``."""
        with self.state_changed:
            ok = self.state_changed.wait_for(
                lambda: self.state in states, timeout=timeout
            )
            if not ok:
                raise InvalidProcessStateError(
                    f"{self!r} did not reach {[s.value for s in states]} "
                    f"within {timeout}s"
                )
            return self.state

    def wait_for_exit(self, timeout: float | None = None) -> int:
        """Block until exit; returns the exit code."""
        self.wait_for_state(ProcessState.EXITED, timeout=timeout)
        assert self.exit_code is not None
        return self.exit_code

    # -- control operations (mechanism) ---------------------------------------

    def request_stop(self, reason: StopReason = StopReason.TRACER) -> None:
        """Ask the process to stop at the next syscall boundary.

        Takes effect immediately for BLOCKED/STOPPED processes; a RUNNABLE
        process stops when the scheduler reaches it (use
        :meth:`wait_for_state` to synchronize).
        """
        with self.state_changed:
            if self.state is ProcessState.EXITED:
                raise InvalidProcessStateError(f"{self!r} has exited")
            if self.state is ProcessState.STOPPED:
                return
            if self.state is ProcessState.BLOCKED:
                self._set_state(ProcessState.STOPPED, reason)
                return
            # RUNNABLE: the scheduler honors the flag between syscalls.
            self._stop_requested = reason

    def continue_process(self) -> None:
        """Resume a STOPPED process (``tdp_continue_process`` mechanism).

        Always resumes to RUNNABLE: if the process was parked on an
        incomplete blocking syscall, the scheduler retries it and re-parks
        as needed — spurious wakeups are harmless by design.
        """
        with self.state_changed:
            if self.state is ProcessState.EXITED:
                raise InvalidProcessStateError(f"{self!r} has exited")
            if self.state is not ProcessState.STOPPED:
                raise InvalidProcessStateError(
                    f"continue on {self.state.value} process {self!r}"
                )
            self._stop_requested = None
            self.stop_reason = None
            self._set_state(ProcessState.RUNNABLE, None)
        self.host.scheduler_notify()

    def unblock(self) -> None:
        """Wake a BLOCKED process so the scheduler retries its syscall."""
        with self.state_changed:
            if self.state is ProcessState.BLOCKED:
                self._set_state(ProcessState.RUNNABLE, None)
        self.host.scheduler_notify()

    def attach(self, tracer: str) -> None:
        """Attach a tracer: register it and stop the process.

        Paper Section 2.2 case 3: "(1) obtain control of the application
        …; (2) pause the application".  Double-attach is an error (one
        controlling tracer, like ptrace).
        """
        with self.state_changed:
            if self.state is ProcessState.EXITED:
                raise AttachError(f"cannot attach to exited process {self!r}")
            if self.tracer is not None:
                raise AttachError(
                    f"{self!r} already traced by {self.tracer!r}"
                )
            self.tracer = tracer
        self.request_stop(StopReason.TRACER)

    def detach(self, *, resume: bool = True) -> None:
        """Drop the tracer; by default let the process run on."""
        with self.state_changed:
            if self.tracer is None:
                raise AttachError(f"{self!r} has no tracer")
            self.tracer = None
            if resume and self.state is ProcessState.STOPPED:
                self._stop_requested = None
                self.stop_reason = None
                self._set_state(ProcessState.RUNNABLE, None)
        self.host.scheduler_notify()

    def terminate(self, signal: int = 15) -> None:
        """Kill the process (SIGTERM/SIGKILL semantics: immediate exit)."""
        with self.state_changed:
            if self.state is ProcessState.EXITED:
                return
            self.exit_signal = signal
            self._finish(exit_code=128 + signal)
        self._run_exit_listeners()

    def deliver_signal(self, signal: int) -> None:
        """Minimal signal model: STOP(19), CONT(18), TERM(15), KILL(9)."""
        if signal == 19:  # SIGSTOP
            self.request_stop(StopReason.SIGNAL)
        elif signal == 18:  # SIGCONT
            with self.lock:
                stopped = self.state is ProcessState.STOPPED
            if stopped:
                self.continue_process()
        elif signal in (9, 15):
            self.terminate(signal)
        else:
            raise ValueError(f"unsupported signal {signal}")

    # -- instrumentation (used by the dyninst engine) ----------------------------

    def insert_probe(self, probe: ProbePoint) -> None:
        with self.lock:
            if self.state is ProcessState.EXITED:
                raise InvalidProcessStateError(f"{self!r} has exited")
            self.probes.setdefault((probe.function, probe.where), []).append(probe)

    def remove_probe(self, probe_id: int) -> bool:
        with self.lock:
            for key, plist in list(self.probes.items()):
                for i, p in enumerate(plist):
                    if p.probe_id == probe_id:
                        del plist[i]
                        if not plist:
                            del self.probes[key]
                        return True
            return False

    @property
    def wall_time(self) -> float:
        """Virtual wall seconds between first execution and exit (or now).

        CPU-only work keeps wall == cpu; Sleep (I/O wait) advances wall
        without CPU — the signal the Performance Consultant's why-axis
        (CPU-bound vs I/O-bound) discriminates on.
        """
        with self.lock:
            start = self.start_vtime
            end = self.end_vtime
        if start is None:
            return 0.0
        if end is None:
            end = self.host.cluster.clock.now()
        return max(0.0, end - start)

    def stack(self) -> list[str]:
        """Current function stack, outermost first (tool stack walk)."""
        with self.lock:
            return [f.name for f in self.frames]

    # -- stdio ------------------------------------------------------------------

    def feed_stdin(self, line: str) -> None:
        with self.lock:
            self.stdin_lines.append(line)
        self.unblock()

    def close_stdin(self) -> None:
        with self.lock:
            self.stdin_eof = True
        self.unblock()

    def write_stdout(self, text: str) -> None:
        # Sinks are invoked under the lock so that add_stdout_sink's
        # replay-then-register is atomic (no lost or duplicated lines).
        # Sinks must therefore be non-blocking (queue puts / buffer
        # appends), which all in-tree sinks are.
        with self.lock:
            self.stdout_lines.append(text)
            sinks = list(self.stdout_sinks)
            for sink in sinks:
                sink(text)

    def add_stdout_sink(
        self, sink: Callable[[str], None], *, replay: bool = True
    ) -> None:
        """Register a stdout forwarder (how the RM redirects job output).

        With ``replay`` (default), lines printed before registration are
        delivered first — a fast job may finish before the RM wires its
        stdio relay.
        """
        with self.lock:
            if replay:
                for line in self.stdout_lines:
                    sink(line)
            self.stdout_sinks.append(sink)

    # -- messaging ----------------------------------------------------------------

    def deliver_message(self, record: MsgRecord) -> None:
        with self.state_changed:
            if self.state is ProcessState.EXITED:
                return  # messages to the dead are dropped
            self.mailbox.append(record)
            if self.state is ProcessState.BLOCKED:
                self._set_state(ProcessState.RUNNABLE, None)
            # STOPPED processes keep the message queued; they will retry
            # the pending Recv when continued.
        self.host.scheduler_notify()

    def take_message(self, tag: str | None) -> MsgRecord | None:
        """Pop the oldest (matching) message; None if none available."""
        with self.lock:
            for i, rec in enumerate(self.mailbox):
                if tag is None or rec.tag == tag:
                    return self.mailbox.pop(i)
            return None

    # -- termination (scheduler thread / terminate) ---------------------------------

    def _finish(self, exit_code: int) -> None:
        """Transition to EXITED (caller holds the lock)."""
        # Balance any open frames so tool timers close.
        while self.frames:
            self.frames.pop()
        self.end_vtime = self.host.cluster.clock.now()
        self.exit_code = exit_code
        self.pending_syscall = None
        self._set_state(ProcessState.EXITED, None)
        try:
            self._generator.close()
        except RuntimeError:
            pass  # generator yielded in finally (call() does); acceptable
        except ValueError:
            # terminate() raced the scheduler mid-send; the scheduler
            # closes the generator when it observes the EXITED state.
            self._close_pending = True

    def _run_exit_listeners(self) -> None:
        with self.lock:
            listeners = list(self.exit_listeners)
        for listener in listeners:
            listener(self)

    def on_exit(self, listener: Callable[["SimProcess"], None]) -> None:
        """Register an exit listener; fires immediately if already exited."""
        with self.lock:
            if self.state is ProcessState.EXITED:
                already = True
            else:
                self.exit_listeners.append(listener)
                already = False
        if already:
            listener(self)

    # -- internals ----------------------------------------------------------------

    def _set_state(self, state: ProcessState, reason: StopReason | None) -> None:
        """Caller must hold the lock."""
        self.state = state
        if state is ProcessState.STOPPED:
            self.stop_reason = reason
        self.state_changed.notify_all()
