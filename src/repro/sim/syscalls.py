"""Syscalls of the simulated OS.

A *virtual program* is a Python generator that yields syscall objects;
the scheduler executes each syscall and sends its result back into the
generator.  A syscall that cannot complete (e.g. :class:`RecvMsg` on an
empty mailbox) leaves the generator un-advanced and blocks the process —
it is retried when the process wakes, so blocking semantics are exact
without ever blocking the scheduler thread.

Programs look like::

    def worker(argv):
        def body():
            yield Compute(0.5)
            msg = yield RecvMsg()
            yield Print(f"got {msg.payload}")
            yield Compute(1.0)
        yield from call("main", body())

:func:`call` brackets a body with Enter/ExitFunction so the dynamic
instrumentation engine (:mod:`repro.paradyn.dyninst`) has probe points.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Generator, Iterator


class SysCall:
    """Base class for everything a virtual program may yield."""

    __slots__ = ()


@dataclass(frozen=True)
class Compute(SysCall):
    """Burn ``cost`` seconds of virtual CPU, attributed to the current function."""

    cost: float

    def __post_init__(self) -> None:
        if self.cost < 0:
            raise ValueError(f"negative compute cost {self.cost}")


@dataclass(frozen=True)
class Sleep(SysCall):
    """Block for ``seconds`` of *virtual* time without consuming CPU."""

    seconds: float


@dataclass(frozen=True)
class EnterFunction(SysCall):
    """Mark entry into a named function (an instrumentation point)."""

    name: str


@dataclass(frozen=True)
class ExitFunction(SysCall):
    """Mark exit from a named function (an instrumentation point)."""

    name: str


@dataclass(frozen=True)
class Print(SysCall):
    """Write a line to the process's standard output."""

    text: str


@dataclass(frozen=True)
class ReadLine(SysCall):
    """Read one line from standard input; blocks until available.

    Result: the line (str), or ``None`` on EOF.
    """


@dataclass(frozen=True)
class SendMsg(SysCall):
    """Send a message to another simulated process (host, pid).

    Payload must be JSON-serializable (same wire discipline as channels).
    """

    dst_host: str
    dst_pid: int
    tag: str = ""
    payload: Any = None


@dataclass(frozen=True)
class RecvMsg(SysCall):
    """Receive the oldest mailbox message (optionally filtered by tag).

    Blocks until a matching message arrives.  Result: :class:`MsgRecord`.
    """

    tag: str | None = None


@dataclass(frozen=True)
class MsgRecord:
    """A delivered message (result of :class:`RecvMsg`)."""

    src_host: str
    src_pid: int
    tag: str
    payload: Any


@dataclass(frozen=True)
class ExitProgram(SysCall):
    """Terminate the program with an exit code."""

    code: int = 0


@dataclass(frozen=True)
class GetPid(SysCall):
    """Result: this process's pid (int)."""


@dataclass(frozen=True)
class GetArgs(SysCall):
    """Result: the argv list the process was created with."""


@dataclass(frozen=True)
class GetEnv(SysCall):
    """Result: the value of one environment variable, or ``None``."""

    name: str


@dataclass(frozen=True)
class Service(SysCall):
    """Invoke a cluster-registered service handler (extensibility hook).

    The MPI runtime uses this for rank spawning and communicator setup;
    handlers run synchronously on the scheduler thread and must not
    block.  Result: whatever the handler returns (JSON-able).
    """

    name: str
    args: dict[str, Any] = field(default_factory=dict)


Program = Generator[SysCall, Any, Any]


def call(name: str, body: Iterator[SysCall]) -> Program:
    """Run ``body`` bracketed by Enter/ExitFunction syscalls.

    The ExitFunction is emitted even if the body raises, so function
    timers balance on program faults (the interpreter additionally
    force-closes open frames at exit as a backstop).
    """
    yield EnterFunction(name)
    try:
        result = yield from body
    finally:
        yield ExitFunction(name)
    return result
