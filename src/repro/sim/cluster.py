"""SimCluster: hosts + network + scheduler + services, assembled.

A cluster is the unit of one scenario: it owns the virtual clock, the
single scheduler thread, the simulated network (with zones/firewalls),
an in-memory transport for daemon channels, a registry of named
executables, and the service handlers that extend the syscall set
(the simulated-MPI runtime registers its handlers here).
"""

from __future__ import annotations

import threading
from typing import Any, Callable

from repro.errors import NoSuchHostError, SimulationError
from repro.net.topology import Network
from repro.sim.host import SimHost
from repro.sim.kernel import Scheduler
from repro.sim.loader import ProgramRegistry, default_registry
from repro.sim.process import SimProcess
from repro.sim.syscalls import MsgRecord, SendMsg
from repro.transport.inmem import InMemoryTransport
from repro.util.clock import VirtualClock
from repro.util.sync import tracked_lock

ServiceHandler = Callable[[SimProcess, dict[str, Any]], Any]


class SimCluster:
    """A simulated distributed system under one scheduler.

    Use as a context manager (or call :meth:`start`/:meth:`stop`) so the
    scheduler thread is always reclaimed::

        with SimCluster.flat(["node1", "node2"]) as cluster:
            proc = cluster.host("node1").create_process("cpu_burn", ["3"])
            proc.wait_for_exit(timeout=10)
    """

    def __init__(
        self,
        network: Network,
        *,
        registry: ProgramRegistry | None = None,
        apply_latency: bool = False,
    ):
        self.network = network
        self.clock = VirtualClock()
        self.scheduler = Scheduler(self, self.clock)
        # apply_latency makes daemon channels pay the topology's modeled
        # link/boundary latency in wall time (scaling experiments);
        # default off so tests run at memory speed.
        self.transport = InMemoryTransport(network, apply_latency=apply_latency)
        self.registry = registry if registry is not None else default_registry()
        self._hosts: dict[str, SimHost] = {}
        self._services: dict[str, ServiceHandler] = {}
        self._lock = tracked_lock("sim.cluster.SimCluster._lock")
        for hostname in network.hosts():
            self._hosts[hostname] = SimHost(self, hostname)
        self._started = False

    # -- construction helpers ------------------------------------------------

    @classmethod
    def flat(cls, hostnames: list[str], **kwargs) -> "SimCluster":
        """All hosts on one open LAN (no firewalls)."""
        from repro.net.topology import flat_network

        return cls(flat_network(hostnames), **kwargs)

    @classmethod
    def with_private_nodes(
        cls,
        submit_hosts: list[str],
        node_hosts: list[str],
        *,
        gateway_pinholes: list[tuple[str, int]] | None = None,
        allow_outbound: bool = False,
        **kwargs,
    ) -> "SimCluster":
        """The paper's Figure 1 topology: public submit side, private pool.

        ``gateway_pinholes`` is a list of (host, port) pairs cluster nodes
        may dial out to — where the RM runs its proxy.
        """
        net = Network()
        net.add_zone("campus")
        cluster_zone = net.add_private_zone("cluster", allow_outbound=allow_outbound)
        for h in submit_hosts:
            net.add_host(h, "campus")
        for h in node_hosts:
            net.add_host(h, "cluster")
        for host, port in gateway_pinholes or []:
            cluster_zone.outbound.allow(dst=host, port=port)
            net.zone_of(host).inbound.allow(dst=host, port=port)
        return cls(net, **kwargs)

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> "SimCluster":
        if not self._started:
            self.scheduler.start()
            self._started = True
        return self

    def stop(self) -> None:
        for host in self._hosts.values():
            host.kill_all()
        self.scheduler.stop()
        self.transport.close_all()
        self._started = False

    def __enter__(self) -> "SimCluster":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    # -- host access ------------------------------------------------------------

    def host(self, name: str) -> SimHost:
        host = self._hosts.get(name)
        if host is None:
            raise NoSuchHostError(name)
        return host

    def hosts(self) -> list[SimHost]:
        return [self._hosts[n] for n in sorted(self._hosts)]

    # -- message routing (SendMsg syscall) -----------------------------------------

    def route_message(self, sender: SimProcess, syscall: SendMsg) -> None:
        """Deliver a process-to-process message.

        Messages to nonexistent hosts are a simulation error (programs
        address peers by records they received, so this is a bug);
        messages to exited processes are silently dropped (Unix-like).
        """
        host = self._hosts.get(syscall.dst_host)
        if host is None:
            raise SimulationError(
                f"message from {sender!r} to unknown host {syscall.dst_host!r}"
            )
        try:
            target = host.get_process(syscall.dst_pid)
        except Exception:
            return  # pid never existed or was reaped: drop, like a closed socket
        target.deliver_message(
            MsgRecord(
                src_host=sender.host.name,
                src_pid=sender.pid,
                tag=syscall.tag,
                payload=syscall.payload,
            )
        )

    # -- services (syscall extensibility) ---------------------------------------------

    def register_service(self, name: str, handler: ServiceHandler) -> None:
        with self._lock:
            if name in self._services:
                raise ValueError(f"service {name!r} already registered")
            self._services[name] = handler

    def call_service(self, name: str, proc: SimProcess, args: dict[str, Any]) -> Any:
        with self._lock:
            handler = self._services.get(name)
        if handler is None:
            raise SimulationError(f"process {proc!r} invoked unknown service {name!r}")
        return handler(proc, args)

    # -- diagnostics -------------------------------------------------------------------

    def total_process_count(self, *, alive_only: bool = True) -> int:
        return sum(len(h.processes(alive_only=alive_only)) for h in self.hosts())
