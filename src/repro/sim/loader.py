"""Executable registry and the standard library of workload programs.

The Condor-like starter launches jobs by name (``executable = foo`` in a
submit file); this registry is the simulated filesystem of executables.
The built-ins cover the workload shapes the paper's scenarios need:
CPU-bound jobs, a multi-phase program with a deliberate bottleneck (for
the Performance Consultant), stdio-driven jobs, long-running servers
(for attach mode), and failure injection.
"""

from __future__ import annotations

import threading
from typing import Callable

from repro.sim import syscalls as sc
from repro.sim.syscalls import Program, call

ProgramFactory = Callable[[list[str]], Program]


class ProgramRegistry:
    """Name -> program factory map (the cluster's executable namespace).

    Each executable may carry a *symbol table* — the list of functions a
    tool discovers by "parsing the executable" (what paradynd does at
    initialization).  Factories registered without one get the minimal
    ``["main"]``.
    """

    def __init__(self) -> None:
        self._factories: dict[str, ProgramFactory] = {}
        self._symbols: dict[str, list[str]] = {}
        self._lock = threading.Lock()

    def register(
        self,
        name: str,
        factory: ProgramFactory,
        *,
        functions: list[str] | None = None,
    ) -> None:
        with self._lock:
            if name in self._factories:
                raise ValueError(f"executable {name!r} already registered")
            self._factories[name] = factory
            self._symbols[name] = list(functions) if functions else ["main"]

    def resolve(self, name: str) -> ProgramFactory | None:
        with self._lock:
            return self._factories.get(name)

    def symbols(self, name: str) -> list[str]:
        """The executable's function symbols (tool 'symbol table parse')."""
        with self._lock:
            if name not in self._symbols:
                raise KeyError(f"no such executable {name!r}")
            return list(self._symbols[name])

    def names(self) -> list[str]:
        with self._lock:
            return sorted(self._factories)


# ---------------------------------------------------------------------------
# Standard programs
# ---------------------------------------------------------------------------

def _float_arg(argv: list[str], index: int, default: float) -> float:
    try:
        return float(argv[index])
    except (IndexError, ValueError):
        return default


def _int_arg(argv: list[str], index: int, default: int) -> int:
    try:
        return int(argv[index])
    except (IndexError, ValueError):
        return default


def hello(argv: list[str]) -> Program:
    """Print a greeting and exit 0.  ``argv[0]`` customizes the name."""

    def body():
        who = argv[0] if argv else "world"
        yield sc.Print(f"hello, {who}")
        yield sc.Compute(0.01)

    yield from call("main", body())


def cpu_burn(argv: list[str]) -> Program:
    """Burn ``argv[0]`` virtual CPU seconds (default 1.0) in main."""

    def body():
        total = _float_arg(argv, 0, 1.0)
        step = 0.01
        burned = 0.0
        while burned < total:
            yield sc.Compute(min(step, total - burned))
            burned += step

    yield from call("main", body())


def spin(argv: list[str]) -> Program:
    """Run forever (until signalled): the canonical long-running target.

    Virtual CPU is cheap (5 virtual seconds execute in well under a
    millisecond of wall time), so tests that need a process that is
    *still running* when a control operation lands must use an unbounded
    program, not a large ``cpu_burn``.
    """

    def body():
        while True:
            yield sc.Compute(0.001)

    yield from call("main", body())


def phases(argv: list[str]) -> Program:
    """Multi-function program with a deliberate bottleneck in ``compute_b``.

    Structure: main -> init, then ``iterations`` rounds of
    (compute_a: 10%, compute_b: 80%, write_output: 10%), then finish.
    The Performance Consultant should localize the bottleneck to
    ``compute_b``.  argv: [iterations, round_cost].
    """

    iterations = _int_arg(argv, 0, 10)
    round_cost = _float_arg(argv, 1, 0.1)

    def init():
        yield sc.Compute(0.02)

    def compute_a():
        yield sc.Compute(round_cost * 0.1)

    def compute_b():
        yield sc.Compute(round_cost * 0.8)

    def write_output(i: int):
        yield sc.Compute(round_cost * 0.1)
        yield sc.Print(f"round {i} done")

    def finish():
        yield sc.Compute(0.02)
        yield sc.Print("all rounds complete")

    def body():
        yield from call("init", init())
        for i in range(iterations):
            yield from call("compute_a", compute_a())
            yield from call("compute_b", compute_b())
            yield from call("write_output", write_output(i))
        yield from call("finish", finish())

    yield from call("main", body())


def io_loop(argv: list[str]) -> Program:
    """I/O-bound workload: each round mostly *waits* (Sleep = blocked I/O)
    in ``fetch`` and briefly computes in ``process_data``.

    The Performance Consultant's why-axis target: low CPU utilization,
    blocking concentrated in ``fetch``.  argv: [rounds, round_wall].
    """

    rounds = _int_arg(argv, 0, 10)
    round_wall = _float_arg(argv, 1, 0.1)

    def fetch():
        # 85% of the round is blocked waiting (disk/network analogue).
        yield sc.Sleep(round_wall * 0.85)
        yield sc.Compute(round_wall * 0.03)

    def process_data():
        yield sc.Compute(round_wall * 0.12)

    def body():
        for _i in range(rounds):
            yield from call("fetch", fetch())
            yield from call("process_data", process_data())
        yield sc.Print("io_loop complete")

    yield from call("main", body())


def echo_stdin(argv: list[str]) -> Program:
    """Echo stdin lines to stdout until EOF (stdio-management tests)."""

    def body():
        while True:
            line = yield sc.ReadLine()
            if line is None:
                break
            yield sc.Print(f"echo: {line}")
            yield sc.Compute(0.001)

    yield from call("main", body())


def server_loop(argv: list[str]) -> Program:
    """Long-running request server: the attach-mode target.

    Replies to each ``request`` message; exits on a ``shutdown`` message.
    Computes a little per request so CPU accrues while it runs.
    """

    def handle(msg):
        yield sc.Compute(0.02)
        yield sc.SendMsg(
            msg.src_host, msg.src_pid, tag="reply", payload=msg.payload
        )

    def body():
        served = 0
        while True:
            msg = yield sc.RecvMsg()
            if msg.tag == "shutdown":
                yield sc.Print(f"served {served} requests")
                return
            yield from call("handle_request", handle(msg))
            served += 1

    yield from call("main", body())


def sleeper(argv: list[str]) -> Program:
    """Sleep (virtual) ``argv[0]`` seconds, then exit (default 1.0)."""

    def body():
        yield sc.Sleep(_float_arg(argv, 0, 1.0))

    yield from call("main", body())


def crasher(argv: list[str]) -> Program:
    """Compute briefly then raise — fault-injection workload."""

    def body():
        yield sc.Compute(0.01)
        raise RuntimeError("injected crash")

    yield from call("main", body())


def exiter(argv: list[str]) -> Program:
    """Exit immediately with code ``argv[0]`` (default 0)."""

    def body():
        yield sc.Compute(0.001)
        yield sc.ExitProgram(_int_arg(argv, 0, 0))

    yield from call("main", body())


def introspect(argv: list[str]) -> Program:
    """Print pid/args/env — exercises the info syscalls."""

    def body():
        pid = yield sc.GetPid()
        args = yield sc.GetArgs()
        home = yield sc.GetEnv("HOME")
        yield sc.Print(f"pid={pid} args={' '.join(args)} home={home}")

    yield from call("main", body())


def default_registry() -> ProgramRegistry:
    """Registry pre-loaded with the standard programs."""
    registry = ProgramRegistry()
    for name, factory, functions in [
        ("hello", hello, ["main"]),
        ("cpu_burn", cpu_burn, ["main"]),
        ("spin", spin, ["main"]),
        (
            "phases",
            phases,
            ["main", "init", "compute_a", "compute_b", "write_output", "finish"],
        ),
        ("io_loop", io_loop, ["main", "fetch", "process_data"]),
        ("echo_stdin", echo_stdin, ["main"]),
        ("server_loop", server_loop, ["main", "handle_request"]),
        ("sleeper", sleeper, ["main"]),
        ("crasher", crasher, ["main"]),
        ("exiter", exiter, ["main"]),
        ("introspect", introspect, ["main"]),
    ]:
        registry.register(name, factory, functions=functions)
    # "foo" — the executable name used throughout the paper's examples
    # (Figure 5B submits "executable = foo"); alias of the multi-phase
    # workload so monitored pilot runs have something worth profiling.
    registry.register(
        "foo",
        phases,
        functions=["main", "init", "compute_a", "compute_b", "write_output", "finish"],
    )
    return registry
