"""paradynd: the Paradyn tool daemon (the pilot's RT back-end).

One paradynd runs per application process.  Under TDP (the ``-a%pid``
argument marks it, Section 4.3) its launch sequence is exactly Figure 6
steps 3–4:

1. ``tdp_init`` against the host's LASS, in the job's context;
2. blocking ``tdp_get("pid")`` — parked until the starter's ``tdp_put``;
3. ``tdp_attach`` (via the RM, which owns control);
4. initialization while the application is stopped pre-``main``: "load"
   the runtime library, parse the executable's symbols, insert base
   instrumentation, connect to the front-end;
5. ``tdp_continue_process`` — run the application to the start of
   ``main`` (a breakpoint), report, then (on the user's run command, or
   immediately with ``auto_run``) continue for real;
6. sample enabled metrics periodically, stream them to the front-end,
   and heartbeat until the application exits.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

from repro import errors
from repro.condor.tools import ThreadToolHandle, ToolLaunchContext
from repro.net.address import Endpoint
from repro.paradyn.dyninst import DyninstEngine
from repro.paradyn.metrics import Metric, MetricCollector
from repro.tdp.api import (
    tdp_attach,
    tdp_continue_process,
    tdp_exit,
    tdp_get,
    tdp_init,
)
from repro.tdp.faults import heartbeat_item
from repro.tdp.handle import Role, TdpHandle
from repro.tdp.proxycfg import connect_to_frontend
from repro.tdp.wellknown import Attr, ProcStatus
from repro.transport.base import Channel
from repro.util.log import get_logger
from repro.util.threads import spawn

_log = get_logger("paradyn.daemon")


@dataclass
class ParadyndArgs:
    """Parsed paradynd command line (the Fig. 5B argument set)."""

    flavor: str = "unix"          # -z<flavor>
    log_level: int = 0            # -l<n>
    frontend_host: str | None = None  # -m<host>
    port1: int | None = None      # -p<port>
    port2: int | None = None      # -P<port>
    app_ref: str | None = None    # -a<pid or %pid>
    extras: list[str] = field(default_factory=list)

    @property
    def tdp_mode(self) -> bool:
        """``-a%pid`` means: the pid comes from the attribute space."""
        return self.app_ref is not None and self.app_ref.startswith("%")

    @property
    def frontend_endpoint(self) -> Endpoint | None:
        if self.frontend_host and self.port1:
            return Endpoint(self.frontend_host, self.port1)
        return None


def parse_paradynd_args(args: list[str]) -> ParadyndArgs:
    """Parse the pilot's paradynd argument conventions."""
    parsed = ParadyndArgs()
    for arg in args:
        if arg.startswith("-z"):
            parsed.flavor = arg[2:]
        elif arg.startswith("-l"):
            try:
                parsed.log_level = int(arg[2:])
            except ValueError:
                raise errors.ToolError(f"bad log level argument {arg!r}") from None
        elif arg.startswith("-m"):
            parsed.frontend_host = arg[2:]
        elif arg.startswith("-p"):
            parsed.port1 = int(arg[2:])
        elif arg.startswith("-P"):
            parsed.port2 = int(arg[2:])
        elif arg.startswith("-a"):
            parsed.app_ref = arg[2:]
        else:
            parsed.extras.append(arg)
    return parsed


class ParadynDaemon:
    """One paradynd instance (runs on a tool-registry thread)."""

    SAMPLE_INTERVAL = 0.01  # wall seconds between sample batches

    def __init__(
        self,
        ctx: ToolLaunchContext,
        *,
        auto_run: bool = True,
        base_metrics: tuple[Metric, ...] = (
            Metric.PROC_CPU,
            Metric.PROC_WALL,
            Metric.CPU_UTILIZATION,
        ),
    ):
        self.ctx = ctx
        self.args = parse_paradynd_args(ctx.args)
        self.auto_run = auto_run
        self.base_metrics = base_metrics
        # Startup-sequenced publishes: the tool main thread writes each
        # once during initialization; the command loop is only spawned
        # after frontend/handle/app_pid are in place.
        # tdp-guard: handle -> volatile
        self.handle: TdpHandle | None = None
        self.engine: DyninstEngine | None = None
        self.collector: MetricCollector | None = None
        # tdp-guard: frontend -> volatile
        self.frontend: Channel | None = None
        # tdp-guard: app_pid -> volatile
        self.app_pid: int | None = None
        self.symbols: list[str] = []
        self.run_command = threading.Event()
        self._enable_requests: list[tuple[Metric, str | None]] = []
        self._req_lock = threading.Lock()
        self.samples_sent = 0

    # -- trace/report helpers ---------------------------------------------------

    def _record(self, action: str, **details) -> None:
        if self.ctx.trace is not None:
            self.ctx.trace.record("paradynd", action, **details)
        self.ctx.output_sink(f"{action} {details}" if details else action)

    def _send_frontend(self, message: dict) -> None:
        if self.frontend is None:
            return
        try:
            self.frontend.send(message)
        except errors.TdpError:
            self.frontend = None

    # -- the main flow -------------------------------------------------------------

    def run(self, stop_event: threading.Event) -> None:
        ctx = self.ctx
        if not self.args.tdp_mode:
            raise errors.ToolError(
                "paradynd launched without -a%pid: no application reference "
                "and no TDP framework to find one in"
            )
        # Step 3 (Fig. 6): join the TDP framework and block for the pid.
        self._record("tdp_init", context=ctx.context)
        handle = tdp_init(
            ctx.transport,
            ctx.lass_endpoint,
            member=f"paradynd/{ctx.job_id}",
            role=Role.RT,
            context=ctx.context,
            src_host=ctx.host,
        )
        self.handle = handle
        try:
            self._run_inner(handle, stop_event)
        finally:
            if self.collector is not None:
                try:
                    self.collector.disable_all()
                except errors.TdpError:
                    pass
            if self.frontend is not None:
                self._send_frontend({"op": "bye"})
                self.frontend.close()
            self._record("tdp_exit")
            tdp_exit(handle)

    def _run_inner(self, handle: TdpHandle, stop_event: threading.Event) -> None:
        ctx = self.ctx
        self._record("tdp_get", attribute=Attr.PID, blocking=True)
        pid = int(tdp_get(handle, Attr.PID, timeout=60.0))
        self.app_pid = pid
        self._record("tdp_get_returned", attribute=Attr.PID, value=pid)
        executable = tdp_get(handle, Attr.EXECUTABLE_NAME, timeout=10.0)

        # Step 3 continued: attach (the RM performs the stop).
        self._record("tdp_attach", pid=pid)
        tdp_attach(handle, pid)

        # Initialization while the application is stopped (Section 4.2):
        self._record("load_runtime_library", pid=pid)
        host = ctx.extras.get("sim_host")
        if host is None:
            raise errors.ToolError("paradynd needs the sim host for instrumentation")
        registry = host.cluster.registry
        try:
            self.symbols = registry.symbols(executable)
        except KeyError:
            self.symbols = ["main"]
        self._record("parse_symbols", executable=executable, functions=len(self.symbols))

        process = host.get_process(pid)
        self.engine = DyninstEngine(process)
        self.collector = MetricCollector(self.engine, ctx.host)
        for metric in self.base_metrics:
            self.collector.enable(metric)
        # Create mode: the application is stopped pre-main, so we can run
        # it *to* main and stop there (Figure 3A).  Attach mode: it was
        # already executing — "stopped at some unknown point" (Figure
        # 3B) — so there is no pre-main window and no run-to-main step.
        attached_mid_run = process.started
        main_bp = (
            None if attached_mid_run
            else self.engine.insert_breakpoint("main", "entry")
        )

        # Connect to the front-end (args endpoint, else attribute space).
        self._connect_frontend(handle)
        self._send_frontend(
            {
                "op": "hello",
                "job": ctx.job_id,
                "host": ctx.host,
                "pid": pid,
                "executable": executable,
                "functions": self.symbols,
            }
        )

        # Step 3 end: run the application until the beginning of main
        # (create mode); in attach mode it resumes from the attach stop.
        if main_bp is not None:
            self._record("tdp_continue_process", pid=pid, until="main")
            tdp_continue_process(handle, pid)
            main_bp.wait_hit(timeout=30.0)
            self.engine.remove(main_bp)
            self._send_frontend({"op": "app_state", "state": "at_main"})
        else:
            self._record("attached_mid_run", pid=pid, cpu=process.cpu_time)
            self._send_frontend({"op": "app_state", "state": "attached_running"})

        # Step 4: the user (front-end) is in control; honor the run command.
        if not self.auto_run:
            # The pilot's interactive window: the application is stopped
            # at main; the front-end may set up instrumentation before
            # issuing the run command.
            while not self.run_command.wait(timeout=0.02):
                if stop_event.is_set():
                    return
                handle.service_events()
                self._apply_enable_requests()
            self._apply_enable_requests()
        self._record("tdp_continue_process", pid=pid, until="completion")
        try:
            tdp_continue_process(handle, pid)
        except errors.ProcessError:
            pass  # application may have been stopped/exited under us
        self._send_frontend({"op": "app_state", "state": "running"})

        # Sampling loop until application exit (status via the space).
        while not stop_event.is_set():
            handle.service_events()
            self._apply_enable_requests()
            self._emit_samples()
            try:
                status = handle.attrs.try_get(Attr.proc_status(pid))
            except errors.NoSuchAttributeError:
                status = ProcStatus.RUNNING
            except errors.TdpError:
                break
            if ProcStatus.is_exited(status):
                self._emit_samples(final=True)
                self._send_frontend(
                    {"op": "app_exited", "code": ProcStatus.exit_code(status)}
                )
                self._record("app_exited", code=ProcStatus.exit_code(status))
                self._write_trace_file()
                return
            stop_event.wait(self.SAMPLE_INTERVAL)

    # -- front-end link ---------------------------------------------------------------

    def _connect_frontend(self, handle: TdpHandle) -> None:
        endpoint = self.args.frontend_endpoint
        try:
            if endpoint is not None:
                from repro.tdp.proxycfg import proxy_endpoint
                from repro.transport.proxy import connect_maybe_proxied

                self.frontend = connect_maybe_proxied(
                    self.ctx.transport, self.ctx.host, endpoint,
                    proxy_endpoint(handle), timeout=10.0,
                )
            else:
                self.frontend = connect_to_frontend(
                    handle, self.ctx.transport, self.ctx.host, timeout=5.0
                )
        except errors.TdpError as e:
            # Standalone operation: keep measuring even without a front-end.
            _log.warning("paradynd %s: no front-end (%s)", self.ctx.job_id, e)
            self.frontend = None
            return
        self._record("frontend_connected", endpoint=str(self.frontend.remote_host))
        spawn(self._command_loop, name=f"paradynd-cmd-{self.ctx.job_id}")

    def _command_loop(self) -> None:
        channel = self.frontend
        if channel is None:
            return
        try:
            while True:
                message = channel.recv()
                op = message.get("op")
                if op == "cmd_run":
                    self.run_command.set()
                elif op == "cmd_enable_metric":
                    metric = Metric(str(message.get("metric")))
                    function = message.get("function")
                    with self._req_lock:
                        self._enable_requests.append((metric, function))
                elif op == "cmd_kill":
                    if self.handle is not None and self.app_pid is not None:
                        from repro.tdp.api import tdp_kill

                        tdp_kill(self.handle, self.app_pid)
        except errors.TdpError:
            return

    def _apply_enable_requests(self) -> None:
        with self._req_lock:
            requests, self._enable_requests = self._enable_requests, []
        assert self.collector is not None
        for metric, function in requests:
            try:
                self.collector.enable(metric, function)
                self._record("enable_metric", metric=metric.value, function=function)
            except errors.TdpError as e:
                self._send_frontend({"op": "error", "error": str(e)})

    def _emit_samples(self, final: bool = False) -> None:
        assert self.collector is not None
        samples = self.collector.sample_all()
        for sample in samples:
            self.samples_sent += 1
            self._send_frontend(
                {
                    "op": "sample",
                    "metric": sample.metric,
                    "focus": sample.focus,
                    "value": sample.value,
                    "time": sample.time,
                    "final": final,
                }
            )
        # Publish the whole sampling pass — every value plus this pass's
        # heartbeat — to the attribute space in one batched frame, so
        # other TDP participants see live data without per-sample RPCs.
        if self.handle is None:
            return
        items: list[tuple[str, str, bool]] = [
            (Attr.metric_sample(s.metric, s.focus), f"{s.value:.6f}", True)
            for s in samples
        ]
        items.append(heartbeat_item(f"paradynd/{self.ctx.job_id}"))
        try:
            self.handle.attrs.put_many(items)
        except errors.TdpError:
            pass  # space gone: the status check in the loop will notice

    def _write_trace_file(self) -> None:
        """Leave a summary data file behind for TDP's stage-out path."""
        host = self.ctx.extras.get("sim_host")
        if host is None or self.collector is None:
            return
        lines = [
            f"{s.metric} {s.focus} {s.value:.6f}"
            for s in self.collector.sample_all()
        ]
        host.filesystem[f"paradyn.{self.ctx.job_id}.trace"] = "\n".join(lines) + "\n"


def launch_paradynd(ctx: ToolLaunchContext, **daemon_kwargs) -> ThreadToolHandle:
    """ToolRegistry launcher for ``paradynd`` (register under that name)."""
    daemon = ParadynDaemon(ctx, **daemon_kwargs)
    handle = ThreadToolHandle(f"paradynd-{ctx.job_id}", daemon.run)
    handle.daemon = daemon  # type: ignore[attr-defined] — exposed for tests
    return handle
