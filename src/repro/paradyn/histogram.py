"""Paradyn's fixed-size time histogram with bin folding.

Paradyn stores each metric/focus time series in a *fixed* number of bins;
when the execution outgrows the covered interval, the histogram **folds**:
bin width doubles and adjacent bin pairs merge.  Memory stays constant
for arbitrarily long runs while early data keeps (coarser) resolution —
the property that let Paradyn monitor long-running parallel jobs.

Two accumulation modes:

* ``sum`` — the bin holds the sum of values landing in it (counts,
  deltas);
* ``last`` — the bin holds the most recent value (gauge-style metrics
  like cumulative CPU).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class BinView:
    """One bin of a histogram snapshot."""

    start: float
    width: float
    value: float
    samples: int


class TimeHistogram:
    """Fixed-bin-count, folding time histogram.

    >>> h = TimeHistogram(bins=4, initial_bin_width=1.0)
    >>> for t in range(8):
    ...     h.add(float(t), 1.0)
    >>> h.bin_width   # folded once: 4 bins of 2s cover [0, 8)
    2.0
    >>> h.total()
    8.0
    """

    def __init__(
        self,
        *,
        bins: int = 100,
        initial_bin_width: float = 0.01,
        mode: str = "sum",
    ):
        if bins < 2 or bins % 2 != 0:
            raise ValueError("bins must be an even number >= 2")
        if initial_bin_width <= 0:
            raise ValueError("initial_bin_width must be positive")
        if mode not in ("sum", "last"):
            raise ValueError(f"unknown mode {mode!r}")
        self.bins = bins
        # tdp-guard: bin_width -> volatile
        # (folded only by the sampling thread; cross-thread span/value
        # queries are diagnostic and tolerate a one-fold-stale width)
        self.bin_width = float(initial_bin_width)
        self.mode = mode
        self._values = [0.0] * bins
        self._counts = [0] * bins
        self.folds = 0
        self._total_samples = 0

    # -- accumulation ----------------------------------------------------------

    def add(self, t: float, value: float) -> None:
        """Record ``value`` at time ``t`` (seconds from the series origin)."""
        if t < 0:
            raise ValueError(f"negative time {t}")
        while t >= self.bins * self.bin_width:
            self._fold()
        index = int(t / self.bin_width)
        if self.mode == "sum":
            self._values[index] += value
        else:  # last
            self._values[index] = value
        self._counts[index] += 1
        self._total_samples += 1

    def _fold(self) -> None:
        """Double the bin width; merge adjacent pairs into the lower half."""
        half = self.bins // 2
        new_values = [0.0] * self.bins
        new_counts = [0] * self.bins
        for i in range(half):
            a, b = self._values[2 * i], self._values[2 * i + 1]
            ca, cb = self._counts[2 * i], self._counts[2 * i + 1]
            if self.mode == "sum":
                new_values[i] = a + b
            else:  # last: the later bin wins if it has data
                new_values[i] = b if cb else a
            new_counts[i] = ca + cb
        self._values = new_values
        self._counts = new_counts
        self.bin_width *= 2.0
        self.folds += 1

    # -- queries ------------------------------------------------------------------

    @property
    def span(self) -> float:
        """Seconds of execution the histogram currently covers."""
        return self.bins * self.bin_width

    @property
    def sample_count(self) -> int:
        return self._total_samples

    def total(self) -> float:
        """Sum over all bins (mode 'sum' only makes this meaningful)."""
        return sum(self._values)

    def value_at(self, t: float) -> float:
        """Value of the bin containing time ``t`` (0.0 beyond the span)."""
        if t < 0:
            raise ValueError(f"negative time {t}")
        index = int(t / self.bin_width)
        if index >= self.bins:
            return 0.0
        return self._values[index]

    def nonempty_bins(self) -> list[BinView]:
        """Snapshot of bins that received at least one sample."""
        return [
            BinView(
                start=i * self.bin_width,
                width=self.bin_width,
                value=self._values[i],
                samples=self._counts[i],
            )
            for i in range(self.bins)
            if self._counts[i]
        ]

    def series(self) -> list[float]:
        """All bin values, oldest first (for rendering)."""
        return list(self._values)

    @classmethod
    def from_points(
        cls,
        points: list[tuple[float, float]],
        *,
        bins: int = 100,
        mode: str = "last",
    ) -> "TimeHistogram":
        """Build a histogram from (time, value) points (a session series).

        The initial bin width is sized so the first fold happens only if
        the series is longer than expected — but sized from the data, so
        short series keep fine resolution.
        """
        if not points:
            return cls(bins=bins, initial_bin_width=0.01, mode=mode)
        t_max = max(t for t, _v in points)
        # Size so t_max lands inside the last bin (no immediate fold).
        width = max(t_max / (bins - 1), 1e-9) if t_max > 0 else 0.01
        hist = cls(bins=bins, initial_bin_width=width, mode=mode)
        for t, v in points:
            hist.add(max(0.0, t), v)
        return hist
