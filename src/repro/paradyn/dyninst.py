"""Dyninst-like dynamic instrumentation engine.

Inserts and removes probes in a *running* (or stopped) simulated process
at function entry/exit points — the run-time code patching capability
Paradyn is built on.  Three probe kinds cover what the tool needs:

* **counters** — how many times a point was reached;
* **timers** — inclusive CPU time of a function (entry/exit pair);
* **breakpoints** — stop the process when a point is reached (how
  paradynd runs the application "until the beginning of main").

All probe state is engine-side; the process only carries the probe
callbacks, so removing instrumentation really removes the overhead —
the property Paradyn's design stresses.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

from repro.errors import InstrumentationError
from repro.sim.process import ProbePoint, SimProcess, StopReason
from repro.util.ids import IdAllocator


@dataclass
class CounterHandle:
    probe_id: int
    function: str
    where: str

    def __post_init__(self) -> None:
        self._count = 0
        self._lock = threading.Lock()

    def increment(self) -> None:
        with self._lock:
            self._count += 1

    @property
    def count(self) -> int:
        with self._lock:
            return self._count


@dataclass
class TimerHandle:
    entry_probe_id: int
    exit_probe_id: int
    function: str

    def __post_init__(self) -> None:
        self._lock = threading.Lock()
        self._accumulated = 0.0
        self._accumulated_wall = 0.0
        #: stacks for recursion safety: (cpu_at_entry, wall_at_entry)
        self._entry_marks: list[tuple[float, float]] = []
        self._calls = 0

    def on_entry(self, cpu_now: float, wall_now: float = 0.0) -> None:
        with self._lock:
            self._entry_marks.append((cpu_now, wall_now))

    def on_exit(self, cpu_now: float, wall_now: float = 0.0) -> None:
        with self._lock:
            if not self._entry_marks:
                return  # attached mid-call: ignore the unmatched exit
            cpu_start, wall_start = self._entry_marks.pop()
            self._accumulated += cpu_now - cpu_start
            self._accumulated_wall += wall_now - wall_start
            self._calls += 1

    @property
    def inclusive_cpu(self) -> float:
        """CPU seconds spent inside the function (completed calls)."""
        with self._lock:
            return self._accumulated

    @property
    def inclusive_wall(self) -> float:
        """Wall (virtual) seconds inside the function; the excess over
        :attr:`inclusive_cpu` is blocked/waiting time."""
        with self._lock:
            return self._accumulated_wall

    @property
    def calls(self) -> int:
        with self._lock:
            return self._calls


@dataclass
class BreakpointHandle:
    probe_id: int
    function: str
    where: str

    def __post_init__(self) -> None:
        self.hit_event = threading.Event()
        self.hits = 0

    def wait_hit(self, timeout: float | None = None) -> bool:
        return self.hit_event.wait(timeout)


class DyninstEngine:
    """Instrumentation session on one target process."""

    def __init__(self, process: SimProcess):
        self._process = process
        self._ids = IdAllocator()
        self._owned: set[int] = set()
        self._lock = threading.Lock()

    @property
    def process(self) -> SimProcess:
        return self._process

    # -- probe insertion ---------------------------------------------------------

    def insert_counter(self, function: str, where: str = "entry") -> CounterHandle:
        if where not in ("entry", "exit"):
            raise InstrumentationError(f"bad probe location {where!r}")
        handle = CounterHandle(self._ids.next(), function, where)

        def action(_proc: SimProcess, _func: str, _where: str) -> None:
            handle.increment()

        self._insert(ProbePoint(handle.probe_id, function, where, action))
        return handle

    def insert_timer(self, function: str) -> TimerHandle:
        entry_id = self._ids.next()
        exit_id = self._ids.next()
        handle = TimerHandle(entry_id, exit_id, function)

        def on_entry(proc: SimProcess, _func: str, _where: str) -> None:
            handle.on_entry(proc.cpu_time, proc.host.cluster.clock.now())

        def on_exit(proc: SimProcess, _func: str, _where: str) -> None:
            handle.on_exit(proc.cpu_time, proc.host.cluster.clock.now())

        self._insert(ProbePoint(entry_id, function, "entry", on_entry))
        try:
            self._insert(ProbePoint(exit_id, function, "exit", on_exit))
        except InstrumentationError:
            self._remove_id(entry_id)
            raise
        return handle

    def insert_breakpoint(self, function: str, where: str = "entry") -> BreakpointHandle:
        if where not in ("entry", "exit"):
            raise InstrumentationError(f"bad probe location {where!r}")
        handle = BreakpointHandle(self._ids.next(), function, where)

        def action(proc: SimProcess, _func: str, _where: str) -> None:
            handle.hits += 1
            handle.hit_event.set()
            proc.request_stop(StopReason.BREAKPOINT)

        self._insert(ProbePoint(handle.probe_id, function, where, action))
        return handle

    def _insert(self, probe: ProbePoint) -> None:
        try:
            self._process.insert_probe(probe)
        except Exception as e:
            raise InstrumentationError(
                f"cannot instrument {probe.function}:{probe.where}: {e}"
            ) from e
        with self._lock:
            self._owned.add(probe.probe_id)

    # -- probe removal -------------------------------------------------------------

    def remove(self, handle: CounterHandle | TimerHandle | BreakpointHandle) -> None:
        """Remove a probe (both probes for a timer)."""
        if isinstance(handle, TimerHandle):
            self._remove_id(handle.entry_probe_id)
            self._remove_id(handle.exit_probe_id)
        else:
            self._remove_id(handle.probe_id)

    def _remove_id(self, probe_id: int) -> None:
        self._process.remove_probe(probe_id)
        with self._lock:
            self._owned.discard(probe_id)

    def remove_all(self) -> None:
        with self._lock:
            ids = list(self._owned)
            self._owned.clear()
        for probe_id in ids:
            self._process.remove_probe(probe_id)

    @property
    def active_probe_count(self) -> int:
        with self._lock:
            return len(self._owned)
