"""The Performance Consultant: automated bottleneck search.

Paradyn's W3-style search answers *why* a program is slow, then refines
along the resource hierarchy to *where*.  Our search implements two
why-axis hypotheses over live metric data:

* **CPUBound** — CPU utilization (process CPU / wall) at or above the
  CPU threshold: the program is busy computing; refine with per-function
  ``cpu_fraction``.
* **ExcessiveBlockingTime** — utilization below the threshold: the
  program mostly waits (I/O, synchronization); refine with per-function
  ``io_fraction`` (blocked time attributed to the function where it
  occurs).

Refinement instrumentation is enabled *through the live daemon* (the
Dyninst capability).  Against our fast virtual programs, the consultant
sets the instrumentation up at the pilot's natural stop point — the
application paused at ``main`` (``auto_run=False``) — and then presses
RUN on the user's behalf; against an already-running application the
enables apply mid-run and cover the remainder of the execution.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.paradyn.frontend import DaemonSession
from repro.paradyn.metrics import Metric


@dataclass
class Hypothesis:
    """One tested (hypothesis, focus) node of the search."""

    name: str
    focus: str
    value: float
    threshold: float
    confirmed: bool


@dataclass
class SearchResult:
    """Outcome of one Performance Consultant search."""

    tested: list[Hypothesis] = field(default_factory=list)
    why: str | None = None  # "CPUBound" | "ExcessiveBlockingTime"
    bottlenecks: list[str] = field(default_factory=list)  # function names
    refinement_path: list[str] = field(default_factory=list)

    def format(self) -> str:
        lines = ["Performance Consultant search:"]
        for h in self.tested:
            mark = "TRUE " if h.confirmed else "false"
            lines.append(
                f"  [{mark}] {h.name:<22} @ {h.focus:<28} "
                f"value={h.value:.4f} thresh={h.threshold}"
            )
        lines.append(f"  why: {self.why or '(inconclusive)'}")
        lines.append(f"  bottleneck(s): {', '.join(self.bottlenecks) or '(none)'}")
        return "\n".join(lines)


class PerformanceConsultant:
    """Runs the why/where search against one connected paradynd session."""

    def __init__(
        self,
        session: DaemonSession,
        *,
        cpu_fraction_threshold: float = 0.2,
        io_fraction_threshold: float = 0.2,
        utilization_threshold: float = 0.5,
        settle_timeout: float = 20.0,
    ):
        self._session = session
        self.cpu_threshold = cpu_fraction_threshold
        self.io_threshold = io_fraction_threshold
        self.utilization_threshold = utilization_threshold
        self._settle_timeout = settle_timeout

    def search(self, functions: list[str] | None = None) -> SearchResult:
        """Run the two-level why/where search; returns the result tree."""
        session = self._session
        result = SearchResult()
        candidates = functions if functions is not None else [
            f for f in session.functions if f != "main"
        ]

        # Enable both refinement metrics up front (we do not yet know
        # which why-hypothesis will hold; instrumenting both lenses costs
        # two timers per function).
        for function in candidates:
            session.cmd_enable_metric(Metric.CPU_FRACTION, function)
            session.cmd_enable_metric(Metric.IO_FRACTION, function)
        if session.app_state == "at_main":
            # Wait for the daemon to apply the enables at its safe point,
            # then press RUN on the user's behalf (the pilot's flow).
            time.sleep(0.1)
            session.cmd_run()

        # Let samples settle (ideally until the app exits).
        deadline = time.monotonic() + self._settle_timeout
        while time.monotonic() < deadline and session.app_state != "exited":
            time.sleep(0.01)

        # -- Level 1 (why) -------------------------------------------------
        utilization = session.latest(Metric.CPU_UTILIZATION.value) or 0.0
        focus = f"{session.host}:{session.pid}"
        cpu_bound = utilization >= self.utilization_threshold
        result.tested.append(
            Hypothesis(
                name="CPUBound",
                focus=focus,
                value=utilization,
                threshold=self.utilization_threshold,
                confirmed=cpu_bound,
            )
        )
        result.tested.append(
            Hypothesis(
                name="ExcessiveBlockingTime",
                focus=focus,
                value=1.0 - utilization,
                threshold=1.0 - self.utilization_threshold,
                confirmed=not cpu_bound and utilization > 0.0,
            )
        )
        if (session.latest(Metric.PROC_CPU.value) or 0.0) <= 0.0:
            return result  # nothing measurable ran
        result.why = "CPUBound" if cpu_bound else "ExcessiveBlockingTime"
        result.refinement_path.append(result.why)

        # -- Level 2 (where) -------------------------------------------------
        metric, threshold = (
            (Metric.CPU_FRACTION, self.cpu_threshold)
            if cpu_bound
            else (Metric.IO_FRACTION, self.io_threshold)
        )
        for function in candidates:
            value = session.latest(metric.value, function)
            confirmed = value is not None and value >= threshold
            result.tested.append(
                Hypothesis(
                    name=result.why,
                    focus=f"{focus}/{function}",
                    value=value or 0.0,
                    threshold=threshold,
                    confirmed=confirmed,
                )
            )
            if confirmed:
                result.bottlenecks.append(function)

        result.bottlenecks.sort(
            key=lambda f: -(session.latest(metric.value, f) or 0.0)
        )
        if result.bottlenecks:
            result.refinement_path.append(result.bottlenecks[0])
        return result
