"""Paradyn-like parallel performance tool (the pilot's RT, Section 4.2).

"Two of its major technologies are the ability to automatically search
for performance bottlenecks (Performance Consultant) and dynamically
inserting and removing instrumentation in the application program at
run time (Dyninst)."

* :mod:`~repro.paradyn.dyninst` — run-time probe insertion/removal into
  (simulated) processes: counters, timers, breakpoints.
* :mod:`~repro.paradyn.metrics` — metric definitions over foci
  (process, function): CPU time, call counts, fractions.
* :mod:`~repro.paradyn.daemon` — ``paradynd``, the per-host agent: TDP
  handshake, symbol parse, instrumentation, sampling, front-end link.
* :mod:`~repro.paradyn.frontend` — ``paradyn``, the user's process:
  accepts daemon connections, collects samples, issues commands.
* :mod:`~repro.paradyn.consultant` — the Performance Consultant's
  refinement search over live metric data.
"""

from repro.paradyn.dyninst import DyninstEngine
from repro.paradyn.metrics import Metric, MetricSample
from repro.paradyn.daemon import ParadynDaemon, parse_paradynd_args
from repro.paradyn.frontend import ParadynFrontend
from repro.paradyn.consultant import PerformanceConsultant, SearchResult

__all__ = [
    "DyninstEngine",
    "Metric",
    "MetricSample",
    "ParadynDaemon",
    "parse_paradynd_args",
    "ParadynFrontend",
    "PerformanceConsultant",
    "SearchResult",
]
