"""paradyn: the tool front-end and user interface process.

"Paradyn contains the user interface that allows the user to display
performance data visualizations, use the Performance Consultant to
automatically find bottlenecks, start or stop the application, and
monitor the status of the application.  The paradynds operate under the
control of paradyn" (Section 4.2).

The front-end listens on the submit-side host; each paradynd dials in
(directly or through the RM proxy), introduces itself, and streams
metric samples.  The front-end can push commands back: run, enable a
metric on a focus, kill.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

from repro import errors
from repro.net.address import Endpoint
from repro.paradyn.metrics import Metric
from repro.transport.base import Channel, Transport
from repro.util.log import get_logger
from repro.util.threads import spawn

_log = get_logger("paradyn.frontend")


@dataclass
class DaemonSession:
    """Front-end-side state for one connected paradynd."""

    daemon_id: int
    job: str
    host: str
    pid: int
    executable: str
    functions: list[str]
    channel: Channel
    app_state: str = "attached"
    exit_code: int | None = None
    #: (metric, focus) -> list of (time, value), appended as samples arrive
    series: dict[tuple[str, str], list[tuple[float, float]]] = field(
        default_factory=dict
    )
    state_changed: threading.Condition = field(
        default_factory=threading.Condition, repr=False
    )

    def latest(self, metric: str, focus_suffix: str | None = None) -> float | None:
        """Latest value of a metric, optionally filtered by focus suffix
        (e.g. a function name)."""
        best: tuple[float, float] | None = None
        with self.state_changed:
            for (m, focus), points in self.series.items():
                if m != metric or not points:
                    continue
                if focus_suffix is not None and not focus.endswith("/" + focus_suffix):
                    continue
                if focus_suffix is None and "/" in focus.split(":", 1)[-1]:
                    # whole-process query must not match function foci
                    if focus.count("/") > 0:
                        continue
                if best is None or points[-1][0] >= best[0]:
                    best = points[-1]
        return best[1] if best else None

    def histogram(self, metric: str, focus_suffix: str | None = None):
        """The series as a Paradyn-style folding time histogram.

        Constant-memory view of arbitrarily long runs; see
        :mod:`repro.paradyn.histogram`.
        """
        from repro.paradyn.histogram import TimeHistogram

        with self.state_changed:
            for (m, focus), points in self.series.items():
                if m != metric:
                    continue
                if focus_suffix is not None and not focus.endswith(
                    "/" + focus_suffix
                ):
                    continue
                if focus_suffix is None and focus.count("/") > 0:
                    continue
                return TimeHistogram.from_points(list(points), mode="last")
        return TimeHistogram.from_points([], mode="last")

    def wait_state(self, *states: str, timeout: float | None = None) -> str:
        with self.state_changed:
            ok = self.state_changed.wait_for(
                lambda: self.app_state in states, timeout=timeout
            )
            if not ok:
                raise errors.GetTimeoutError(
                    f"daemon {self.daemon_id} app_state={self.app_state}, "
                    f"wanted {states}"
                )
            return self.app_state

    # -- commands -----------------------------------------------------------------

    def cmd_run(self) -> None:
        self.channel.send({"op": "cmd_run"})

    def cmd_enable_metric(self, metric: Metric, function: str | None) -> None:
        self.channel.send(
            {"op": "cmd_enable_metric", "metric": metric.value, "function": function}
        )

    def cmd_kill(self) -> None:
        self.channel.send({"op": "cmd_kill"})


class ParadynFrontend:
    """The listening front-end; one per user session."""

    def __init__(self, transport: Transport, host: str, port: int = 0):
        self._transport = transport
        self.host = host
        self._listener = transport.listen(host, port)
        self._daemons: dict[int, DaemonSession] = {}
        self._next_id = 0
        self._lock = threading.Lock()
        self._daemon_arrived = threading.Condition(self._lock)
        # tdp-guard: _stopped -> volatile
        # (monotonic stop latch: set once by stop(), polled by the loop)
        self._stopped = False
        spawn(self._accept_loop, name=f"paradyn-frontend-{host}")

    @property
    def endpoint(self) -> Endpoint:
        return self._listener.endpoint

    def stop(self) -> None:
        self._stopped = True
        self._listener.close()
        with self._lock:
            sessions = list(self._daemons.values())
        for session in sessions:
            session.channel.close()

    # -- daemon registry ------------------------------------------------------------

    def daemons(self) -> list[DaemonSession]:
        with self._lock:
            return [self._daemons[k] for k in sorted(self._daemons)]

    def wait_for_daemons(self, count: int, timeout: float | None = 30.0) -> list[DaemonSession]:
        with self._daemon_arrived:
            ok = self._daemon_arrived.wait_for(
                lambda: len(self._daemons) >= count, timeout=timeout
            )
            if not ok:
                raise errors.GetTimeoutError(
                    f"only {len(self._daemons)}/{count} paradynds connected"
                )
            return [self._daemons[k] for k in sorted(self._daemons)]

    # -- wire handling ------------------------------------------------------------------

    def _accept_loop(self) -> None:
        while not self._stopped:
            try:
                channel = self._listener.accept()
            except errors.TdpError:
                return
            spawn(self._serve_daemon, args=(channel,), name="paradyn-frontend-conn")

    def _serve_daemon(self, channel: Channel) -> None:
        try:
            hello = channel.recv(timeout=30.0)
        except errors.TdpError:
            channel.close()
            return
        if hello.get("op") != "hello":
            channel.close()
            return
        with self._lock:
            self._next_id += 1
            session = DaemonSession(
                daemon_id=self._next_id,
                job=str(hello.get("job", "?")),
                host=str(hello.get("host", "?")),
                pid=int(hello.get("pid", -1)),
                executable=str(hello.get("executable", "?")),
                functions=list(hello.get("functions", [])),
                channel=channel,
            )
            self._daemons[session.daemon_id] = session
            self._daemon_arrived.notify_all()
        _log.info("paradynd connected: job=%s pid=%s", session.job, session.pid)
        try:
            while True:
                message = channel.recv()
                self._handle(session, message)
        except errors.TdpError:
            pass

    def _handle(self, session: DaemonSession, message: dict) -> None:
        op = message.get("op")
        if op == "sample":
            key = (str(message.get("metric")), str(message.get("focus")))
            point = (float(message.get("time", 0.0)), float(message.get("value", 0.0)))
            with session.state_changed:
                session.series.setdefault(key, []).append(point)
        elif op == "app_state":
            with session.state_changed:
                session.app_state = str(message.get("state"))
                session.state_changed.notify_all()
        elif op == "app_exited":
            with session.state_changed:
                session.app_state = "exited"
                session.exit_code = int(message.get("code", -1))
                session.state_changed.notify_all()
        elif op == "bye":
            pass
        elif op == "error":
            _log.warning("paradynd error: %s", message.get("error"))
