"""Performance-data reporting (Paradyn's table/plot "visis", textual).

Paradyn's front-end offers visualizations of metric/focus time series;
our equivalent renders the collected series as text tables and compact
sparkline-style summaries, suitable for terminals and logs.  Works on
:class:`~repro.paradyn.frontend.DaemonSession` data.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.paradyn.frontend import DaemonSession

_SPARK_CHARS = " .:-=+*#%@"


def sparkline(values: list[float], width: int = 24) -> str:
    """Compact textual rendering of a series' shape."""
    if not values:
        return ""
    if len(values) > width:
        # Downsample by taking the max of each bucket (peaks matter).
        bucket = len(values) / width
        values = [
            max(values[int(i * bucket): max(int((i + 1) * bucket), int(i * bucket) + 1)])
            for i in range(width)
        ]
    lo, hi = min(values), max(values)
    span = hi - lo
    if span <= 0:
        return _SPARK_CHARS[1] * len(values)
    out = []
    for v in values:
        idx = int((v - lo) / span * (len(_SPARK_CHARS) - 1))
        out.append(_SPARK_CHARS[idx])
    return "".join(out)


@dataclass(frozen=True)
class SeriesSummary:
    metric: str
    focus: str
    points: int
    first: float
    last: float
    peak: float
    spark: str


def summarize_session(session: DaemonSession) -> list[SeriesSummary]:
    """One summary row per (metric, focus) series, sorted by focus."""
    rows: list[SeriesSummary] = []
    with session.state_changed:
        series = {k: list(v) for k, v in session.series.items()}
    for (metric, focus), points in sorted(series.items()):
        if not points:
            continue
        values = [v for _t, v in points]
        rows.append(
            SeriesSummary(
                metric=metric,
                focus=focus,
                points=len(values),
                first=values[0],
                last=values[-1],
                peak=max(values),
                spark=sparkline(values),
            )
        )
    return rows


def format_session_report(session: DaemonSession, *, title: str | None = None) -> str:
    """Human-readable report of everything one paradynd measured."""
    rows = summarize_session(session)
    header = title or (
        f"paradynd #{session.daemon_id}: {session.executable} "
        f"(pid {session.pid} on {session.host})"
    )
    lines = [header, "=" * len(header)]
    lines.append(
        f"state: {session.app_state}"
        + (f", exit code {session.exit_code}" if session.exit_code is not None else "")
    )
    if not rows:
        lines.append("(no samples collected)")
        return "\n".join(lines)
    metric_w = max(len(r.metric) for r in rows)
    focus_w = max(len(r.focus) for r in rows)
    for r in rows:
        lines.append(
            f"  {r.metric.ljust(metric_w)}  {r.focus.ljust(focus_w)}  "
            f"n={r.points:<4d} last={r.last:<10.4f} peak={r.peak:<10.4f} "
            f"[{r.spark}]"
        )
    return "\n".join(lines)


def format_comparison(
    sessions: list[DaemonSession], metric: str = "proc_cpu"
) -> str:
    """Cross-daemon comparison of one metric (MPI rank imbalance view)."""
    lines = [f"cross-process comparison: {metric}"]
    values = []
    for session in sessions:
        value = session.latest(metric) or 0.0
        values.append((session, value))
    if not values:
        return lines[0] + "\n(no sessions)"
    peak = max(v for _s, v in values) or 1.0
    for session, value in values:
        bar = "#" * int(40 * value / peak) if peak > 0 else ""
        lines.append(
            f"  {session.host:>10} pid {session.pid:<6d} "
            f"{value:10.4f}  {bar}"
        )
    spread = (max(v for _, v in values) - min(v for _, v in values))
    lines.append(f"  spread: {spread:.4f}")
    return "\n".join(lines)
