"""Metrics and foci: what Paradyn measures and where.

A *focus* selects a part of the system (here: one process, optionally
narrowed to one function); a *metric* is a time-varying measurement over
a focus.  The collector owns the mapping metric-request -> probes, so
enabling a metric inserts exactly the instrumentation it needs and
disabling removes it — Paradyn's pay-as-you-go measurement model.
"""

from __future__ import annotations

import enum
import threading
from dataclasses import dataclass

from repro.errors import MetricError
from repro.paradyn.dyninst import CounterHandle, DyninstEngine, TimerHandle


class Metric(enum.Enum):
    """Built-in metric catalog."""

    CPU_INCLUSIVE = "cpu_inclusive"    # CPU seconds inside a function (incl. callees)
    WALL_INCLUSIVE = "wall_inclusive"  # wall (virtual) seconds inside a function
    CALL_COUNT = "call_count"          # completed entries of a function
    PROC_CPU = "proc_cpu"              # whole-process CPU seconds
    PROC_WALL = "proc_wall"            # whole-process wall (virtual) seconds
    CPU_UTILIZATION = "cpu_utilization"  # process CPU / process wall
    CPU_FRACTION = "cpu_fraction"      # function CPU / process CPU
    IO_FRACTION = "io_fraction"        # function (wall - CPU) / process wall


@dataclass(frozen=True)
class Focus:
    """What a measurement is scoped to."""

    host: str
    pid: int
    function: str | None = None  # None = whole process

    def __str__(self) -> str:
        base = f"{self.host}:{self.pid}"
        return f"{base}/{self.function}" if self.function else base


@dataclass(frozen=True)
class MetricSample:
    metric: str
    focus: str
    value: float
    time: float  # virtual CPU-clock timestamp of the sample


class MetricInstance:
    """One enabled (metric, focus) pair and its live value."""

    def __init__(
        self,
        metric: Metric,
        focus: Focus,
        engine: DyninstEngine,
        *,
        timer: TimerHandle | None = None,
        counter: CounterHandle | None = None,
    ):
        self.metric = metric
        self.focus = focus
        self._engine = engine
        self._timer = timer
        self._counter = counter

    def value(self) -> float:
        proc = self._engine.process
        if self.metric is Metric.PROC_CPU:
            return proc.cpu_time
        if self.metric is Metric.PROC_WALL:
            return proc.wall_time
        if self.metric is Metric.CPU_UTILIZATION:
            wall = proc.wall_time
            return proc.cpu_time / wall if wall > 0 else 0.0
        if self.metric is Metric.CPU_INCLUSIVE:
            assert self._timer is not None
            return self._timer.inclusive_cpu
        if self.metric is Metric.WALL_INCLUSIVE:
            assert self._timer is not None
            return self._timer.inclusive_wall
        if self.metric is Metric.CALL_COUNT:
            assert self._counter is not None
            return float(self._counter.count)
        if self.metric is Metric.CPU_FRACTION:
            assert self._timer is not None
            total = proc.cpu_time
            return self._timer.inclusive_cpu / total if total > 0 else 0.0
        if self.metric is Metric.IO_FRACTION:
            assert self._timer is not None
            wall = proc.wall_time
            blocked = self._timer.inclusive_wall - self._timer.inclusive_cpu
            return max(0.0, blocked) / wall if wall > 0 else 0.0
        raise MetricError(f"unhandled metric {self.metric}")

    def sample(self) -> MetricSample:
        return MetricSample(
            metric=self.metric.value,
            focus=str(self.focus),
            value=self.value(),
            time=self._engine.process.cpu_time,
        )

    def disable(self) -> None:
        if self._timer is not None:
            self._engine.remove(self._timer)
            self._timer = None
        if self._counter is not None:
            self._engine.remove(self._counter)
            self._counter = None


class MetricCollector:
    """Manages enabled metric instances over one process."""

    def __init__(self, engine: DyninstEngine, host: str):
        self._engine = engine
        self._host = host
        self._instances: dict[tuple[str, str], MetricInstance] = {}
        self._lock = threading.Lock()

    def enable(self, metric: Metric, function: str | None = None) -> MetricInstance:
        """Enable a metric, inserting the probes it needs (idempotent)."""
        focus = Focus(self._host, self._engine.process.pid, function)
        key = (metric.value, str(focus))
        with self._lock:
            existing = self._instances.get(key)
            if existing is not None:
                return existing
        if metric in (
            Metric.CPU_INCLUSIVE,
            Metric.WALL_INCLUSIVE,
            Metric.CPU_FRACTION,
            Metric.IO_FRACTION,
        ):
            if function is None:
                raise MetricError(f"{metric.value} requires a function focus")
            instance = MetricInstance(
                metric, focus, self._engine,
                timer=self._engine.insert_timer(function),
            )
        elif metric is Metric.CALL_COUNT:
            if function is None:
                raise MetricError("call_count requires a function focus")
            instance = MetricInstance(
                metric, focus, self._engine,
                counter=self._engine.insert_counter(function, "exit"),
            )
        elif metric in (Metric.PROC_CPU, Metric.PROC_WALL, Metric.CPU_UTILIZATION):
            instance = MetricInstance(metric, focus, self._engine)
        else:
            raise MetricError(f"unknown metric {metric}")
        with self._lock:
            self._instances[key] = instance
        return instance

    def disable(self, metric: Metric, function: str | None = None) -> bool:
        focus = Focus(self._host, self._engine.process.pid, function)
        key = (metric.value, str(focus))
        with self._lock:
            instance = self._instances.pop(key, None)
        if instance is None:
            return False
        instance.disable()
        return True

    def sample_all(self) -> list[MetricSample]:
        with self._lock:
            instances = list(self._instances.values())
        return [inst.sample() for inst in instances]

    def enabled(self) -> list[tuple[str, str]]:
        with self._lock:
            return sorted(self._instances)

    def disable_all(self) -> None:
        with self._lock:
            instances = list(self._instances.values())
            self._instances.clear()
        for inst in instances:
            inst.disable()
