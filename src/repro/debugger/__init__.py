"""A second run-time tool: a gdb-like batch debugger over TDP.

The paper's whole argument is that a standard interface makes tools
portable across resource managers without per-pair work (m + n instead
of m x n).  This package is the proof by construction: a *different*
tool — a debugger, not a profiler — that runs under the same unmodified
Condor substrate purely by speaking TDP:

* same launch path (``+ToolDaemonCmd = "tdb"`` in the submit file),
* same pid handshake (blocking ``tdp_get("pid")``),
* same attach/continue coordination through the RM,
* its own tool logic (breakpoints, stack capture, watch log).

Nothing in :mod:`repro.condor` knows this tool exists.
"""

from repro.debugger.daemon import DebuggerDaemon, launch_tdb, register_tdb

__all__ = ["DebuggerDaemon", "launch_tdb", "register_tdb"]
