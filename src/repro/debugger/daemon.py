"""tdb: a batch debugger daemon speaking TDP.

Arguments (gdb-batch-flavored):

* ``-a%pid`` — TDP mode marker (required, as for paradynd);
* ``-b<function>`` — set a breakpoint (repeatable);
* ``-x<n>`` — resume after at most n hits per breakpoint (default 1).

At each breakpoint hit the daemon records the stop site and the
application's current stack (what a user would inspect), then continues
— a scriptable debugging session under the batch system, which is
exactly the kind of tool the paper wants deployable "in each RM
environment that supports TDP" without porting work.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

from repro import errors
from repro.condor.tools import ThreadToolHandle, ToolLaunchContext, ToolRegistry
from repro.paradyn.dyninst import DyninstEngine
from repro.sim.process import ProcessState
from repro.tdp.api import (
    tdp_attach,
    tdp_continue_process,
    tdp_exit,
    tdp_get,
    tdp_init,
)
from repro.tdp.handle import Role
from repro.tdp.wellknown import Attr, ProcStatus
from repro.util.log import get_logger

_log = get_logger("debugger.daemon")


@dataclass
class BreakpointReport:
    """One observed stop at a user breakpoint."""

    function: str
    hit_number: int
    stack: list[str]
    cpu_time: float


@dataclass
class TdbArgs:
    breakpoints: list[str] = field(default_factory=list)
    max_hits: int = 1
    app_ref: str | None = None

    @property
    def tdp_mode(self) -> bool:
        return self.app_ref is not None and self.app_ref.startswith("%")


def parse_tdb_args(args: list[str]) -> TdbArgs:
    parsed = TdbArgs()
    for arg in args:
        if arg.startswith("-b"):
            parsed.breakpoints.append(arg[2:])
        elif arg.startswith("-x"):
            try:
                parsed.max_hits = int(arg[2:])
            except ValueError:
                raise errors.ToolError(f"bad -x argument {arg!r}") from None
        elif arg.startswith("-a"):
            parsed.app_ref = arg[2:]
        else:
            raise errors.ToolError(f"tdb: unknown argument {arg!r}")
    if parsed.max_hits < 1:
        raise errors.ToolError("-x must be >= 1")
    return parsed


class DebuggerDaemon:
    """One tdb instance debugging one application process."""

    def __init__(self, ctx: ToolLaunchContext):
        self.ctx = ctx
        self.args = parse_tdb_args(ctx.args)
        self.reports: list[BreakpointReport] = []
        self.app_exit_code: int | None = None

    def _log_line(self, text: str) -> None:
        self.ctx.output_sink(text)
        if self.ctx.trace is not None:
            self.ctx.trace.record("tdb", "log", text=text)

    def run(self, stop_event: threading.Event) -> None:
        ctx = self.ctx
        if not self.args.tdp_mode:
            raise errors.ToolError("tdb requires -a%pid (TDP mode)")
        handle = tdp_init(
            ctx.transport,
            ctx.lass_endpoint,
            member=f"tdb/{ctx.job_id}",
            role=Role.RT,
            context=ctx.context,
            src_host=ctx.host,
        )
        try:
            self._debug_session(handle, stop_event)
        finally:
            tdp_exit(handle)

    def _debug_session(self, handle, stop_event: threading.Event) -> None:
        ctx = self.ctx
        pid = int(tdp_get(handle, Attr.PID, timeout=60.0))
        executable = tdp_get(handle, Attr.EXECUTABLE_NAME, timeout=10.0)
        self._log_line(f"tdb: attached target {executable} pid {pid}")
        tdp_attach(handle, pid)

        host = ctx.extras.get("sim_host")
        if host is None:
            raise errors.ToolError("tdb needs the sim host for breakpoints")
        process = host.get_process(pid)
        engine = DyninstEngine(process)

        # Set user breakpoints while the target is stopped.
        active = {}
        for function in self.args.breakpoints:
            active[function] = {
                "bp": engine.insert_breakpoint(function, "entry"),
                "hits": 0,
            }
            self._log_line(f"tdb: breakpoint at {function}")

        tdp_continue_process(handle, pid)

        # The debug loop: wait for stops, report, continue.
        while active and not stop_event.is_set():
            try:
                state = process.wait_for_state(
                    ProcessState.STOPPED, ProcessState.EXITED, timeout=30.0
                )
            except errors.TdpError:
                break
            if state is ProcessState.EXITED:
                break
            # Which breakpoint fired?  The innermost frame tells us.
            stack = process.stack()
            site = stack[-1] if stack else "?"
            entry = active.get(site)
            if entry is None:
                # Stopped for some other reason (e.g. RM pause): step over.
                tdp_continue_process(handle, pid)
                continue
            entry["hits"] += 1
            report = BreakpointReport(
                function=site,
                hit_number=entry["hits"],
                stack=list(stack),
                cpu_time=process.cpu_time,
            )
            self.reports.append(report)
            self._log_line(
                f"tdb: hit #{report.hit_number} at {site} "
                f"stack={'>'.join(report.stack)} cpu={report.cpu_time:.4f}"
            )
            if entry["hits"] >= self.args.max_hits:
                engine.remove(entry["bp"])
                del active[site]
                self._log_line(f"tdb: breakpoint at {site} cleared")
            tdp_continue_process(handle, pid)

        # Let the target run out; report its exit through the space.
        try:
            status = handle.attrs.get(Attr.proc_status(pid), timeout=30.0)
            while not ProcStatus.is_exited(status) and not stop_event.is_set():
                stop_event.wait(0.01)
                status = handle.attrs.try_get(Attr.proc_status(pid))
            if ProcStatus.is_exited(status):
                self.app_exit_code = ProcStatus.exit_code(status)
                self._log_line(f"tdb: target exited with code {self.app_exit_code}")
        except errors.TdpError:
            pass


def launch_tdb(ctx: ToolLaunchContext) -> ThreadToolHandle:
    """ToolRegistry launcher for tdb."""
    daemon = DebuggerDaemon(ctx)
    handle = ThreadToolHandle(f"tdb-{ctx.job_id}", daemon.run)
    handle.daemon = daemon  # type: ignore[attr-defined] — exposed for tests
    return handle


def register_tdb(registry: ToolRegistry, *, name: str = "tdb") -> ToolRegistry:
    """Register the debugger under its command name."""
    registry.register(name, launch_tdb)
    return registry
