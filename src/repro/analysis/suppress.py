"""Suppression directives: ``# tdp-lint: off(rule-a, rule-b)``.

Two scopes, distinguished by placement:

* **line** — the directive shares a line with code; findings of the
  named rules reported on that line are suppressed.
* **file** — the directive stands on a line of its own (only whitespace
  before the ``#``); the named rules are disabled for the whole file.

``# tdp-lint: off`` with no parenthesized list suppresses *every* rule
in its scope.  Comments are extracted with :mod:`tokenize`, so directive
look-alikes inside string literals are ignored.
"""

from __future__ import annotations

import io
import re
import tokenize

_DIRECTIVE = re.compile(
    r"#\s*tdp-lint\s*:\s*off\s*(?:\(\s*(?P<rules>[\w\-, ]*)\s*\))?"
)

#: sentinel meaning "all rules"
ALL = "*"


class SuppressionIndex:
    """Parsed suppressions for one file; answers ``is_suppressed``."""

    def __init__(self) -> None:
        #: line number -> set of rule names (or {ALL})
        self.by_line: dict[int, set[str]] = {}
        #: rules disabled for the whole file (may contain ALL)
        self.file_wide: set[str] = set()
        #: directives that parsed but named nothing, kept for diagnostics
        self.malformed: list[int] = []

    @classmethod
    def parse(cls, text: str) -> "SuppressionIndex":
        index = cls()
        try:
            tokens = tokenize.generate_tokens(io.StringIO(text).readline)
            comments = [
                (tok.start[0], tok.start[1], tok.string)
                for tok in tokens
                if tok.type == tokenize.COMMENT
            ]
        except tokenize.TokenizeError:
            return index
        lines = text.splitlines()
        for lineno, col, comment in comments:
            m = _DIRECTIVE.search(comment)
            if m is None:
                continue
            if m.group("rules") is None:
                rules = {ALL}
            else:
                rules = {r.strip() for r in m.group("rules").split(",") if r.strip()}
                if not rules:
                    index.malformed.append(lineno)
                    continue
            line_text = lines[lineno - 1] if lineno - 1 < len(lines) else ""
            standalone = not line_text[:col].strip()
            if standalone:
                index.file_wide |= rules
            else:
                index.by_line.setdefault(lineno, set()).update(rules)
        return index

    def is_suppressed(self, rule: str, line: int) -> bool:
        if ALL in self.file_wide or rule in self.file_wide:
            return True
        on_line = self.by_line.get(line)
        return on_line is not None and (ALL in on_line or rule in on_line)
