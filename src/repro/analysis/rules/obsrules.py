"""ad-hoc-counter: daemon metrics go through repro.obs, not hand-rolled tables.

The obs subsystem gives every daemon one metrics surface: get-or-create
from a :class:`repro.obs.MetricsRegistry`, so ``obs dump`` and the
exporters see every series and name collisions are caught at
registration.  A hand-rolled ``dict`` of ``AtomicCounter`` (the pattern
the attrspace server used before the registry existed) is invisible to
all of that.

Three patterns are flagged:

* a dict literal or comprehension whose values are ``AtomicCounter()``
  calls — a hand-rolled stats table; migrate it onto a registry
  (a *single* ``AtomicCounter`` used as an ID allocator is fine);
* direct construction of ``Counter``/``Gauge``/``Histogram`` — metric
  objects must come from ``MetricsRegistry.counter()`` et al., never
  ``__init__`` (a directly-built metric is registered nowhere);
* a literal metric name passed to ``.counter()``/``.gauge()``/
  ``.histogram()`` with characters outside ``[a-z0-9_.]`` — the
  registry rejects it at run time; catch it at lint time instead.

Scope: everything under ``repro`` except ``repro.obs`` itself (the
definition site) and ``repro.util.sync`` (where AtomicCounter lives).
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.core import Finding, ModuleSource, Rule, dotted_name, register
from repro.obs.metrics import NAME_CHARS

_EXEMPT_PACKAGES = ("repro.obs",)
_EXEMPT_MODULES = {"repro.util.sync"}

#: obs metric classes whose direct construction is banned outside obs.
_METRIC_CLASSES = {"Counter", "Gauge", "Histogram"}
#: qualifier segments under which the metric classes are recognized
#: (``obs.Counter(...)``, ``metrics.Histogram(...)``); bare names are
#: recognized too.  ``collections.Counter`` is deliberately not matched.
_METRIC_QUALIFIERS = {"obs", "metrics"}

#: registry get-or-create methods whose name argument is validated
_REGISTRY_METHODS = {"counter", "gauge", "histogram"}


def _is_atomic_counter_call(node: ast.AST) -> bool:
    if not isinstance(node, ast.Call):
        return False
    dn = dotted_name(node.func)
    return dn is not None and dn.split(".")[-1] == "AtomicCounter"


def _is_metric_construction(call: ast.Call) -> bool:
    dn = dotted_name(call.func)
    if dn is None:
        return False
    parts = dn.split(".")
    if parts[-1] not in _METRIC_CLASSES:
        return False
    return len(parts) == 1 or parts[-2] in _METRIC_QUALIFIERS


def _bad_name_chars(value: str) -> str:
    return "".join(sorted({c for c in value if c not in NAME_CHARS}))


@register
class AdHocCounter(Rule):
    name = "ad-hoc-counter"
    description = (
        "daemon metrics come from a repro.obs MetricsRegistry, not "
        "hand-rolled AtomicCounter tables or direct metric construction"
    )

    def check(self, module: ModuleSource) -> Iterator[Finding]:
        if not module.in_package("repro"):
            return
        if module.in_package(*_EXEMPT_PACKAGES):
            return
        if module.modname in _EXEMPT_MODULES:
            return
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Dict):
                if any(_is_atomic_counter_call(v) for v in node.values if v):
                    yield self.finding(
                        module,
                        node,
                        "hand-rolled stats table of AtomicCounter; use "
                        "MetricsRegistry.counter() from repro.obs",
                    )
            elif isinstance(node, ast.DictComp):
                if _is_atomic_counter_call(node.value):
                    yield self.finding(
                        module,
                        node,
                        "hand-rolled stats table of AtomicCounter; use "
                        "MetricsRegistry.counter() from repro.obs",
                    )
            elif isinstance(node, ast.Call):
                if _is_metric_construction(node):
                    cls = dotted_name(node.func).split(".")[-1]
                    yield self.finding(
                        module,
                        node,
                        f"direct {cls} construction; obtain metrics "
                        f"get-or-create via MetricsRegistry.{cls.lower()}()",
                    )
                else:
                    yield from self._check_metric_name(module, node)

    def _check_metric_name(
        self, module: ModuleSource, call: ast.Call
    ) -> Iterator[Finding]:
        func = call.func
        if not isinstance(func, ast.Attribute) or func.attr not in _REGISTRY_METHODS:
            return
        if not call.args:
            return
        arg = call.args[0]
        if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
            bad = _bad_name_chars(arg.value)
            if bad or not arg.value:
                yield self.finding(
                    module,
                    arg,
                    f"metric name {arg.value!r} uses characters outside "
                    f"[a-z0-9_.] ({bad!r}); the registry will reject it",
                )
        elif isinstance(arg, ast.JoinedStr):
            # Only the literal segments of an f-string name can be
            # checked statically; interpolated parts are run-time.
            for segment in arg.values:
                if isinstance(segment, ast.Constant) and isinstance(
                    segment.value, str
                ):
                    bad = _bad_name_chars(segment.value)
                    if bad:
                        yield self.finding(
                            module,
                            arg,
                            f"metric name f-string segment {segment.value!r} "
                            f"uses characters outside [a-z0-9_.] ({bad!r})",
                        )
