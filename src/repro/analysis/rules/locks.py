"""Lock-discipline rules.

The attribute store's own contract (``repro/attrspace/store.py``) is that
user callbacks and subscription fan-out happen *outside* ``self._lock``;
the paper's event model (Section 3.3: callbacks run "at a well-known and
(presumably) safe point") collapses if a server thread can call back
into user code while holding server state locked — the callback may
re-enter the store and deadlock, or observe state mid-mutation.

Two rules:

* ``callback-under-lock`` — invoking a callback-shaped callable (or
  ``subscriptions.publish`` / ``.deliver``) inside a ``with <lock>``
  block.
* ``blocking-call-under-lock`` — ``.wait()``/``.wait_for()``/``.join()``/
  ``.recv()``/``.send()``/``time.sleep()`` inside a ``with <lock>``
  block.  Waiting on the *held* object itself is exempt: that is the
  condition-variable idiom (``with self._cond: self._cond.wait_for(...)``),
  which releases the lock while parked.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator

from repro.analysis.core import (
    Finding,
    ModuleSource,
    Rule,
    dotted_name,
    iter_calls,
    register,
)

#: a `with X` context expression is treated as a lock when its terminal
#: attribute looks like one of the repo's lock/condition fields
_LOCK_NAME = re.compile(r"(lock|mutex|cond|condition)$")

_CALLBACK_NAMES = {"cb", "callback", "deliver", "complete", "fn", "func", "hook"}
_CALLBACK_SUFFIXES = ("_cb", "_callback", "_hook", "_handler")
_CALLBACK_ATTRS = {"publish", "deliver"}

_BLOCKING_ATTRS = {"wait", "wait_for", "join", "recv", "send"}


def _lock_exprs(node: ast.With) -> list[str]:
    """Dotted names of the lock-like context managers acquired by a With."""
    out = []
    for item in node.items:
        dn = dotted_name(item.context_expr)
        if dn is not None and _LOCK_NAME.search(dn.rsplit(".", 1)[-1].lower()):
            out.append(dn)
    return out


def _is_callback_name(name: str) -> bool:
    return name in _CALLBACK_NAMES or name.endswith(_CALLBACK_SUFFIXES)


def _walk_locked_regions(tree: ast.Module) -> Iterator[tuple[ast.With, list[str]]]:
    """Yield (with-node, held-lock names incl. enclosing withs) pairs.

    Nested functions are *not* descended into from a locked region by the
    callers (via :func:`iter_calls`) because their bodies run later, off
    the lock; but a ``with`` inside a ``with`` accumulates held locks.
    """
    def visit(node: ast.AST, held: list[str]) -> Iterator[tuple[ast.With, list[str]]]:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.With):
                locks = _lock_exprs(child)
                if locks:
                    yield child, held + locks
                yield from visit(child, held + locks)
            else:
                yield from visit(child, held)

    yield from visit(tree, [])


@register
class CallbackUnderLock(Rule):
    name = "callback-under-lock"
    description = (
        "user callbacks and subscription fan-out must run outside server "
        "locks (store contract; paper Section 3.3 safe-point delivery)"
    )

    def check(self, module: ModuleSource) -> Iterator[Finding]:
        for with_node, held in _walk_locked_regions(module.tree):
            for call in iter_calls(with_node.body):
                label = self._callback_label(call)
                if label is not None:
                    yield self.finding(
                        module,
                        call,
                        f"{label} invoked while holding {held[-1]}; "
                        "collect under the lock, invoke after releasing it",
                    )

    @staticmethod
    def _callback_label(call: ast.Call) -> str | None:
        func = call.func
        if isinstance(func, ast.Name) and _is_callback_name(func.id):
            return f"callback {func.id}()"
        if isinstance(func, ast.Attribute):
            if func.attr in _CALLBACK_ATTRS or _is_callback_name(func.attr):
                dn = dotted_name(func)
                return f"{dn or func.attr}()"
        if isinstance(func, ast.Subscript):
            base = dotted_name(func.value)
            if base is not None and _is_callback_name(base.rsplit(".", 1)[-1]):
                return f"callback {base}[...]()"
        return None


@register
class BlockingCallUnderLock(Rule):
    name = "blocking-call-under-lock"
    description = (
        "no .wait()/.join()/.recv()/.send()/time.sleep() while holding a "
        "lock; park on a condition or move the call outside the lock"
    )

    def check(self, module: ModuleSource) -> Iterator[Finding]:
        for with_node, held in _walk_locked_regions(module.tree):
            for call in iter_calls(with_node.body):
                label = self._blocking_label(call, held)
                if label is not None:
                    yield self.finding(
                        module,
                        call,
                        f"blocking call {label} while holding {held[-1]}",
                    )

    @staticmethod
    def _blocking_label(call: ast.Call, held: list[str]) -> str | None:
        func = call.func
        if isinstance(func, ast.Name) and func.id == "sleep":
            return "sleep()"
        if not isinstance(func, ast.Attribute):
            return None
        dn = dotted_name(func)
        if dn == "time.sleep":
            return "time.sleep()"
        if func.attr not in _BLOCKING_ATTRS:
            return None
        receiver = dotted_name(func.value)
        # Condition idiom: waiting on the held lock releases it.
        if receiver is not None and receiver in held:
            return None
        # str.join on a literal separator / os.path.join are not blocking.
        if func.attr == "join":
            if isinstance(func.value, ast.Constant):
                return None
            if receiver is not None and receiver.rsplit(".", 1)[-1] == "path":
                return None
        return f"{receiver or '<expr>'}.{func.attr}()"
