"""Protocol exhaustiveness: every wire op must be fully plumbed.

``repro.attrspace.protocol`` declares the CASS wire ops as module-level
``OP_*`` string constants.  A constant without a server dispatch branch
is a request the server answers with ``unknown op``; one without a
client encoder is dead protocol surface.  Both are whole-program facts
— the constant, the dispatch method, and the encoder live in three
modules — so this is a :class:`ProgramRule`.

Satisfying references:

* server side — a ``_op_<value>`` method anywhere in the server module
  (the dispatcher is ``getattr(self, f"_op_{op}")``), or a direct
  reference to the constant (push ops like ``OP_NOTIFY`` are *sent* by
  the server, not dispatched);
* client side — any reference to the constant in the client module.

The rule is silent when the protocol module is not part of the linted
set, so fixture trees and partial lints stay clean.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.core import Finding, ModuleSource, ProgramRule, register_program

PROTOCOL_MODULE = "repro.attrspace.protocol"
SERVER_MODULE = "repro.attrspace.server"
CLIENT_MODULE = "repro.attrspace.client"


def _op_constants(module: ModuleSource) -> list[tuple[str, str, int]]:
    """Module-level ``OP_NAME = "value"`` assignments: (name, value, line)."""
    out = []
    for stmt in module.tree.body:
        if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1 \
                and isinstance(stmt.targets[0], ast.Name) \
                and stmt.targets[0].id.startswith("OP_") \
                and isinstance(stmt.value, ast.Constant) \
                and isinstance(stmt.value.value, str):
            out.append((stmt.targets[0].id, stmt.value.value, stmt.lineno))
    return out


def _referenced_names(module: ModuleSource) -> set[str]:
    """Every Name id and Attribute attr in the module (``OP_X`` or
    ``protocol.OP_X`` reference styles both land here)."""
    names: set[str] = set()
    for node in ast.walk(module.tree):
        if isinstance(node, ast.Name):
            names.add(node.id)
        elif isinstance(node, ast.Attribute):
            names.add(node.attr)
    return names


def _method_names(module: ModuleSource) -> set[str]:
    return {
        node.name for node in ast.walk(module.tree)
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
    }


@register_program
class ProtocolExhaustivenessRule(ProgramRule):
    name = "protocol-exhaustiveness"
    description = (
        "every OP_* constant in attrspace/protocol.py has a server "
        "dispatch branch and a client encoder"
    )

    def check_program(self, modules: list[ModuleSource]) -> Iterator[Finding]:
        by_name = {m.modname: m for m in modules}
        proto = by_name.get(PROTOCOL_MODULE)
        if proto is None:
            return
        ops = _op_constants(proto)
        server = by_name.get(SERVER_MODULE)
        client = by_name.get(CLIENT_MODULE)
        server_methods = _method_names(server) if server else set()
        server_refs = _referenced_names(server) if server else set()
        client_refs = _referenced_names(client) if client else set()
        for name, value, line in ops:
            if server is not None and f"_op_{value}" not in server_methods \
                    and name not in server_refs:
                yield self.finding_at(
                    proto.path, line,
                    f"{name} ({value!r}) has no dispatch branch "
                    f"(_op_{value}) or reference in attrspace/server.py",
                )
            if client is not None and name not in client_refs:
                yield self.finding_at(
                    proto.path, line,
                    f"{name} ({value!r}) has no encoder reference in "
                    f"attrspace/client.py",
                )
