"""Built-in rule battery.  Importing this package registers every rule."""

from __future__ import annotations

from repro.analysis.rules import (
    attrs,
    concurrency,
    guards,
    handles,
    locks,
    obsrules,
    protocol,
    simclock,
    threads,
    wire,
)

__all__ = [
    "attrs",
    "concurrency",
    "guards",
    "handles",
    "locks",
    "obsrules",
    "protocol",
    "simclock",
    "threads",
    "wire",
]
