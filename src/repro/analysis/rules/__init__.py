"""Built-in rule battery.  Importing this package registers every rule."""

from __future__ import annotations

from repro.analysis.rules import attrs, handles, locks, simclock, threads

__all__ = ["attrs", "handles", "locks", "simclock", "threads"]
