"""Whole-program guarded-by rules: the coverage half of the sanitizer.

The lock-order rules (:mod:`repro.analysis.rules.concurrency`) prove the
locks we take cannot deadlock; these four prove the shared state is
actually *behind* a lock.  All of them read one shared
:class:`repro.analysis.guards.GuardReport` (memoized per module set, so
the four rules cost one inference between them):

* ``guarded-field-unlocked`` — an access to a field whose guard
  (inferred from the supermajority of sites, or declared with a
  ``tdp-guard`` comment) is not held on the access path.
* ``thread-confined-escape`` — a field confined to one thread root is
  touched from a second root.
* ``guard-ambiguous`` — a shared, mutated field with no supermajority
  lock and no single owning thread: the discipline is unclear and must
  be declared (``# tdp-guard: field -> module.Class.lock``, a
  ``confined:<root>``, or ``volatile`` for a sanctioned benign race).
* ``guard-manifest-stale`` — a waiver that suppresses nothing, or a
  declaration naming an unknown field or guard: dead manifest entries
  must not linger where they could mask a regression.

Fix by taking the guard at the flagged site (or hoisting the access
into an existing critical section); record an intentional exception as
a WAIVERS entry in analysis/guards.py with its justification; declare
intentional confinement or benign races at the field.
"""

from __future__ import annotations

from typing import Iterator

from repro.analysis.core import Finding, ModuleSource, ProgramRule, register_program
from repro.analysis.guards import GuardReport, infer_cached


def _shared_report(modules: list[ModuleSource]) -> GuardReport:
    return infer_cached(modules)


@register_program
class GuardedFieldUnlockedRule(ProgramRule):
    name = "guarded-field-unlocked"
    description = (
        "field access without the lock that guards it (inferred from "
        "the supermajority of access sites, or declared via tdp-guard)"
    )

    def check_program(self, modules: list[ModuleSource]) -> Iterator[Finding]:
        report = _shared_report(modules)
        for key, fg in sorted(report.fields.items()):
            for site, rule in fg.violations:
                if rule != self.name:
                    continue
                covered, total = fg.coverage()
                origin = (
                    "declared guard"
                    if fg.source == "declared"
                    else f"guard inferred from {covered}/{total} sites"
                )
                yield self.finding_at(
                    site.path, site.line,
                    f"{site.describe()} touches {key} without holding "
                    f"{fg.guard} ({origin}); take the lock here, or add "
                    f"a waiver '{key}@{site.func}' in analysis/guards.py",
                )


@register_program
class ThreadConfinedEscapeRule(ProgramRule):
    name = "thread-confined-escape"
    description = (
        "field confined to a single thread root is accessed from a "
        "second thread root"
    )

    def check_program(self, modules: list[ModuleSource]) -> Iterator[Finding]:
        report = _shared_report(modules)
        for key, fg in sorted(report.fields.items()):
            for site, rule in fg.violations:
                if rule != self.name:
                    continue
                owner_root = (fg.guard or "")[len("confined:"):]
                others = sorted(site.roots - {owner_root})
                yield self.finding_at(
                    site.path, site.line,
                    f"{site.describe()} reaches {key} from thread "
                    f"root(s) {', '.join(others)} but the field is "
                    f"confined to {owner_root}; guard it with a lock, "
                    f"or waive '{key}@{site.func}' in analysis/guards.py",
                )


@register_program
class GuardAmbiguousRule(ProgramRule):
    name = "guard-ambiguous"
    description = (
        "shared mutable field with no supermajority lock and no owning "
        "thread — the guard discipline must be made explicit"
    )

    def check_program(self, modules: list[ModuleSource]) -> Iterator[Finding]:
        report = _shared_report(modules)
        for key, fg in sorted(report.fields.items()):
            if fg.guard is not None or not fg.sites:
                continue
            locked = sum(1 for s in fg.sites if s.held)
            yield self.finding_at(
                fg.decl_path, fg.decl_line,
                f"{key} is mutated and visible to thread roots "
                f"{', '.join(sorted(fg.roots))} but only {locked} of "
                f"{len(fg.sites)} access sites hold any lock; pick a "
                f"guard and declare it with a tdp-guard comment "
                f"(module.Class.lock, confined:<root>, or volatile)",
            )


@register_program
class GuardManifestStaleRule(ProgramRule):
    name = "guard-manifest-stale"
    description = (
        "guard-manifest entry (waiver or tdp-guard declaration) that "
        "no longer matches any field or suppresses any violation"
    )

    def check_program(self, modules: list[ModuleSource]) -> Iterator[Finding]:
        report = _shared_report(modules)
        for entry in sorted(
            report.stale, key=lambda e: (e.path, e.line, e.key)
        ):
            yield self.finding_at(entry.path, entry.line, entry.message)
