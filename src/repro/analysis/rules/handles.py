"""missing-handle-check: public tdp_* entry points validate their handle.

"On success, tdp_init will return a tdp handle, which will be used in
any TDP subsequent action" (paper Section 3.2).  Every public function
in :mod:`repro.tdp.api` therefore either begins with
``handle._check_open()`` or delegates to something that performs the
check (``open_handle`` for ``tdp_init``, ``handle.close()`` for
``tdp_exit``, or another ``tdp_*`` function).  An unchecked entry point
would let a closed handle silently operate on a dead session.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.core import Finding, ModuleSource, Rule, register

_SCOPED_MODULE = "repro.tdp.api"

#: calls that count as "the handle is validated (or being created/torn down)"
_CHECKING_ATTRS = {"_check_open", "close"}
_CHECKING_NAMES = {"open_handle"}


@register
class MissingHandleCheck(Rule):
    name = "missing-handle-check"
    description = (
        "every tdp_* function in repro.tdp.api must call "
        "handle._check_open() or delegate to one that does"
    )

    def check(self, module: ModuleSource) -> Iterator[Finding]:
        if module.modname != _SCOPED_MODULE:
            return
        for node in module.tree.body:
            if not isinstance(node, ast.FunctionDef):
                continue
            if not node.name.startswith("tdp_"):
                continue
            if not self._performs_check(node):
                yield self.finding(
                    module,
                    node,
                    f"{node.name}() never calls handle._check_open() and "
                    "does not delegate to a checked tdp_* function",
                )

    @staticmethod
    def _performs_check(func: ast.FunctionDef) -> bool:
        for node in ast.walk(func):
            if not isinstance(node, ast.Call):
                continue
            callee = node.func
            if isinstance(callee, ast.Attribute) and callee.attr in _CHECKING_ATTRS:
                return True
            if isinstance(callee, ast.Name) and (
                callee.id in _CHECKING_NAMES or callee.id.startswith("tdp_")
            ):
                return True
        return False
