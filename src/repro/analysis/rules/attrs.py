"""raw-attribute-literal: daemon code spells attribute names via Attr.

Paper Section 3.2: "there is a standard list of attribute names for the
set of data commonly exchanged between the different daemons (every RT
and RM must understand this set)".  That list is
:class:`repro.tdp.wellknown.Attr`; a raw ``"proc.17.status"`` string in
daemon code bypasses the single point of truth, so a protocol rename
becomes a silent wire incompatibility.

Two detection layers:

* any string literal (or f-string head) using a reserved dotted shape —
  ``proc.``/``ctl.req.``/``ctl.rep.``/``hb.``/``fault.``/``aux.`` prefixes
  or the exact names ``rt.frontend``/``rm.proxy``/``stdio.endpoint``;
* the short standard names (``pid``, ``executable_name``, ``app_host``,
  ``app_args``) only when passed as the attribute argument of an
  attribute-space call — they are too common as dict keys to ban
  outright.

Scope: daemon packages only (condor, paradyn, parador, debugger, tdp);
``repro.tdp.wellknown`` is the definition site and exempt; docstrings
never fire.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.core import Finding, ModuleSource, Rule, register

_SCOPED_PACKAGES = (
    "repro.condor",
    "repro.paradyn",
    "repro.parador",
    "repro.debugger",
    "repro.tdp",
)
_EXEMPT_MODULES = {"repro.tdp.wellknown"}

_RESERVED_PREFIXES = ("proc.", "ctl.req.", "ctl.rep.", "hb.", "fault.", "aux.")
_RESERVED_EXACT = {"rt.frontend", "rm.proxy", "stdio.endpoint"}
_STANDARD_SHORT = {"pid", "executable_name", "app_host", "app_args"}

#: call shapes whose attribute argument is checked for short names;
#: value is the positional index of the attribute parameter
_ATTR_ARG_FUNCS = {
    "tdp_put": 1, "tdp_get": 1, "tdp_try_get": 1, "tdp_remove": 1,
    "tdp_async_get": 1, "tdp_async_put": 1, "tdp_subscribe": 1,
}
_ATTR_ARG_METHODS = {
    "put": 0, "try_get": 0, "add_waiter": 0,
    "async_get": 0, "async_put": 0, "subscribe": 0,
}


def _reserved_shape(value: str) -> bool:
    return value in _RESERVED_EXACT or value.startswith(_RESERVED_PREFIXES)


@register
class RawAttributeLiteral(Rule):
    name = "raw-attribute-literal"
    description = (
        "TDP attribute names in daemon code must come from "
        "repro.tdp.wellknown.Attr, not string literals"
    )

    def check(self, module: ModuleSource) -> Iterator[Finding]:
        if not module.in_package(*_SCOPED_PACKAGES):
            return
        if module.modname in _EXEMPT_MODULES:
            return
        # Segments of an f-string are Constant nodes too; the JoinedStr
        # branch below reports those, so skip them here to avoid doubles.
        fstring_segments = {
            id(v)
            for node in ast.walk(module.tree)
            if isinstance(node, ast.JoinedStr)
            for v in node.values
        }
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Constant) and isinstance(node.value, str):
                if id(node) in fstring_segments:
                    continue
                if _reserved_shape(node.value) and not module.is_docstring(node):
                    yield self.finding(
                        module,
                        node,
                        f"raw attribute literal {node.value!r}; use "
                        "repro.tdp.wellknown.Attr",
                    )
            elif isinstance(node, ast.JoinedStr):
                head = node.values[0] if node.values else None
                if isinstance(head, ast.Constant) and isinstance(head.value, str) \
                        and head.value.startswith(_RESERVED_PREFIXES):
                    yield self.finding(
                        module,
                        node,
                        f"raw attribute f-string starting {head.value!r}; "
                        "use the Attr helper for this name family",
                    )
            elif isinstance(node, ast.Call):
                yield from self._check_call(module, node)

    def _check_call(self, module: ModuleSource, call: ast.Call) -> Iterator[Finding]:
        func = call.func
        if isinstance(func, ast.Name):
            idx = _ATTR_ARG_FUNCS.get(func.id)
        elif isinstance(func, ast.Attribute):
            idx = _ATTR_ARG_METHODS.get(func.attr)
        else:
            idx = None
        if idx is None or idx >= len(call.args):
            return
        arg = call.args[idx]
        if isinstance(arg, ast.Constant) and isinstance(arg.value, str) \
                and arg.value in _STANDARD_SHORT:
            yield self.finding(
                module,
                arg,
                f"standard attribute {arg.value!r} passed as a literal; "
                "use repro.tdp.wellknown.Attr",
            )
