"""bare-thread: thread creation goes through repro.util.threads.spawn.

The library is deliberately thread-based (daemons are threads), which is
exactly why ad-hoc ``threading.Thread(...)`` calls scattered across
modules are a liability: unnamed threads are undebuggable, non-daemon
threads hang interpreter shutdown, and there is no single place to add
diagnostics or accounting.  All creation funnels through
:func:`repro.util.threads.spawn`, the one sanctioned call site.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.core import Finding, ModuleSource, Rule, dotted_name, register

_SANCTIONED_MODULES = {"repro.util.threads"}


@register
class BareThread(Rule):
    name = "bare-thread"
    description = (
        "threading.Thread() outside repro.util.threads; use "
        "repro.util.threads.spawn (named, daemon, accounted)"
    )

    def check(self, module: ModuleSource) -> Iterator[Finding]:
        if module.modname in _SANCTIONED_MODULES:
            return
        imported_thread_directly = any(
            isinstance(node, ast.ImportFrom)
            and node.module == "threading"
            and any(alias.name == "Thread" for alias in node.names)
            for node in ast.walk(module.tree)
        )
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            dn = dotted_name(node.func)
            if dn == "threading.Thread" or (
                imported_thread_directly and dn == "Thread"
            ):
                yield self.finding(
                    module,
                    node,
                    "bare threading.Thread() creation; use "
                    "repro.util.threads.spawn",
                )
