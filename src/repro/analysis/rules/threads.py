"""bare-thread / raw-timer: thread and timer creation is funnelled.

The library is deliberately thread-based (daemons are threads), which is
exactly why ad-hoc ``threading.Thread(...)`` calls scattered across
modules are a liability: unnamed threads are undebuggable, non-daemon
threads hang interpreter shutdown, and there is no single place to add
diagnostics or accounting.  All creation funnels through
:func:`repro.util.threads.spawn`, the one sanctioned call site.

The same argument holds for ``threading.Timer``: a raw wall-clock timer
in daemon code silently breaks simulated time (a blocking-get timeout
armed on the wall clock fires mid-scenario regardless of the virtual
clock), so delayed callbacks go through ``Clock.call_later`` and only
``repro.util.clock`` may touch ``threading.Timer`` directly.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.core import Finding, ModuleSource, Rule, dotted_name, register

_SANCTIONED_MODULES = {"repro.util.threads"}


@register
class BareThread(Rule):
    name = "bare-thread"
    description = (
        "threading.Thread() outside repro.util.threads; use "
        "repro.util.threads.spawn (named, daemon, accounted)"
    )

    def check(self, module: ModuleSource) -> Iterator[Finding]:
        if module.modname in _SANCTIONED_MODULES:
            return
        imported_thread_directly = any(
            isinstance(node, ast.ImportFrom)
            and node.module == "threading"
            and any(alias.name == "Thread" for alias in node.names)
            for node in ast.walk(module.tree)
        )
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            dn = dotted_name(node.func)
            if dn == "threading.Thread" or (
                imported_thread_directly and dn == "Thread"
            ):
                yield self.finding(
                    module,
                    node,
                    "bare threading.Thread() creation; use "
                    "repro.util.threads.spawn",
                )


_TIMER_SANCTIONED_MODULES = {"repro.util.clock"}


@register
class RawTimer(Rule):
    name = "raw-timer"
    description = (
        "threading.Timer() outside repro.util.clock; use "
        "Clock.call_later so timeouts follow the scenario clock"
    )

    def check(self, module: ModuleSource) -> Iterator[Finding]:
        if module.modname in _TIMER_SANCTIONED_MODULES:
            return
        imported_timer_directly = any(
            isinstance(node, ast.ImportFrom)
            and node.module == "threading"
            and any(alias.name == "Timer" for alias in node.names)
            for node in ast.walk(module.tree)
        )
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            dn = dotted_name(node.func)
            if dn == "threading.Timer" or (
                imported_timer_directly and dn == "Timer"
            ):
                yield self.finding(
                    module,
                    node,
                    "raw threading.Timer() creation; route delayed "
                    "callbacks through repro.util.clock.Clock.call_later",
                )
