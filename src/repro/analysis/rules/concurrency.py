"""Whole-program lock-order rules: the static half of the sanitizer.

Both rules rebuild the lock graph from the lint invocation's module set
(cheap: one AST pass + a small fixpoint) and check it against the
hierarchy in :func:`repro.analysis.lockorder.active`:

* ``undeclared-lock-edge`` — an acquisition the manifest does not
  sanction: an undeclared lock key, a rank inversion, or a
  non-reentrant self-edge.
* ``lock-order-cycle`` — a strongly connected component in the graph:
  two threads walking the component in different orders can deadlock.
* ``lock-manifest-stale`` — the reverse direction of non-vacuity: a
  manifest key that matches no acquisition site found by the lock
  graph.  A renamed or deleted lock must take its declaration with it,
  or the dead entry (and its rank slot) silently stops meaning anything.

Fix by reordering the acquisitions (or narrowing a critical section so
the outgoing call moves outside the lock); declare genuinely new
nesting in lockorder.py; suppress only with a justification comment.
"""

from __future__ import annotations

from typing import Iterator

from repro.analysis import lockorder
from repro.analysis.core import Finding, ModuleSource, ProgramRule, register_program
from repro.analysis.lockgraph import LockGraph, build_lock_graph


@register_program
class UndeclaredLockEdgeRule(ProgramRule):
    name = "undeclared-lock-edge"
    description = (
        "lock acquisition not sanctioned by the declared hierarchy "
        "(analysis/lockorder.py): undeclared key, rank inversion, or "
        "non-reentrant self-edge"
    )

    def check_program(self, modules: list[ModuleSource]) -> Iterator[Finding]:
        graph = build_lock_graph(modules)
        hierarchy = lockorder.active()
        reported: set[str] = set()
        for key, path, line in graph.acquisitions:
            if not hierarchy.declared(key) and key not in reported:
                reported.add(key)
                yield self.finding_at(
                    path, line,
                    f"lock {key} is not declared in the lockorder manifest",
                )
        for (held, acquired), edge in sorted(graph.edges.items()):
            if hierarchy.may_acquire(held, acquired):
                continue
            if held == acquired:
                detail = "re-acquiring a non-reentrant lock deadlocks"
            elif not hierarchy.declared(held) or not hierarchy.declared(acquired):
                undeclared = acquired if not hierarchy.declared(acquired) else held
                if undeclared in reported:
                    continue  # key itself already reported above
                detail = f"{undeclared} is not declared in the manifest"
            else:
                detail = (
                    f"rank inversion: {acquired} (rank "
                    f"{hierarchy.rank(acquired)}) must be taken before "
                    f"{held} (rank {hierarchy.rank(held)})"
                )
            yield self.finding_at(
                edge.path, edge.line, f"{edge.describe()}: {detail}"
            )


@register_program
class LockOrderCycleRule(ProgramRule):
    name = "lock-order-cycle"
    description = (
        "cycle in the whole-program lock-acquisition graph — a potential "
        "deadlock between threads taking the locks in different orders"
    )

    def check_program(self, modules: list[ModuleSource]) -> Iterator[Finding]:
        graph = build_lock_graph(modules)
        for component in graph.cycles():
            witness = self._witness(graph, component)
            ring = " -> ".join(component + [component[0]])
            yield self.finding_at(
                witness.path, witness.line,
                f"lock-order cycle {ring}; witness: {witness.describe()}",
            )

    @staticmethod
    def _witness(graph: LockGraph, component: list[str]):
        members = set(component)
        edges = [
            e for (a, b), e in graph.edges.items()
            if a in members and b in members
        ]
        return min(edges, key=lambda e: (e.path, e.line, e.acquired))


@register_program
class LockManifestStaleRule(ProgramRule):
    name = "lock-manifest-stale"
    description = (
        "lockorder manifest key that matches no acquisition site in the "
        "whole-program lock graph — a renamed/removed lock left a dead "
        "declaration behind"
    )

    def check_program(self, modules: list[ModuleSource]) -> Iterator[Finding]:
        # Only meaningful when the module set contains the manifest
        # itself (whole-tree runs): a scoped lint of one daemon must not
        # conclude every other daemon's lock is gone.
        manifest_src = next(
            (m for m in modules if m.modname.endswith("analysis.lockorder")),
            None,
        )
        if manifest_src is None:
            return
        graph = build_lock_graph(modules)
        acquired = {key for key, _path, _line in graph.acquisitions}
        lines = manifest_src.text.splitlines()
        for key in sorted(lockorder.active().keys()):
            if key in acquired:
                continue
            line = next(
                (i for i, text in enumerate(lines, start=1) if key in text),
                1,
            )
            yield self.finding_at(
                manifest_src.path, line,
                f"manifest lock {key} matches no acquisition site; "
                f"delete the declaration or fix the key after the rename",
            )
