"""Wire-contract symmetry rules built on the wire-schema inference pass.

:mod:`repro.analysis.wireschema` abstract-interprets frame construction
and consumption on both sides of the attribute-space protocol.  The
rules here compare the two views:

* ``frame-field-unread`` — a field one side writes that the other never
  reads: dead wire surface, or a reader that silently lost a field.
* ``frame-field-phantom`` — a field one side reads that the other never
  writes: a ``.get(...)`` default silently masking protocol drift.
* ``frame-field-type-mismatch`` — both sides agree the field exists but
  pin incompatible types for it.
* ``error-code-unmapped`` — every ``TdpError`` subclass raised on the
  dispatch path must encode to a wire ``error_type`` that decodes back
  to the same class (and the encode/decode maps must be a bijection with
  subclasses listed before their bases).

All four are :class:`ProgramRule`s sharing one cached inference per lint
invocation, and all stay silent when the protocol/client/server trio is
not part of the linted set (fixture trees, partial lints).

``raw-wire-codec`` is the odd one out: a per-module rule confining
``json.dumps``/``json.loads`` to the sanctioned codec module
(``attrspace/protocol.py``) inside the wire-facing packages, so the
roadmap's binary codec can later swap in behind a single seam.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.core import (
    Finding,
    ModuleSource,
    ProgramRule,
    Rule,
    register,
    register_program,
)
from repro.analysis import wireschema
from repro.analysis.wireschema import (
    CODEC_MODULE,
    NOTIFY_PLUMBING,
    REPLY_PLUMBING,
    REQUEST_PLUMBING,
    SUBOP_PLUMBING,
    SUBREPLY_PLUMBING,
    FieldUse,
    OpSchema,
    SideView,
    WireSchema,
    waived,
)


def _site(use: FieldUse, fallback: tuple[str, int]) -> tuple[str, int]:
    return use.sites[0] if use.sites else fallback


def _schemas(schema: WireSchema) -> Iterator[tuple[str, str, OpSchema]]:
    """(schema key, human label, entry) for every comparable frame kind."""
    for op in sorted(schema.ops):
        if op == "error":
            continue
        yield op, f"op {op!r}", schema.ops[op]
    if schema.has_store:
        for kind in sorted(schema.sub_ops):
            yield f"batch:{kind}", f"batch sub-op {kind!r}", schema.sub_ops[kind]
    yield "notify", "notify push", schema.notify
    yield "error", "error reply", schema.ops["error"]


def _directions(
    key: str, entry: OpSchema
) -> Iterator[tuple[str, SideView, SideView, set[str], str, str]]:
    """(direction, writes, reads, plumbing, writer, reader) pairs."""
    if key == "notify":
        yield ("reply", entry.reply_writes, entry.reply_reads,
               set(NOTIFY_PLUMBING) | {"sub"}, "server", "client")
        return
    if key == "error":
        yield ("reply", entry.reply_writes, entry.reply_reads,
               {"ok"}, "server", "client")
        return
    if key.startswith("batch:"):
        yield ("request", entry.request_writes, entry.request_reads,
               set(SUBOP_PLUMBING), "client", "store")
        yield ("reply", entry.reply_writes, entry.reply_reads,
               set(SUBREPLY_PLUMBING), "store", "client")
        return
    yield ("request", entry.request_writes, entry.request_reads,
           set(REQUEST_PLUMBING), "client", "server")
    yield ("reply", entry.reply_writes, entry.reply_reads,
           set(REPLY_PLUMBING), "server", "client")


class _WireRule(ProgramRule):
    """Shared silent-unless-complete scaffolding."""

    def check_program(self, modules: list[ModuleSource]) -> Iterator[Finding]:
        schema = wireschema.infer_cached(modules)
        if schema is None:
            return
        yield from self.check_schema(schema)

    def check_schema(self, schema: WireSchema) -> Iterator[Finding]:
        raise NotImplementedError


@register_program
class FrameFieldUnreadRule(_WireRule):
    name = "frame-field-unread"
    description = (
        "a wire frame field one side encodes is never read by the other "
        "side (dead protocol surface)"
    )

    def check_schema(self, schema: WireSchema) -> Iterator[Finding]:
        for key, label, entry in _schemas(schema):
            for direction, writes, reads, plumbing, writer, reader in \
                    _directions(key, entry):
                if not writes.fields:
                    continue
                if not reads.fields and not reads.escapes:
                    # the counterpart decodes nothing at all for this
                    # frame kind — protocol-exhaustiveness territory,
                    # not per-field drift
                    continue
                if reads.escapes:
                    continue
                for name in sorted(writes.fields):
                    if name in plumbing or name in reads.fields:
                        continue
                    if waived(key, direction, name):
                        continue
                    use = writes.fields[name]
                    path, line = _site(use, ("<unknown>", 1))
                    yield self.finding_at(
                        path, line,
                        f"{label} {direction} field {name!r} is written by "
                        f"the {writer} but never read by the {reader}",
                    )


@register_program
class FrameFieldPhantomRule(_WireRule):
    name = "frame-field-phantom"
    description = (
        "a wire frame field one side reads is never written by the other "
        "side (silent .get default masking drift)"
    )

    def check_schema(self, schema: WireSchema) -> Iterator[Finding]:
        for key, label, entry in _schemas(schema):
            for direction, writes, reads, plumbing, writer, reader in \
                    _directions(key, entry):
                if not reads.fields or not writes.fields:
                    continue
                for name in sorted(reads.fields):
                    if name in plumbing or name in writes.fields:
                        continue
                    if waived(key, direction, name):
                        continue
                    use = reads.fields[name]
                    path, line = _site(use, ("<unknown>", 1))
                    how = "requires" if use.required else \
                        "silently defaults"
                    yield self.finding_at(
                        path, line,
                        f"{label} {direction} field {name!r} is read by the "
                        f"{reader} ({how}) but the {writer} never writes it",
                    )


def _types_overlap(a: set[str], b: set[str]) -> bool:
    if not a or not b:
        return True  # unknown on either side: no claim
    numeric = {"int", "float"}
    for x in a:
        for y in b:
            if x == y or (x in numeric and y in numeric):
                return True
    return False


@register_program
class FrameFieldTypeMismatchRule(_WireRule):
    name = "frame-field-type-mismatch"
    description = (
        "writer and reader pin incompatible types for the same wire "
        "frame field"
    )

    def check_schema(self, schema: WireSchema) -> Iterator[Finding]:
        for key, label, entry in _schemas(schema):
            for direction, writes, reads, plumbing, writer, reader in \
                    _directions(key, entry):
                for name in sorted(set(writes.fields) & set(reads.fields)):
                    if name in plumbing:
                        continue
                    w, r = writes.fields[name], reads.fields[name]
                    # a reader that tolerates absence tolerates null
                    read_types = set(r.types)
                    if not w.required and read_types:
                        read_types.add("null")
                    if not _types_overlap(w.types, read_types):
                        path, line = _site(r, _site(w, ("<unknown>", 1)))
                        yield self.finding_at(
                            path, line,
                            f"{label} {direction} field {name!r}: {writer} "
                            f"writes {sorted(w.types)} but {reader} expects "
                            f"{sorted(r.types)}",
                        )


def _resolve_error_class(name: str):
    import repro.errors as errors_mod

    return getattr(errors_mod, name, None)


@register_program
class ErrorCodeUnmappedRule(_WireRule):
    name = "error-code-unmapped"
    description = (
        "every TdpError raised on the dispatch path must round-trip "
        "through the wire error maps back to its own class"
    )

    def check_schema(self, schema: WireSchema) -> Iterator[Finding]:
        from repro.errors import TdpError

        errs = schema.errors
        decode = {
            wire: _resolve_error_class(cls_name)
            for wire, cls_name in errs.decode_map.items()
        }
        encode_order = [
            (_resolve_error_class(cls_name), cls_name, wire)
            for cls_name, wire in errs.encode_order
        ]
        map_site = errs.encode_map_site or errs.decode_map_site
        if map_site is None:
            return
        path, line = map_site

        # (a) unresolvable names in either map
        for wire, cls_name in sorted(errs.decode_map.items()):
            if decode[wire] is None:
                yield self.finding_at(
                    *(errs.decode_map_site or map_site),
                    f"_ERROR_TYPES maps {wire!r} to unknown error class "
                    f"{cls_name}",
                )
        for cls, cls_name, wire in encode_order:
            if cls is None:
                yield self.finding_at(
                    path, line,
                    f"_TYPE_NAMES lists unknown error class {cls_name}",
                )

        resolved_order = [(c, n, w) for c, n, w in encode_order if c is not None]

        # (b) encode order: a base class listed before its subclass
        # shadows it (error_fields walks the map with isinstance)
        for i, (cls, cls_name, _) in enumerate(resolved_order):
            for later_cls, later_name, _ in resolved_order[i + 1:]:
                if later_cls is not cls and issubclass(later_cls, cls):
                    yield self.finding_at(
                        path, line,
                        f"_TYPE_NAMES lists {cls_name} before its subclass "
                        f"{later_name}; the subclass can never encode",
                    )

        def encodes_to(cls) -> str | None:
            for mapped_cls, _, wire in resolved_order:
                if issubclass(cls, mapped_cls):
                    return wire
            return None

        # (c) bijection: encoding then decoding must be the identity on
        # every mapped class
        for mapped_cls, cls_name, wire in resolved_order:
            decoded = decode.get(wire)
            if decoded is None:
                yield self.finding_at(
                    path, line,
                    f"{cls_name} encodes to {wire!r} but _ERROR_TYPES has "
                    f"no decoding for it",
                )
            elif decoded is not mapped_cls:
                yield self.finding_at(
                    path, line,
                    f"{cls_name} encodes to {wire!r} which decodes to "
                    f"{decoded.__name__}, not back to {cls_name}",
                )

        # (d) every TdpError raised on the dispatch path round-trips
        for cls_name in sorted(errs.raised):
            cls = _resolve_error_class(cls_name)
            if cls is None or not (isinstance(cls, type)
                                   and issubclass(cls, TdpError)):
                continue
            raise_path, raise_line = errs.raised[cls_name]
            wire = encodes_to(cls)
            if wire is None:
                yield self.finding_at(
                    raise_path, raise_line,
                    f"{cls_name} is raised during dispatch but has no "
                    f"wire error mapping in _TYPE_NAMES",
                )
                continue
            decoded = decode.get(wire)
            if decoded is not None and decoded is not cls \
                    and not issubclass(cls, decoded):
                yield self.finding_at(
                    raise_path, raise_line,
                    f"{cls_name} encodes to {wire!r} but the client decodes "
                    f"that as {decoded.__name__}; the original class is lost",
                )

        # (e) client-synthesized error_type strings must decode
        for wire, (syn_path, syn_line) in sorted(errs.synthesized.items()):
            if wire not in errs.decode_map:
                yield self.finding_at(
                    syn_path, syn_line,
                    f"client synthesizes error_type {wire!r} which "
                    f"_ERROR_TYPES cannot decode",
                )


#: packages whose modules speak the wire; json.dumps/loads of frames is
#: confined to the codec module so the binary codec can swap in later
WIRE_PACKAGES = ("repro.attrspace", "repro.transport", "repro.tdp")

#: modules sanctioned to struct-pack wire bytes: the binary body codec
#: and the length-prefix framing layer.  Nothing else in the wire
#: packages may hand-roll byte packing — the codec seam stays two
#: modules wide.
BINARY_CODEC_MODULES = (
    "repro.attrspace.bincodec",
    "repro.transport.framing",
)


@register
class RawWireCodecRule(Rule):
    name = "raw-wire-codec"
    description = (
        "encode/decode in wire-facing packages is confined to the "
        "sanctioned codec sites: json.dumps/loads to attrspace/protocol, "
        "struct packing to attrspace/bincodec + transport/framing"
    )

    def check(self, module: ModuleSource) -> Iterator[Finding]:
        if not module.in_package(*WIRE_PACKAGES):
            return
        if module.modname != CODEC_MODULE:
            yield from self._check_json(module)
        if module.modname not in BINARY_CODEC_MODULES:
            yield from self._check_struct(module)

    def _check_json(self, module: ModuleSource) -> Iterator[Finding]:
        json_names = self._imported_names(module, "json", ("dumps", "loads"))
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            offender: str | None = None
            if isinstance(func, ast.Attribute) and func.attr in ("dumps", "loads") \
                    and isinstance(func.value, ast.Name) \
                    and func.value.id == "json":
                offender = f"json.{func.attr}"
            elif isinstance(func, ast.Name) and func.id in json_names:
                offender = func.id
            if offender is not None:
                yield self.finding(
                    module, node,
                    f"{offender} on the wire path: route through the "
                    f"codec in {CODEC_MODULE} instead",
                )

    _STRUCT_CALLS = ("pack", "unpack", "pack_into", "unpack_from", "Struct")

    def _check_struct(self, module: ModuleSource) -> Iterator[Finding]:
        struct_names = self._imported_names(module, "struct", self._STRUCT_CALLS)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            offender: str | None = None
            if isinstance(func, ast.Attribute) \
                    and func.attr in self._STRUCT_CALLS \
                    and isinstance(func.value, ast.Name) \
                    and func.value.id == "struct":
                offender = f"struct.{func.attr}"
            elif isinstance(func, ast.Name) and func.id in struct_names:
                offender = func.id
            if offender is not None:
                sanctioned = " or ".join(BINARY_CODEC_MODULES)
                yield self.finding(
                    module, node,
                    f"{offender} on the wire path: byte packing belongs "
                    f"in {sanctioned}",
                )

    @staticmethod
    def _imported_names(
        module: ModuleSource, source: str, wanted: tuple[str, ...]
    ) -> set[str]:
        names: set[str] = set()
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ImportFrom) and node.module == source:
                for alias in node.names:
                    if alias.name in wanted:
                        names.add(alias.asname or alias.name)
        return names
