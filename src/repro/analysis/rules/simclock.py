"""wall-clock-in-sim: the simulated cluster runs on the sim clock.

Performance results in ``repro.sim`` and ``repro.condor`` are virtual
(the kernel charges virtual CPU cost per operation) so experiments are
deterministic.  A single ``time.time()``/``time.sleep()`` in those
packages silently couples results to host load.  Code needing a clock
takes a :class:`repro.util.clock.Clock` instead.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.core import Finding, ModuleSource, Rule, dotted_name, register

_SCOPED_PACKAGES = ("repro.sim", "repro.condor")
_BANNED = {"time", "sleep", "monotonic", "perf_counter"}


@register
class WallClockInSim(Rule):
    name = "wall-clock-in-sim"
    description = (
        "time.time/time.sleep/time.monotonic are banned under repro.sim "
        "and repro.condor; inject a repro.util.clock.Clock"
    )

    def check(self, module: ModuleSource) -> Iterator[Finding]:
        if not module.in_package(*_SCOPED_PACKAGES):
            return
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Attribute):
                dn = dotted_name(node)
                if dn is not None and dn.startswith("time.") \
                        and dn.split(".", 1)[1] in _BANNED:
                    yield self.finding(
                        module,
                        node,
                        f"{dn} in simulated-cluster code; use "
                        "repro.util.clock (the sim runs on virtual time)",
                    )
            elif isinstance(node, ast.ImportFrom) and node.module == "time":
                banned = [a.name for a in node.names if a.name in _BANNED]
                if banned:
                    yield self.finding(
                        module,
                        node,
                        f"importing {', '.join(banned)} from time in "
                        "simulated-cluster code; use repro.util.clock",
                    )
