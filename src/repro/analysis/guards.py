"""Whole-program guarded-by inference: which lock protects which field.

The lock-order half of the concurrency sanitizer (PRs 1-2) proves that
the locks we *do* take cannot deadlock — it says nothing about coverage:
a daemon field mutated with no lock held at all passes every existing
gate.  This module closes that hole by inferring, for every shared
instance field of every daemon class, the lock that guards it, and
flagging the access sites that break the inferred discipline.

The pass reuses the interprocedural index of
:mod:`repro.analysis.lockgraph` (class/lock/method resolution, the
held-lockset body walk, the call graph) and layers three computations on
top:

1. **Entry locksets** — a must-hold fixpoint over the call graph: a
   *private* function whose every resolved call site runs under lock L
   executes with L held on entry, so field accesses in its body count as
   guarded by L.  Public functions, thread entry points, and functions
   with no resolved callers enter with the empty lockset (they are
   callable from anywhere, tests included).
2. **Thread roots** — the transitive call closure of every
   ``spawn()`` target and ``call_later()`` callback defines one root
   each; the closure of the public API surface is the ``main`` root.  A
   function reached only through dynamic dispatch (stored callbacks) is
   attributed to the pseudo-root ``indirect``: its executing thread is
   unknown, which biases the analysis toward *checking* such fields.
3. **Guard inference** per field (instance attributes assigned in
   ``__init__``, excluding the locks themselves):

   * accesses inside the constructor phase (``__init__`` and private
     helpers called from nowhere else) are setup, not sharing;
   * a field never written after construction is **final** — reads need
     no guard;
   * a field whose remaining accesses all happen on one thread root is
     **confined** — no guard needed, but an access from a second root is
     a ``thread-confined-escape``;
   * otherwise the guard is the lock held at a **supermajority**
     (>= 2/3) of the access sites; minority sites without it are
     ``guarded-field-unlocked`` findings;
   * no supermajority and no confinement means the discipline is
     unclear: ``guard-ambiguous``, fixed by locking consistently or by
     an explicit ``# tdp-guard: field -> module.Class.lock``
     declaration.

Intentional exceptions are **waivers** — entries in :data:`WAIVERS`
keyed ``"<field key>@<accessing function>"`` with a justification, the
same visible-and-diffable pattern as ``wireschema.WAIVERS``.  A waiver
that no longer suppresses anything is itself a ``guard-manifest-stale``
finding, so dead entries cannot mask a regression.

The inferred result serializes to the committed ``guards.lock.json``
(``python -m repro guards dump|check``), which is also the manifest the
**runtime field-access witness** reads: under ``TDP_SANITIZE=1``,
:func:`repro.util.sync.arm_guard_witness` installs a descriptor on every
witnessed field that raises
:class:`~repro.errors.GuardViolationError` the moment the field is
touched without its declared guard held — static inference and live
witness share one manifest, exactly as :mod:`repro.analysis.lockorder`
already does for ordering.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from typing import Any, Iterable

from repro.analysis.core import ModuleSource
from repro.analysis.lockgraph import (
    ClassInfo,
    FieldAccess,
    Program,
    program_cached,
)

#: fraction of access sites that must agree on a lock (or a root) for
#: the guard (or the confinement) to be inferred
SUPERMAJORITY = 2 / 3

#: the synthetic root for code reachable from the public API surface
MAIN_ROOT = "main"
#: the pseudo-root for functions reached only through dynamic dispatch
#: (stored callbacks, timers the resolver could not see): the executing
#: thread is unknown, so it never counts as confinement
INDIRECT_ROOT = "indirect"

#: guard spelling for thread-confined fields in declarations/lock file
CONFINED_PREFIX = "confined:"

#: declared-only guard for sanctioned benign races: monotonic latches
#: (``_closed``/``_stopped`` flags), write-once publishes sequenced by a
#: thread start or a handshake, and owner-stamp fields that are only
#: trusted when they name the reading thread.  Never inferred — a
#: ``volatile`` tdp-guard declaration is an explicit, reviewable claim
#: that every race on the field is benign.
VOLATILE = "volatile"

LOCK_FILENAME = "guards.lock.json"
LOCK_SCHEMA_VERSION = 1

#: Sanctioned unguarded access sites, keyed ``"<field key>@<function>"``
#: with the justification.  Every entry must suppress at least one live
#: violation or ``guard-manifest-stale`` fires on it.  Emitted into the
#: lock file so exceptions stay visible and diffable.
WAIVERS: dict[str, str] = {
    "attrspace.server._Connection.member@attrspace.server.AttributeSpaceServer._op_attach": (
        "attach (re)binds the member before any later op on this "
        "connection can read it: the serving thread processes frames "
        "serially, and cross-thread readers (writer_id on the fan-out "
        "path) tolerate the pre-attach peer label"
    ),
    "transport.eventloop._Conn.token@transport.eventloop.ServerSocketLoop._teardown_conn": (
        "teardown only runs on the loop thread: _close_conn dispatches "
        "to _drain_closes inline only when threading.get_ident() matches "
        "the loop thread, off-loop closers just enqueue and wake — a "
        "runtime dispatch the static reachability pass cannot see"
    ),
    "sim.process.SimProcess.state@sim.process.SimProcess.__repr__": (
        "diagnostic repr must never block on the process lock (it is "
        "called from log statements inside scheduler critical sections); "
        "a stale state string is acceptable"
    ),
    "sim.process.SimProcess.pending_syscall@sim.process.SimProcess._finish": (
        "terminate() finishes a process from outside the scheduler "
        "thread, under the process lock, only after _set_state(EXITED) "
        "makes the scheduler skip the slice; the scheduler re-reads "
        "state under the lock before touching interpreter fields"
    ),
}

#: Fields carrying a lock guard in the manifest that the runtime witness
#: deliberately does not wrap, with the justification (e.g. hot-path
#: fields whose descriptor overhead would distort sanitizer runs, or
#: fields with sanctioned lock-free fast-path reads).
WITNESS_EXEMPT: dict[str, str] = {}


# ---------------------------------------------------------------------------
# Result model
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Site:
    """One post-construction access to one field."""

    path: str
    line: int
    func: str
    write: bool
    held: frozenset[str]
    roots: frozenset[str]

    def describe(self) -> str:
        kind = "write" if self.write else "read"
        return f"{kind} in {self.func}"


@dataclass
class FieldGuard:
    """The inferred guard discipline for one instance field."""

    key: str                      # "attrspace.server._Connection.lease"
    owner: str                    # owning class qualname
    attr: str
    decl_path: str
    decl_line: int
    sites: list[Site] = field(default_factory=list)
    writes: int = 0
    roots: frozenset[str] = frozenset()
    #: lock key, ``confined:<root>``, ``final``, or None (ambiguous)
    guard: str | None = None
    #: "inferred" | "declared" | None
    source: str | None = None
    #: sites that break the guard, with the rule name they trip
    violations: list[tuple[Site, str]] = field(default_factory=list)
    #: waiver keys consumed by this field's violations
    waived: list[str] = field(default_factory=list)

    @property
    def shared(self) -> bool:
        return len(self.roots) > 1

    @property
    def lock_guarded(self) -> bool:
        return (
            self.guard is not None
            and not self.guard.startswith(CONFINED_PREFIX)
            and self.guard not in ("final", VOLATILE)
        )

    def coverage(self) -> tuple[int, int]:
        """(sites holding the inferred lock, total sites)."""
        if not self.lock_guarded:
            return (0, len(self.sites))
        return (
            sum(1 for s in self.sites if self.guard in s.held),
            len(self.sites),
        )


@dataclass(frozen=True)
class Declaration:
    """One parsed ``# tdp-guard: field -> guard`` comment."""

    field_key: str
    guard: str
    path: str
    line: int


@dataclass(frozen=True)
class StaleEntry:
    """A manifest entry (waiver/declaration) that matches nothing."""

    kind: str          # "waiver" | "declaration"
    key: str
    path: str
    line: int
    message: str


@dataclass
class GuardReport:
    """Everything the guard rules, the CLI, and the witness consume."""

    #: field key -> inference result, every candidate field (final and
    #: main-confined included, so declarations/waivers can be validated)
    fields: dict[str, FieldGuard] = field(default_factory=dict)
    declarations: dict[str, Declaration] = field(default_factory=dict)
    stale: list[StaleEntry] = field(default_factory=list)
    #: resolved thread roots (diagnostics + non-vacuity pins)
    thread_roots: frozenset[str] = frozenset()
    #: guard keys the runtime witness can observe (tracked_* factories)
    tracked_lock_keys: frozenset[str] = frozenset()
    #: classes with ``__slots__`` — no instance ``__dict__``, so the
    #: witness descriptor has nowhere to store values or the armed flag
    slotted_owners: frozenset[str] = frozenset()
    #: total post-construction access sites considered
    total_sites: int = 0

    def guarded_fields(self) -> dict[str, FieldGuard]:
        """The manifest-worthy subset: every explicitly declared field,
        lock-guarded fields, and fields confined to a non-main thread
        root (the interesting invariants; inferred-final and main-only
        fields are noise)."""
        out: dict[str, FieldGuard] = {}
        for key, fg in self.fields.items():
            if fg.source == "declared" or fg.lock_guarded:
                out[key] = fg
            elif fg.guard and fg.guard.startswith(CONFINED_PREFIX) \
                    and fg.guard != f"{CONFINED_PREFIX}{MAIN_ROOT}" \
                    and len(fg.sites) > 0:
                out[key] = fg
        return out


# ---------------------------------------------------------------------------
# Entry locksets (must-hold fixpoint)
# ---------------------------------------------------------------------------


def _leaf_name(qualname: str) -> str:
    return qualname.rsplit(".", 1)[-1]


def _is_public(qualname: str) -> bool:
    """Callable from outside the analyzed program (API surface)?

    Dunders count as public: constructors, context managers, and
    operator hooks all run on whatever thread the caller happens to be.
    """
    leaf = _leaf_name(qualname)
    if leaf.startswith("__") and leaf.endswith("__"):
        return True
    return not leaf.startswith("_")


def entry_locksets(program: Program) -> dict[str, frozenset[str]]:
    """For every function, the lockset provably held on entry.

    Greatest-fixpoint must-analysis over all resolved call sites:
    ``entry(f) = ∩ over call sites (entry(caller) ∪ held_at_site)``.
    Public functions, thread entry points, and functions with no
    resolved call sites are pinned to the empty set — they can be
    entered from contexts the program does not show.
    """
    roots = program.thread_roots()
    callers: dict[str, list[tuple[str, tuple[str, ...]]]] = {}
    for q, fi in program.functions.items():
        for held, callee, _line in fi.calls_under:
            callers.setdefault(callee, []).append((q, held))

    empty: frozenset[str] = frozenset()
    entry: dict[str, frozenset[str] | None] = {}
    for q in program.functions:
        if _is_public(q) or q in roots or not callers.get(q):
            entry[q] = empty
        else:
            entry[q] = None  # ⊤: optimistic until a caller pins it

    changed = True
    while changed:
        changed = False
        for q in program.functions:
            if entry[q] == empty:
                continue
            meet: frozenset[str] | None = None
            for caller, held in callers.get(q, ()):
                base = entry.get(caller)
                if base is None:
                    continue  # still ⊤; contributes nothing yet
                site_set = base | frozenset(held)
                meet = site_set if meet is None else (meet & site_set)
                if not meet:
                    break
            if meet is not None and meet != entry[q]:
                entry[q] = meet
                changed = True
    return {q: (s if s is not None else empty) for q, s in entry.items()}


# ---------------------------------------------------------------------------
# Thread-root attribution
# ---------------------------------------------------------------------------


def root_map(program: Program) -> dict[str, frozenset[str]]:
    """Function qualname -> the set of thread roots that can reach it.

    Each ``spawn``/``call_later`` target roots its own closure under its
    target's qualname; the closure of every public function is the
    ``main`` root.  Functions in neither closure get ``indirect``.
    """
    roots = sorted(program.thread_roots())
    closures: dict[str, set[str]] = {
        r: program.reachable_from([r]) for r in roots
    }
    public = [q for q in program.functions if _is_public(q)]
    main_closure = program.reachable_from(public)
    out: dict[str, frozenset[str]] = {}
    for q in program.functions:
        mine = {r for r in roots if q in closures[r]}
        if q in main_closure:
            mine.add(MAIN_ROOT)
        if not mine:
            mine.add(INDIRECT_ROOT)
        out[q] = frozenset(mine)
    return out


# ---------------------------------------------------------------------------
# Construction phase
# ---------------------------------------------------------------------------


def _construction_functions(program: Program) -> dict[str, set[str]]:
    """Class qualname -> functions that are part of its construction.

    ``__init__`` itself plus every private function whose *every*
    resolved call site lies inside the set (constructor helper methods).
    Accesses there run before the object is published, so they need no
    guard and the runtime witness is not yet armed.
    """
    callers: dict[str, set[str]] = {}
    for q, fi in program.functions.items():
        for _held, callee, _line in fi.calls_under:
            callers.setdefault(callee, set()).add(q)

    out: dict[str, set[str]] = {}
    for qual, ci in program.classes_by_qual.items():
        constr = {
            f"{c.qualname}.__init__"
            for c in program.classes_by_qual.values()
            if ci in c.mro() and "__init__" in c.methods
        }
        constr.add(f"{qual}.__init__")
        changed = True
        while changed:
            changed = False
            for q in program.functions:
                if q in constr or _is_public(q):
                    continue
                calling = callers.get(q)
                if calling and calling <= constr:
                    constr.add(q)
                    changed = True
        out[qual] = constr
    return out


# ---------------------------------------------------------------------------
# Declaration parsing (the ``tdp-guard`` comment directive)
# ---------------------------------------------------------------------------

_DECL_RE = re.compile(
    r"#\s*tdp-guard\s*:\s*(?P<field>[\w.]+)\s*->\s*(?P<guard>[\w.:]+)"
)


def _class_spans(tree: ast.Module) -> list[tuple[int, int, str]]:
    spans = []
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef):
            spans.append((node.lineno, node.end_lineno or node.lineno, node.name))
    return spans


def parse_declarations(
    modules: Iterable[ModuleSource], program: Program
) -> tuple[dict[str, Declaration], list[StaleEntry]]:
    """Collect ``# tdp-guard`` comments, resolving field references.

    A bare ``field`` resolves against the class enclosing the comment;
    ``Class.field`` and ``module.Class.field`` forms resolve program-
    wide.  Unresolvable declarations surface as stale entries rather
    than being dropped.
    """
    from repro.analysis.lockgraph import strip_repro

    decls: dict[str, Declaration] = {}
    stale: list[StaleEntry] = []
    for module in modules:
        try:
            comments = [
                (tok.start[0], tok.string)
                for tok in tokenize.generate_tokens(
                    io.StringIO(module.text).readline
                )
                if tok.type == tokenize.COMMENT
            ]
        except (tokenize.TokenizeError, IndentationError):
            continue
        spans = _class_spans(module.tree)
        mod = strip_repro(module.modname)
        for lineno, comment in comments:
            m = _DECL_RE.search(comment)
            if m is None:
                continue
            raw_field, guard = m.group("field"), m.group("guard")
            key = _resolve_field_ref(raw_field, mod, lineno, spans, program)
            if key is None:
                stale.append(StaleEntry(
                    kind="declaration", key=raw_field,
                    path=module.path, line=lineno,
                    message=(
                        f"tdp-guard declaration names unknown field "
                        f"{raw_field!r}"
                    ),
                ))
                continue
            resolved_guard = _resolve_guard_ref(guard, program)
            if resolved_guard is None:
                stale.append(StaleEntry(
                    kind="declaration", key=raw_field,
                    path=module.path, line=lineno,
                    message=(
                        f"tdp-guard declaration for {key} names unknown "
                        f"guard {guard!r} (expected a lock key "
                        f"module.Class.attr or confined:<root>)"
                    ),
                ))
                continue
            decls[key] = Declaration(
                field_key=key, guard=resolved_guard,
                path=module.path, line=lineno,
            )
    return decls, stale


def _resolve_field_ref(
    raw: str,
    mod: str,
    lineno: int,
    spans: list[tuple[int, int, str]],
    program: Program,
) -> str | None:
    parts = raw.split(".")
    if len(parts) == 1:
        # bare attr: innermost enclosing class
        best = None
        for start, end, name in spans:
            if start <= lineno <= end:
                if best is None or start > best[0]:
                    best = (start, name)
        if best is None:
            return None
        qual = f"{mod}.{best[1]}" if mod else best[1]
        ci = program.classes_by_qual.get(qual)
        if ci is None:
            return None
        owner = ci.field_owner(parts[0])
        return f"{owner.qualname}.{parts[0]}" if owner is not None else None
    attr = parts[-1]
    cls_ref = ".".join(parts[:-1])
    ci = _resolve_class_ref(cls_ref, program)
    if ci is None:
        return None
    owner = ci.field_owner(attr)
    return f"{owner.qualname}.{attr}" if owner is not None else None


def _resolve_class_ref(ref: str, program: Program) -> ClassInfo | None:
    hit = program.classes_by_qual.get(ref)
    if hit is not None:
        return hit
    cands = program.classes_by_name.get(ref.rsplit(".", 1)[-1], [])
    matching = [c for c in cands if c.qualname.endswith(ref)]
    return matching[0] if len(matching) == 1 else None


def _resolve_guard_ref(raw: str, program: Program) -> str | None:
    if raw == VOLATILE:
        return raw
    if raw.startswith(CONFINED_PREFIX):
        return raw  # confinement roots are validated against sites later
    attr = raw.rsplit(".", 1)[-1]
    owners = program.lock_attr_owners.get(attr, set())
    exact = [key for key, _kind in owners if key == raw or key.endswith(f".{raw}")]
    if len(exact) == 1:
        return exact[0]
    if len(owners) == 1 and "." not in raw:
        return next(iter(owners))[0]
    return None


# ---------------------------------------------------------------------------
# The inference
# ---------------------------------------------------------------------------


def infer(modules: Iterable[ModuleSource]) -> GuardReport:
    """Run the guarded-by inference over a parsed module set."""
    module_list = list(modules)
    program = program_cached(module_list)
    entry = entry_locksets(program)
    roots_of = root_map(program)
    construction = _construction_functions(program)

    report = GuardReport(
        thread_roots=frozenset(program.thread_roots()),
        tracked_lock_keys=frozenset(program.tracked_lock_keys),
        slotted_owners=frozenset(
            qual for qual, ci in program.classes_by_qual.items()
            if ci.has_slots
        ),
    )
    decls, stale = parse_declarations(module_list, program)
    report.declarations = decls
    report.stale = stale

    # 1. candidate fields + their post-construction access sites
    accesses: dict[str, list[FieldAccess]] = {}
    for fi in program.functions.values():
        for acc in fi.accesses:
            accesses.setdefault(f"{acc.owner}.{acc.attr}", []).append(acc)

    for qual, ci in sorted(program.classes_by_qual.items()):
        constr = construction.get(qual, set())
        for attr, line in sorted(ci.init_fields.items()):
            if ci.find_lock(attr) is not None:
                continue  # the lock itself, not guarded state
            key = f"{qual}.{attr}"
            fg = FieldGuard(
                key=key, owner=qual, attr=attr,
                decl_path=ci.modinfo.src.path, decl_line=line,
            )
            for acc in accesses.get(key, ()):
                if acc.func in constr:
                    continue  # construction phase
                fg.sites.append(Site(
                    path=acc.path, line=acc.line, func=acc.func,
                    write=acc.write,
                    held=frozenset(acc.held) | entry.get(acc.func, frozenset()),
                    roots=roots_of.get(acc.func, frozenset({INDIRECT_ROOT})),
                ))
            fg.writes = sum(1 for s in fg.sites if s.write)
            fg.roots = frozenset().union(*(s.roots for s in fg.sites)) \
                if fg.sites else frozenset()
            report.fields[key] = fg
            report.total_sites += len(fg.sites)

    # 2. guard inference + violations
    for fg in report.fields.values():
        _infer_field(fg, decls.get(fg.key))

    # 3. waivers: subtract sanctioned sites; track consumption
    consumed: set[str] = set()
    for fg in report.fields.values():
        kept: list[tuple[Site, str]] = []
        for site, rule in fg.violations:
            waiver_key = f"{fg.key}@{site.func}"
            if waiver_key in WAIVERS:
                consumed.add(waiver_key)
                fg.waived.append(waiver_key)
            else:
                kept.append((site, rule))
        fg.violations = kept

    # 4. stale manifest entries
    guards_module = next(
        (m for m in module_list if m.modname.endswith("analysis.guards")), None
    )
    for waiver_key in sorted(WAIVERS):
        if waiver_key in consumed:
            continue
        field_key = waiver_key.split("@", 1)[0]
        if guards_module is None:
            continue
        line = _text_line(guards_module.text, waiver_key)
        if field_key not in report.fields:
            msg = f"waiver {waiver_key!r} names unknown field {field_key!r}"
        else:
            msg = (
                f"waiver {waiver_key!r} suppresses nothing — the access "
                f"is gone or now respects the guard; delete the entry"
            )
        report.stale.append(StaleEntry(
            kind="waiver", key=waiver_key,
            path=guards_module.path, line=line, message=msg,
        ))
    for key, decl in decls.items():
        if key not in report.fields:
            report.stale.append(StaleEntry(
                kind="declaration", key=key, path=decl.path, line=decl.line,
                message=f"tdp-guard declaration names unknown field {key!r}",
            ))
    return report


def _text_line(text: str, needle: str) -> int:
    for i, line in enumerate(text.splitlines(), start=1):
        if needle in line:
            return i
    return 1


def _infer_field(fg: FieldGuard, decl: Declaration | None) -> None:
    """Fill ``guard``/``source``/``violations`` for one field."""
    sites = fg.sites
    n = len(sites)

    if decl is not None:
        fg.guard, fg.source = decl.guard, "declared"
        if decl.guard == VOLATILE:
            pass  # every race sanctioned by the declaration
        elif decl.guard.startswith(CONFINED_PREFIX):
            # An ``indirect`` site does not violate a *declared*
            # confinement: the declaration is the human asserting which
            # thread the dynamic dispatch runs on.
            root = decl.guard[len(CONFINED_PREFIX):]
            fg.violations = [
                (s, "thread-confined-escape")
                for s in sites if s.roots - {root, INDIRECT_ROOT}
            ]
        else:
            fg.violations = [
                (s, "guarded-field-unlocked")
                for s in sites if decl.guard not in s.held
            ]
        return

    if n == 0 or fg.writes == 0:
        fg.guard, fg.source = "final", "inferred"
        return

    if len(fg.roots) <= 1:
        only = next(iter(fg.roots)) if fg.roots else MAIN_ROOT
        if only != INDIRECT_ROOT:
            fg.guard, fg.source = f"{CONFINED_PREFIX}{only}", "inferred"
            return
        # every access via dynamic dispatch: fall through to lock vote

    # lock vote
    tally: dict[str, int] = {}
    for s in sites:
        for lock in s.held:
            tally[lock] = tally.get(lock, 0) + 1
    best, best_cov = None, 0
    for lock in sorted(tally):
        if tally[lock] > best_cov:
            best, best_cov = lock, tally[lock]
    if best is not None and best_cov >= 2 and best_cov / n >= SUPERMAJORITY:
        fg.guard, fg.source = best, "inferred"
        fg.violations = [
            (s, "guarded-field-unlocked") for s in sites if best not in s.held
        ]
        return

    # confinement vote: sites attributable to exactly one root
    root_tally: dict[str, int] = {}
    for s in sites:
        if len(s.roots) == 1:
            (r,) = s.roots
            if r != INDIRECT_ROOT:
                root_tally[r] = root_tally.get(r, 0) + 1
    best_root, root_cov = None, 0
    for r in sorted(root_tally):
        if root_tally[r] > root_cov:
            best_root, root_cov = r, root_tally[r]
    if best_root is not None and root_cov / n >= SUPERMAJORITY:
        fg.guard, fg.source = f"{CONFINED_PREFIX}{best_root}", "inferred"
        fg.violations = [
            (s, "thread-confined-escape")
            for s in sites if s.roots != frozenset({best_root})
        ]
        return

    fg.guard, fg.source = None, None  # ambiguous


#: one-entry memo so the four guard rules share a single inference per
#: engine invocation (the engine passes each program rule the same list)
_CACHE: dict[tuple, GuardReport] = {}


def infer_cached(modules: list[ModuleSource]) -> GuardReport:
    key = tuple((m.modname, m.path, hash(m.text)) for m in modules)
    if key not in _CACHE:
        _CACHE.clear()
        _CACHE[key] = infer(modules)
    return _CACHE[key]


# ---------------------------------------------------------------------------
# Lock-file serialization (guards.lock.json)
# ---------------------------------------------------------------------------


def to_lock(report: GuardReport) -> dict:
    """Render the inference as the committed ``guards.lock.json`` payload.

    Free of file/line information so refactors that do not change the
    guard discipline do not churn the artifact.
    """
    fields: dict[str, dict[str, Any]] = {}
    for key, fg in sorted(report.guarded_fields().items()):
        fields[key] = {
            "guard": fg.guard,
            "source": fg.source,
            # Witnessed = the runtime can actually check it: a lock
            # guard with no waived sites, backed by a tracked_* lock
            # (plain threading locks never appear in held_lock_keys()),
            # on a class with an instance __dict__ (the descriptor
            # stores the value and the armed flag there, so __slots__
            # classes are out of reach).
            "witness": bool(
                fg.lock_guarded
                and not fg.waived
                and fg.guard in report.tracked_lock_keys
                and fg.owner not in report.slotted_owners
                and key not in WITNESS_EXEMPT
            ),
        }
    return {
        "schema_version": LOCK_SCHEMA_VERSION,
        "fields": fields,
        "waivers": dict(sorted(WAIVERS.items())),
        "witness_exempt": dict(sorted(WITNESS_EXEMPT.items())),
    }


def render_lock(lock: dict) -> str:
    import json as _json

    return _json.dumps(lock, indent=2, sort_keys=True) + "\n"


def load_lock(path: Any) -> dict:
    import json as _json
    import pathlib

    return _json.loads(pathlib.Path(path).read_text(encoding="utf-8"))


def lock_drift(committed: dict, current: dict) -> list[str]:
    """Human-readable differences between two lock payloads (empty = none)."""

    def walk(prefix: str, a: Any, b: Any, out: list[str]) -> None:
        if isinstance(a, dict) and isinstance(b, dict):
            for key in sorted(set(a) | set(b)):
                where = f"{prefix}.{key}" if prefix else str(key)
                if key not in a:
                    out.append(f"added: {where} = {b[key]!r}")
                elif key not in b:
                    out.append(f"removed: {where} (was {a[key]!r})")
                else:
                    walk(where, a[key], b[key], out)
        elif a != b:
            out.append(f"changed: {prefix}: {a!r} -> {b!r}")

    problems: list[str] = []
    walk("", committed, current, problems)
    return problems


def witnessed_fields(lock: dict) -> dict[str, str]:
    """``guards.lock.json`` payload -> {field key: guard lock key} for
    every field the runtime witness should wrap."""
    out: dict[str, str] = {}
    for key, spec in lock.get("fields", {}).items():
        guard = spec.get("guard", "")
        if spec.get("witness") and guard and not guard.startswith(CONFINED_PREFIX):
            out[key] = guard
    return out


def infer_from_tree(src_root: Any = None) -> GuardReport:
    """Run the inference over the installed source tree.

    ``src_root`` is the directory containing the ``repro`` package;
    defaults to the tree this module was imported from.
    """
    import pathlib

    from repro.analysis.engine import discover_files

    if src_root is None:
        src_root = pathlib.Path(__file__).resolve().parents[2]
    else:
        src_root = pathlib.Path(src_root)
    modules = [
        ModuleSource.parse(p)
        for p in discover_files([src_root / "repro"])
    ]
    return infer(modules)
