"""Reporters: render findings for humans (text) or tooling (JSON)."""

from __future__ import annotations

import json
from typing import Sequence

from repro.analysis.core import Finding, all_rules


def render_text(findings: Sequence[Finding]) -> str:
    """GCC-style one-line-per-finding report plus a summary tail."""
    lines = [f.format() for f in findings]
    if findings:
        by_rule: dict[str, int] = {}
        for f in findings:
            by_rule[f.rule] = by_rule.get(f.rule, 0) + 1
        breakdown = ", ".join(f"{n} {rule}" for rule, n in sorted(by_rule.items()))
        lines.append("")
        lines.append(f"{len(findings)} finding(s): {breakdown}")
    else:
        lines.append("0 findings")
    return "\n".join(lines)


def render_json(findings: Sequence[Finding]) -> str:
    """Stable machine-readable report (sorted findings, rule inventory)."""
    payload = {
        "findings": [f.to_json() for f in findings],
        "count": len(findings),
        "rules": {r.name: r.description for r in all_rules()},
    }
    return json.dumps(payload, indent=2, sort_keys=True)
