"""The lint engine: discover files, parse, run rules, filter suppressions."""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, Sequence

from repro.analysis.core import Finding, ModuleSource, Rule, all_rules
from repro.analysis.suppress import SuppressionIndex

#: directories never descended into during discovery
_SKIP_DIRS = {"__pycache__", ".git", ".venv", "node_modules", "build", "dist"}


def discover_files(paths: Iterable[str | Path]) -> list[Path]:
    """Expand files/directories into a sorted, de-duplicated .py file list."""
    seen: set[Path] = set()
    out: list[Path] = []
    for raw in paths:
        p = Path(raw)
        if p.is_dir():
            candidates = sorted(
                f for f in p.rglob("*.py")
                if not any(part in _SKIP_DIRS for part in f.parts)
            )
        elif p.suffix == ".py":
            candidates = [p]
        else:
            candidates = []
        for f in candidates:
            key = f.resolve()
            if key not in seen:
                seen.add(key)
                out.append(f)
    return out


def lint_source(
    module: ModuleSource, rules: Sequence[Rule] | None = None
) -> list[Finding]:
    """Run rules over one parsed module, honoring suppressions."""
    active = list(rules) if rules is not None else all_rules()
    index = SuppressionIndex.parse(module.text)
    findings: list[Finding] = []
    for rule in active:
        for finding in rule.check(module):
            if not index.is_suppressed(finding.rule, finding.line):
                findings.append(finding)
    return sorted(findings)


def lint_paths(
    paths: Iterable[str | Path],
    *,
    rules: Sequence[Rule] | None = None,
) -> list[Finding]:
    """Lint every .py file reachable from ``paths``; returns all findings.

    Unparseable files surface as a synthetic ``parse-error`` finding
    rather than an exception — a syntax error must fail the lint gate,
    not crash it.
    """
    findings: list[Finding] = []
    for path in discover_files(paths):
        try:
            module = ModuleSource.parse(path)
        except (SyntaxError, UnicodeDecodeError, OSError) as e:
            findings.append(
                Finding(
                    path=str(path),
                    line=getattr(e, "lineno", None) or 1,
                    col=1,
                    rule="parse-error",
                    message=f"could not parse: {e}",
                )
            )
            continue
        findings.extend(lint_source(module, rules))
    return sorted(findings)
