"""The lint engine: discover files, parse, run rules, filter suppressions."""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, Sequence

from repro.analysis.core import (
    Finding,
    ModuleSource,
    ProgramRule,
    Rule,
    all_program_rules,
    all_rules,
)
from repro.analysis.suppress import SuppressionIndex

#: directories never descended into during discovery
_SKIP_DIRS = {"__pycache__", ".git", ".venv", "node_modules", "build", "dist"}


def discover_files(paths: Iterable[str | Path]) -> list[Path]:
    """Expand files/directories into a sorted, de-duplicated .py file list."""
    seen: set[Path] = set()
    out: list[Path] = []
    for raw in paths:
        p = Path(raw)
        if p.is_dir():
            candidates = sorted(
                f for f in p.rglob("*.py")
                if not any(part in _SKIP_DIRS for part in f.parts)
            )
        elif p.suffix == ".py":
            candidates = [p]
        else:
            candidates = []
        for f in candidates:
            key = f.resolve()
            if key not in seen:
                seen.add(key)
                out.append(f)
    return out


def _split_rules(
    rules: Sequence[Rule | ProgramRule] | None,
) -> tuple[list[Rule], list[ProgramRule]]:
    """Partition a mixed selection into (per-module, program) rules.

    ``None`` means the full registered battery of both kinds.
    """
    if rules is None:
        per_module = [r for r in all_rules() if isinstance(r, Rule)]
        return per_module, all_program_rules()
    per_module = [r for r in rules if isinstance(r, Rule)]
    program = [r for r in rules if isinstance(r, ProgramRule)]
    return per_module, program


def lint_source(
    module: ModuleSource, rules: Sequence[Rule | ProgramRule] | None = None
) -> list[Finding]:
    """Run per-module rules over one parsed module, honoring suppressions.

    Program rules in ``rules`` are ignored here — a single module is not
    a program; use :func:`lint_modules` to run them.
    """
    active, _ = _split_rules(rules)
    index = SuppressionIndex.parse(module.text)
    findings: list[Finding] = []
    for rule in active:
        for finding in rule.check(module):
            if not index.is_suppressed(finding.rule, finding.line):
                findings.append(finding)
    return sorted(findings)


def lint_modules(
    modules: Sequence[ModuleSource],
    rules: Sequence[Rule | ProgramRule] | None = None,
    *,
    scope: set[str] | None = None,
) -> list[Finding]:
    """Run the full battery — per-module then whole-program — over a
    parsed module set, honoring suppressions in every file.

    ``scope`` (resolved path strings) restricts the *per-module* rules
    to the named files — the ``lint --changed`` mode.  Whole-program
    rules always see the full module set: a lock graph or guard
    inference built from a file subset would be wrong, not just
    incomplete.
    """
    per_module, program = _split_rules(rules)
    findings: list[Finding] = []
    indexes: dict[str, SuppressionIndex] = {}
    for module in modules:
        indexes[module.path] = SuppressionIndex.parse(module.text)
        if scope is not None and str(Path(module.path).resolve()) not in scope:
            continue
        for rule in per_module:
            for finding in rule.check(module):
                if not indexes[module.path].is_suppressed(finding.rule, finding.line):
                    findings.append(finding)
    module_list = list(modules)
    for prule in program:
        for finding in prule.check_program(module_list):
            index = indexes.get(finding.path)
            if index is None or not index.is_suppressed(finding.rule, finding.line):
                findings.append(finding)
    return sorted(findings)


def lint_paths(
    paths: Iterable[str | Path],
    *,
    rules: Sequence[Rule | ProgramRule] | None = None,
    scope: set[str] | None = None,
) -> list[Finding]:
    """Lint every .py file reachable from ``paths``; returns all findings.

    Unparseable files surface as a synthetic ``parse-error`` finding
    rather than an exception — a syntax error must fail the lint gate,
    not crash it.  Parsed modules additionally feed the whole-program
    passes (lock-order graph, protocol exhaustiveness).  ``scope``
    restricts per-module rules as in :func:`lint_modules`.
    """
    findings: list[Finding] = []
    modules: list[ModuleSource] = []
    for path in discover_files(paths):
        try:
            modules.append(ModuleSource.parse(path))
        except (SyntaxError, UnicodeDecodeError, OSError) as e:
            findings.append(
                Finding(
                    path=str(path),
                    line=getattr(e, "lineno", None) or 1,
                    col=1,
                    rule="parse-error",
                    message=f"could not parse: {e}",
                )
            )
    findings.extend(lint_modules(modules, rules, scope=scope))
    return sorted(findings)
