"""Static analysis for the TDP reproduction: an AST-based invariant linter.

TDP's correctness rests on discipline the paper states in prose but the
type system cannot enforce: callbacks run from the client's own poll
loop and never from under a server lock (Section 3.3), process control
is role-gated (Sections 1, 2.3), and the simulated cluster runs on the
sim clock, not wall-clock.  The :mod:`repro.analysis` package encodes
those invariants as lint rules so they fail the test suite instead of
silently rotting.

The wire contract gets the same treatment: :mod:`.wireschema` infers the
full per-op frame schema from both sides of the protocol (client
encoders, server handlers, batch sub-op application, notify delivery),
the rules in :mod:`.rules.wire` check the two views for symmetry, and
``python -m repro protocol dump|check`` pins the result as the committed
``protocol.lock.json``.

Usage::

    python -m repro lint src/repro            # text report, exit 1 on findings
    python -m repro lint --format json src    # machine-readable report

or programmatically::

    from repro.analysis import lint_paths
    findings = lint_paths(["src/repro"])

Per-line suppression: append ``# tdp-lint: off(rule-name)`` to the
offending line.  A directive on a line of its own disables the rule(s)
for the whole file.  ``# tdp-lint: off`` with no rule list suppresses
every rule.
"""

from __future__ import annotations

from repro.analysis.core import (
    Finding,
    ModuleSource,
    ProgramRule,
    Rule,
    all_rules,
    get_rule,
)
from repro.analysis.engine import lint_modules, lint_paths, lint_source

__all__ = [
    "Finding",
    "ModuleSource",
    "ProgramRule",
    "Rule",
    "all_rules",
    "get_rule",
    "lint_modules",
    "lint_paths",
    "lint_source",
]
