"""Core types of the lint framework: findings, parsed modules, the registry.

A :class:`Rule` inspects one :class:`ModuleSource` (path + text + parsed
AST) and yields :class:`Finding`s.  Rules register themselves with the
:func:`register` decorator; the engine iterates :func:`all_rules`.
Suppression is handled centrally by the engine (rules never need to look
at comments).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Iterable, Iterator


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at a source location."""

    path: str
    line: int
    col: int
    rule: str
    message: str

    def format(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: [{self.rule}] {self.message}"

    def to_json(self) -> dict:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule,
            "message": self.message,
        }


@dataclass
class ModuleSource:
    """A parsed module handed to every rule.

    ``modname`` is the dotted module path (``repro.attrspace.store``)
    when the file lies under a recognizable package root, else the stem;
    rules use it to scope themselves (e.g. wall-clock rules apply only
    under ``repro.sim``).
    """

    path: str
    text: str
    tree: ast.Module
    modname: str
    _docstring_nodes: set[int] = field(default_factory=set)

    @classmethod
    def parse(
        cls,
        path: str | Path,
        text: str | None = None,
        *,
        modname: str | None = None,
    ) -> "ModuleSource":
        """Parse a file (or ``text``) into a ModuleSource.

        ``modname`` overrides the derived dotted name — seeded-violation
        fixtures use this to place a temp file "inside" a scoped package
        like ``repro.sim``.
        """
        p = Path(path)
        if text is None:
            text = p.read_text(encoding="utf-8")
        tree = ast.parse(text, filename=str(p))
        src = cls(
            path=str(p),
            text=text,
            tree=tree,
            modname=modname if modname is not None else derive_modname(p),
        )
        src._index_docstrings()
        return src

    def _index_docstrings(self) -> None:
        """Record the Constant nodes that are doc/bare strings.

        Attribute-literal rules must not fire on prose, so any string
        expression appearing as a statement is indexed here.
        """
        for node in ast.walk(self.tree):
            if isinstance(node, ast.Expr) and isinstance(node.value, ast.Constant) \
                    and isinstance(node.value.value, str):
                self._docstring_nodes.add(id(node.value))

    def is_docstring(self, node: ast.AST) -> bool:
        return id(node) in self._docstring_nodes

    def in_package(self, *prefixes: str) -> bool:
        """True when this module lies under any of the dotted prefixes."""
        return any(
            self.modname == p or self.modname.startswith(p + ".") for p in prefixes
        )


def derive_modname(path: Path) -> str:
    """Dotted module name from a file path, anchored at a package root.

    Walks up while ``__init__.py`` siblings exist, so both installed and
    in-tree layouts resolve (``src/repro/sim/kernel.py`` ->
    ``repro.sim.kernel``).  Files outside any package keep their stem,
    which is what seeded-violation fixtures in tests rely on.
    """
    parts = [path.stem] if path.stem != "__init__" else []
    parent = path.resolve().parent
    while (parent / "__init__.py").exists():
        parts.insert(0, parent.name)
        parent = parent.parent
    return ".".join(parts) if parts else path.stem


class Rule:
    """Base class: subclass, set ``name``/``description``, implement check."""

    #: unique kebab-case identifier, used in reports and suppressions
    name: str = ""
    #: one-line summary shown by ``lint --list-rules``
    description: str = ""

    def check(self, module: ModuleSource) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(self, module: ModuleSource, node: ast.AST, message: str) -> Finding:
        return Finding(
            path=module.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            rule=self.name,
            message=message,
        )


class ProgramRule:
    """A whole-program pass: sees every linted module at once.

    Per-module :class:`Rule`s cannot observe cross-module facts (a lock
    acquired in one daemon while messaging another, a protocol constant
    with no dispatch branch).  Program rules run after per-module rules
    over the full module set of one lint invocation; their findings are
    still attributed to concrete source locations, so line/file
    suppression works identically.
    """

    name: str = ""
    description: str = ""

    def check_program(self, modules: list[ModuleSource]) -> Iterator[Finding]:
        raise NotImplementedError

    def finding_at(self, path: str, line: int, message: str, col: int = 1) -> Finding:
        return Finding(path=path, line=line, col=col, rule=self.name, message=message)


_REGISTRY: dict[str, Rule] = {}
_PROGRAM_REGISTRY: dict[str, ProgramRule] = {}


def _register_into(rule, registry) -> None:
    if not rule.name:
        raise ValueError(f"rule {type(rule).__name__} has no name")
    if rule.name in _REGISTRY or rule.name in _PROGRAM_REGISTRY:
        raise ValueError(f"duplicate rule name {rule.name!r}")
    registry[rule.name] = rule


def register(cls: type[Rule]) -> type[Rule]:
    """Class decorator adding a rule (by instance) to the global registry."""
    _register_into(cls(), _REGISTRY)
    return cls


def register_program(cls: type[ProgramRule]) -> type[ProgramRule]:
    """Class decorator registering a whole-program rule."""
    _register_into(cls(), _PROGRAM_REGISTRY)
    return cls


def all_rules() -> list[Rule | ProgramRule]:
    """Every registered rule — per-module and program — sorted by name."""
    _ensure_rules_loaded()
    merged = {**_REGISTRY, **_PROGRAM_REGISTRY}
    return [merged[name] for name in sorted(merged)]


def all_program_rules() -> list[ProgramRule]:
    _ensure_rules_loaded()
    return [_PROGRAM_REGISTRY[name] for name in sorted(_PROGRAM_REGISTRY)]


def get_rule(name: str) -> Rule | ProgramRule:
    _ensure_rules_loaded()
    if name in _REGISTRY:
        return _REGISTRY[name]
    if name in _PROGRAM_REGISTRY:
        return _PROGRAM_REGISTRY[name]
    known = ", ".join(sorted({**_REGISTRY, **_PROGRAM_REGISTRY}))
    raise KeyError(f"unknown rule {name!r} (known: {known})")


def _ensure_rules_loaded() -> None:
    # Importing the package registers every built-in rule exactly once.
    import repro.analysis.rules  # noqa: F401


def iter_calls(body: Iterable[ast.stmt]) -> Iterator[ast.Call]:
    """Yield every Call in ``body`` without descending into nested defs.

    Lock-scope rules need this: code inside a nested ``def``/``lambda``
    does not execute while the enclosing ``with lock`` is held.
    """
    stack: list[ast.AST] = list(body)
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        if isinstance(node, ast.Call):
            yield node
        stack.extend(ast.iter_child_nodes(node))


def dotted_name(node: ast.AST) -> str | None:
    """Render Name/Attribute chains as ``a.b.c``; None for anything else."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


WalkFilter = Callable[[ast.AST], bool]
