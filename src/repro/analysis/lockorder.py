"""The declared lock hierarchy: which lock may be held while taking which.

This manifest is the single source of truth shared by the two halves of
the concurrency sanitizer:

* the **static** whole-program pass (:mod:`repro.analysis.lockgraph` and
  the ``lock-order-cycle`` / ``undeclared-lock-edge`` rules) checks every
  acquisition edge it can prove from the AST against it;
* the **runtime** lockset witness (:mod:`repro.util.sync`, enabled with
  ``TDP_SANITIZE=1``) checks every acquisition it actually observes.

Locks are named ``module.Class.attr`` (module path without the leading
``repro.``), e.g. ``attrspace.store.AttributeStore._lock``.  Each lock
gets a **rank**; acquiring a lock is legal only while every held lock has
a *strictly smaller* rank.  Strict ranking makes declared deadlock
impossible: any cycle would need a rank smaller than itself.  Locks of
the same rank therefore may never nest — give a lock its own rank the
moment it legitimately nests with a sibling.

Rank bands (see DESIGN.md "Lock hierarchy"):

* 10–19  coordinator locks (job queue, cluster topology) — outermost;
* 20–29  daemon state locks (startd, server connection table, handle);
* 30–39  shared-store locks (attribute store);
* 40–49  per-entity locks (simulated process, subscription registry,
         job record);
* 60–69  frame-serialization send locks (may be held across a channel
         send — see ``blocking_ok``);
* 80–89  clocks;
* 90–99  leaf counters/allocators (never call out under their lock).
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass
from typing import Iterator

#: re-entrant kinds — re-acquiring the *same instance* is legal
RLOCK = "rlock"
LOCK = "lock"


@dataclass(frozen=True)
class LockDecl:
    """One named lock class in the hierarchy."""

    key: str
    rank: int
    kind: str = LOCK
    #: True when the lock only serializes frames onto one channel and is
    #: audited to guard no other state — the single case where holding a
    #: lock across a blocking send is sanctioned (PR 1 send-lock
    #: precedent).  The runtime witness exempts these from the
    #: held-across-blocking-call check.
    blocking_ok: bool = False
    note: str = ""


class LockHierarchy:
    """An immutable rank order over named locks, queried by both halves."""

    def __init__(self, decls: list[LockDecl]):
        self._decls: dict[str, LockDecl] = {}
        for d in decls:
            if d.key in self._decls:
                raise ValueError(f"duplicate lock declaration {d.key!r}")
            self._decls[d.key] = d

    def declared(self, key: str) -> bool:
        return key in self._decls

    def get(self, key: str) -> LockDecl | None:
        return self._decls.get(key)

    def rank(self, key: str) -> int | None:
        d = self._decls.get(key)
        return d.rank if d is not None else None

    def kind(self, key: str) -> str:
        d = self._decls.get(key)
        return d.kind if d is not None else LOCK

    def blocking_ok(self, key: str) -> bool:
        d = self._decls.get(key)
        return d.blocking_ok if d is not None else False

    def may_acquire(self, held_key: str, acquire_key: str) -> bool:
        """May a thread holding ``held_key`` acquire ``acquire_key``?

        Same key: legal only for re-entrant kinds (the static side cannot
        distinguish instances, so a non-reentrant self-edge is treated as
        a potential self-deadlock).  Different keys: both must be
        declared, and rank must strictly increase.
        """
        if held_key == acquire_key:
            return self.kind(held_key) == RLOCK
        held = self._decls.get(held_key)
        acq = self._decls.get(acquire_key)
        if held is None or acq is None:
            return False
        return acq.rank > held.rank

    def keys(self) -> list[str]:
        return sorted(self._decls)

    def __len__(self) -> int:
        return len(self._decls)


#: The repository's declared hierarchy.  Every edge the static pass finds
#: in ``src/repro`` must be legal under these ranks (or carry an explicit
#: suppression with justification); the runtime witness enforces the same
#: order on live threads.
DEFAULT = LockHierarchy([
    # -- coordinator locks (outermost) --------------------------------------
    LockDecl("condor.schedd.Schedd._cond", 10,
             note="job queue + negotiation wakeups; never calls out held"),
    LockDecl("condor.master.Master._lock", 10,
             note="daemon supervision table"),
    LockDecl("condor.matchmaker.Matchmaker._lock", 12,
             note="machine-ad table during negotiation"),
    LockDecl("sim.cluster.SimCluster._lock", 14,
             note="cluster topology; held while delivering to a process"),
    LockDecl("condor.mpi_universe.MpiUniverseCoordinator._lock", 14,
             note="MPI rank rendezvous state"),
    LockDecl("mpisim.runtime.MpiRuntime._instances_lock", 14, note="runtime registry"),
    LockDecl("mpisim.runtime.MpiRuntime._lock", 16, note="per-runtime rank state"),
    LockDecl("attrspace.federation.GatewayRegistry._lock", 18,
             note="per-host LASS gateway table; LASS construction (which "
                  "spawns threads and dials upstream) runs outside the hold "
                  "— the lock covers table lookups and reservations only"),

    # -- daemon state locks --------------------------------------------------
    LockDecl("condor.startd.Startd._lock", 20, note="claim table"),
    LockDecl("condor.shadow.Shadow._lock", 20, note="shadow stop/teardown state"),
    LockDecl("attrspace.server.AttributeSpaceServer._conn_lock", 20,
             note="connection table"),
    LockDecl("attrspace.server.AttributeSpaceServer._lease_lock", 21,
             note="session-lease table; nests inside _conn_lock is FORBIDDEN "
                  "by rank — sweeper reads conn table and lease table in "
                  "separate holds"),
    LockDecl("tdp.handle.TdpHandle._lock", 20, note="handle lifecycle/service thread"),
    LockDecl("tdp.process.ProcessControlService._lock", 20,
             note="control-request bookkeeping"),
    LockDecl("paradyn.frontend.ParadynFrontend._lock", 20,
             note="daemon arrival + metric state"),
    LockDecl("paradyn.daemon.ParadynDaemon._req_lock", 20, note="request routing"),
    LockDecl("attrspace.federation.LassFederation._lock", 22,
             note="aggregation refcounts + local-sub interest table; never "
                  "held across upstream RPC or queue waits — the worker "
                  "thread owns sessions/shard-map state without any lock"),
    LockDecl("condor.tools.ToolRegistry._lock", 22, note="registered tool specs"),
    LockDecl("sim.loader.ProgramRegistry._lock", 22, note="registered programs"),
    LockDecl("tdp.aux.AuxServiceManager._lock", 22, note="aux service state"),
    LockDecl("tdp.files.FileStager._lock", 22, note="staging table"),
    LockDecl("tdp.faults.FaultMonitor._lock", 22, note="liveness bookkeeping"),
    LockDecl("paradyn.metrics.MetricCollector._lock", 24, note="metric samples"),
    LockDecl("paradyn.dyninst.DyninstEngine._lock", 24, note="probe bookkeeping"),

    # -- shared stores -------------------------------------------------------
    LockDecl("attrspace.store.AttributeStore._lock", 30, RLOCK,
             note="context/attribute tables; re-entrant for nested store calls"),
    LockDecl("attrspace.client.AttributeSpaceClient._lock", 32,
             note="pending-request tables"),
    LockDecl("osproc.backend.PosixBackend._lock", 32, note="pid table"),

    # -- per-entity locks ----------------------------------------------------
    LockDecl("attrspace.notify.SubscriptionRegistry._lock", 40,
             note="subscription table; acquired inside store.detach"),
    LockDecl("sim.process.SimProcess.lock", 42, RLOCK,
             note="process state machine; condition state_changed aliases it"),
    LockDecl("paradyn.frontend.DaemonSession.state_changed", 43,
             note="one daemon's sample series + app state"),
    LockDecl("sim.host.SimHost._lock", 44, note="per-host pid table"),
    LockDecl("tdp.aux._TreeNode.lock", 45,
             note="one aggregation-tree node's partials"),
    LockDecl("condor.job.JobRecord._cond", 44, note="job status transitions"),
    LockDecl("osproc.backend._Managed.lock", 44, note="one POSIX child's state"),
    LockDecl("sim.kernel.Scheduler._lock", 46, note="runnable-process list"),
    LockDecl("paradyn.dyninst.CounterHandle._lock", 48, note="one counter's value"),
    LockDecl("paradyn.dyninst.TimerHandle._lock", 48, note="one timer's state"),

    # -- send locks (frame serialization; blocking sends sanctioned) ---------
    # (attrspace server replies no longer take a send lock: each
    # connection's frames are enqueued onto a bounded outbound
    # WaitableQueue and serialized by a dedicated writer thread.)
    LockDecl("tdp.stdio.StdioCollector._lock", 60, blocking_ok=True,
             note="stdin backlog + channel handoff"),
    LockDecl("tdp.stdio.StdioRelay._send_lock", 60, blocking_ok=True,
             note="serializes stdout frames onto the collector channel"),
    LockDecl("transport.tcp._TcpChannel._recv_lock", 61, blocking_ok=True,
             note="frame reads on one socket (threadless recv: the lock "
                  "serializes misuse, the select wait inside it is the "
                  "channel's one blocking point; nests ahead of "
                  "_send_lock for the close latch)"),
    LockDecl("transport.tcp._TcpChannel._send_lock", 62, blocking_ok=True,
             note="frame writes on one socket"),
    LockDecl("transport.faultinject.FaultInjectChannel._lock", 63,
             note="per-channel fault RNG + send counter; decisions only, "
                  "the wrapped send runs outside the hold"),
    LockDecl("attrspace.server._SessionLease._lock", 64,
             note="one session's reply cache + inflight table; taken on "
                  "request threads (cache-before-enqueue, ahead of the "
                  "outbound queue offer) and under _lease_lock (sweeper "
                  "expiry re-check)"),
    LockDecl("transport.eventloop.ServerSocketLoop._lock", 65,
             note="event-loop cross-thread state: per-conn outbound "
                  "buffers, dirty/close queues, stop latch; holds cover "
                  "deque bookkeeping only — all socket IO runs outside "
                  "the lock on the loop thread"),
    LockDecl("transport.inmem._InMemChannel._lock", 62, note="queue pair state"),
    LockDecl("transport.inmem.InMemoryTransport._lock", 62, note="listener table"),
    LockDecl("transport.tcp.TcpTransport._lock", 62, note="listener table"),
    LockDecl("transport.proxy.ProxyServer._lock", 62, note="tunnel table"),

    # -- clocks --------------------------------------------------------------
    LockDecl("util.clock.VirtualClock._cond", 80,
             note="virtual now + pending-timer heap (timer service waits "
                  "on it for due deadlines)"),

    # -- leaves (never call out while held) ----------------------------------
    LockDecl("util.sync.Latch._lock", 90, note="one-shot gate payload"),
    LockDecl("obs.metrics.MetricsRegistry._lock", 90,
             note="metric name table; get-or-create only, metric values "
                  "are read after the table hold is released"),
    LockDecl("util.sync.WaitableQueue._cond", 91,
             note="queue contents; wait() drops it while blocked"),
    LockDecl("util.sync.AtomicCounter._lock", 92, note="counter word"),
    LockDecl("obs.metrics.Counter._lock", 92, note="metric counter word"),
    LockDecl("obs.metrics.Gauge._lock", 92, note="metric gauge word"),
    LockDecl("obs.metrics.Histogram._lock", 93,
             note="sample reservoir + running aggregates"),
    LockDecl("util.ids.IdAllocator._lock", 94, note="id counter"),
    LockDecl("obs.trace.SpanStore._lock", 95, note="finished-span ring"),
    LockDecl("util.log.TraceRecorder._lock", 96, note="trace event append"),
    LockDecl("obs.recorder.FlightRecorder._lock", 97,
             note="event ring append; ranked above every other lock so "
                  "obs.record is legal from any daemon context"),
])

_ACTIVE = DEFAULT


def active() -> LockHierarchy:
    """The hierarchy both sanitizer halves consult (swap in tests only)."""
    return _ACTIVE


@contextlib.contextmanager
def activated(hierarchy: LockHierarchy) -> Iterator[LockHierarchy]:
    """Temporarily install a different hierarchy (seeded-fixture tests)."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = hierarchy
    try:
        yield hierarchy
    finally:
        _ACTIVE = previous
