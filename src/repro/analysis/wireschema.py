"""Whole-program wire-schema inference for the attribute-space protocol.

The TDP wire contract — which fields each ``OP_*`` frame carries, which
the server actually reads, what every reply contains and what the client
decodes — lives in dict literals scattered across the client encoders,
the server dispatch handlers, the store's batch sub-op interpreter, and
the notify path.  Butler/Gropp/Lusk (PAPERS.md) call this the
"informally specified interface" failure mode; this module makes the
contract explicit by *inferring* it from the code.

The inference is an abstract interpretation of frame construction and
consumption on both sides of the wire:

* **client request writes** — dict literals containing an ``"op"`` key
  whose value resolves to a ``protocol.OP_*`` constant, plus
  ``frame["k"] = v`` augmentations on the variable holding the literal
  (conditional augmentations become *optional* fields).  Frame-builder
  methods (a function returning such a dict) are resolved so
  ``dict(self._attach_frame(), req=...)`` counts as an attach frame.
  Dicts that sink into a list (``ops.append(op)``, list comprehensions,
  or a call whose parameter is appended to a list) are **batch sub-op
  envelopes**, tracked separately from top-level frames.
* **server request reads** — ``request.get("k")`` / ``request["k"]``
  accesses inside each ``_op_<value>`` handler, with one level of helper
  propagation (``self._context_of(request)`` counts as a read of
  ``context``).  ``.get`` is an optional read (its default is captured);
  a bare subscript is a required read.
* **server reply writes** — ``protocol.ok_reply(req, k=v)`` keywords,
  ``reply["k"] = v`` augmentations, and — for the push path — dict
  literals keyed ``"op": OP_NOTIFY`` whose ``**x.to_wire()`` expansions
  are resolved against :class:`~repro.attrspace.notify.Notification`.
* **client reply reads** — subscript/``.get`` accesses on variables
  bound to the result of a call that was passed a frame (``reply =
  self._rpc(frame)``); a reply that *escapes* (``return self._rpc(...)``,
  e.g. ``ping``) counts as reading every field.
* **batch sub-ops** — the store's ``_apply_one`` is interpreted with
  branch attribution (``if op == "put":`` scopes reads and the returned
  reply literal to the ``put`` sub-op schema); client-side sub-reply
  reads are attributed to the sub-op kinds built in the same function.
* **error frames** — ``error_fields``/``raise_error`` in the protocol
  module give the error-reply schema; the raised-exception inventory and
  the ``_ERROR_TYPES``/``_TYPE_NAMES`` wire maps feed the
  ``error-code-unmapped`` rule.

Types are inferred conservatively (literal constants, ``str(...)``-style
casts, parameter annotations, ``isinstance`` guards); a field whose type
cannot be pinned is ``any`` and never produces a mismatch finding.

The inferred schema serializes to the committed ``protocol.lock.json``
artifact (see :func:`to_lock` / ``python -m repro protocol dump``), and
the symmetry rules in :mod:`repro.analysis.rules.wire` consume it to
flag client<->server drift.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Any, Iterable, Iterator

from repro.analysis.core import ModuleSource

PROTOCOL_MODULE = "repro.attrspace.protocol"
CLIENT_MODULE = "repro.attrspace.client"
SERVER_MODULE = "repro.attrspace.server"
STORE_MODULE = "repro.attrspace.store"
NOTIFY_MODULE = "repro.attrspace.notify"

#: The one module allowed to call ``json.dumps``/``json.loads`` on wire
#: data — the seam behind which the item-2 binary codec will swap in.
CODEC_MODULE = PROTOCOL_MODULE

#: Fields the client plumbing stamps on every request after the encoder
#: built it (``_register_sync``/``_send_async`` add ``req``; obs
#: tracing injects ``obs``), and the reply/notify plumbing every
#: consumer reads before routing.  They are part of the envelope, not of
#: any one op's schema.
REQUEST_PLUMBING = {"op", "req", "obs"}
REPLY_PLUMBING = {"reply_to", "ok", "obs"}
NOTIFY_PLUMBING = {"op", "obs"}
SUBOP_PLUMBING = {"op"}
SUBREPLY_PLUMBING = {"ok"}

#: Error-reply fields shared by whole-request error replies and per-
#: sub-op error entries (see ``protocol.error_fields``).
ERROR_FIELDS = {"ok", "error_type", "error", "attribute", "context"}

#: Deliberate asymmetries, each with its justification.  Keyed
#: ``"<schema>.<direction>.<field>"`` where ``<schema>`` is an op value,
#: ``batch:<subop>``, ``notify``, or ``error``.  Waivers are emitted
#: into the lock file so they stay visible and diffable.
WAIVERS: dict[str, str] = {
    "batch:get.request.block": (
        "server-side guard: a blocking get inside a batch would stall "
        "the positional reply, so the field is read only to reject it"
    ),
}

_MISSING = object()


# ---------------------------------------------------------------------------
# Schema model
# ---------------------------------------------------------------------------


@dataclass
class FieldUse:
    """One side's view of one frame field."""

    name: str
    #: writes: present unconditionally at every construction site;
    #: reads: at least one bare-subscript (KeyError-on-absence) access.
    required: bool = True
    types: set[str] = field(default_factory=set)
    #: reader-side ``.get`` default when it is a constant
    default: Any = _MISSING
    #: (path, line) evidence locations
    sites: list[tuple[str, int]] = field(default_factory=list)

    def merge_write(self, other: "FieldUse") -> None:
        self.types |= other.types
        self.sites.extend(other.sites)

    def lock_types(self) -> list[str]:
        return sorted(self.types) if self.types else ["any"]


@dataclass
class SideView:
    """All fields one party writes (or reads) for one frame kind."""

    fields: dict[str, FieldUse] = field(default_factory=dict)
    #: number of independent construction sites (writer side): a field
    #: is required only if present unconditionally at every one
    sites: int = 0
    #: reply escaped whole (``return self._rpc(...)``): every field of
    #: the counterpart's writes must be considered read
    escapes: bool = False


@dataclass
class OpSchema:
    """Producer and consumer views of one frame kind's two directions."""

    op: str
    request_writes: SideView = field(default_factory=SideView)
    request_reads: SideView = field(default_factory=SideView)
    reply_writes: SideView = field(default_factory=SideView)
    reply_reads: SideView = field(default_factory=SideView)


@dataclass
class ErrorSchema:
    """The protocol module's error wire maps plus the raised inventory."""

    #: wire name -> exception class name (``_ERROR_TYPES``)
    decode_map: dict[str, str] = field(default_factory=dict)
    #: exception class name -> wire name, in declaration order
    #: (``_TYPE_NAMES`` — order matters: ``error_fields`` walks it with
    #: ``isinstance``, so a base class listed before its subclass wins)
    encode_order: list[tuple[str, str]] = field(default_factory=list)
    #: exception class names raised in server-side dispatch modules,
    #: with one evidence site each
    raised: dict[str, tuple[str, int]] = field(default_factory=dict)
    #: error_type strings the client synthesizes locally (outage
    #: replies); they must decode like any wire error
    synthesized: dict[str, tuple[str, int]] = field(default_factory=dict)
    #: where the maps live, for findings
    decode_map_site: tuple[str, int] | None = None
    encode_map_site: tuple[str, int] | None = None


@dataclass
class WireSchema:
    """The whole inferred contract."""

    ops: dict[str, OpSchema] = field(default_factory=dict)
    notify: OpSchema = field(default_factory=lambda: OpSchema("notify"))
    sub_ops: dict[str, OpSchema] = field(default_factory=dict)
    errors: ErrorSchema = field(default_factory=ErrorSchema)
    #: OP_* constant name -> value, from the protocol module
    op_constants: dict[str, str] = field(default_factory=dict)
    #: whether the store/notify modules were part of the inferred set
    #: (sub-op and notify symmetry checks are skipped otherwise)
    has_store: bool = False
    has_notify: bool = False

    def schema_for(self, key: str) -> OpSchema | None:
        if key == "notify":
            return self.notify
        if key.startswith("batch:"):
            return self.sub_ops.get(key.split(":", 1)[1])
        return self.ops.get(key)

    def all_keyed(self) -> Iterator[tuple[str, OpSchema]]:
        for op in sorted(self.ops):
            yield op, self.ops[op]
        for kind in sorted(self.sub_ops):
            yield f"batch:{kind}", self.sub_ops[kind]
        yield "notify", self.notify


def waived(schema_key: str, direction: str, name: str) -> bool:
    return f"{schema_key}.{direction}.{name}" in WAIVERS


# ---------------------------------------------------------------------------
# Small AST helpers
# ---------------------------------------------------------------------------


def _dotted(node: ast.AST) -> str | None:
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _const_type(value: Any) -> str:
    if value is None:
        return "null"
    if isinstance(value, bool):  # before int: bool is an int subclass
        return "bool"
    if isinstance(value, int):
        return "int"
    if isinstance(value, float):
        return "float"
    if isinstance(value, str):
        return "str"
    if isinstance(value, (list, tuple)):
        return "list"
    if isinstance(value, dict):
        return "dict"
    return "any"


#: calls whose result type is their own name
_CAST_CALLS = {"str": "str", "int": "int", "float": "float", "bool": "bool",
               "list": "list", "dict": "dict", "sorted": "list"}


def _annotation_types(node: ast.AST | None) -> set[str]:
    """Type names from an annotation expression (``str``, ``float | None``)."""
    if node is None:
        return set()
    if isinstance(node, ast.Name) and node.id in _CAST_CALLS:
        return {_CAST_CALLS[node.id]}
    if isinstance(node, ast.Constant) and node.value is None:
        return {"null"}
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.BitOr):
        return _annotation_types(node.left) | _annotation_types(node.right)
    if isinstance(node, ast.Subscript):
        # dict[str, Any] / list[int] — the container is the wire type
        return _annotation_types(node.value)
    return set()


def _param_annotations(fn: ast.FunctionDef | ast.AsyncFunctionDef) -> dict[str, set[str]]:
    out: dict[str, set[str]] = {}
    for arg in list(fn.args.posonlyargs) + list(fn.args.args) + list(fn.args.kwonlyargs):
        if arg.annotation is not None:
            types = _annotation_types(arg.annotation)
            if types:
                out[arg.arg] = types
    return out


def _expr_types(node: ast.AST, annotations: dict[str, set[str]]) -> set[str]:
    """Conservative type set for an expression; empty means unknown."""
    if isinstance(node, ast.Constant):
        return {_const_type(node.value)}
    if isinstance(node, ast.JoinedStr):
        return {"str"}
    if isinstance(node, (ast.List, ast.ListComp, ast.Tuple)):
        return {"list"}
    if isinstance(node, (ast.Dict, ast.DictComp)):
        return {"dict"}
    if isinstance(node, (ast.Compare, ast.BoolOp)):
        return {"bool"}
    if isinstance(node, ast.Name):
        return set(annotations.get(node.id, set()))
    if isinstance(node, ast.Call):
        dn = _dotted(node.func)
        if dn is not None and dn.split(".")[-1] in _CAST_CALLS:
            return {_CAST_CALLS[dn.split(".")[-1]]}
    if isinstance(node, ast.IfExp):
        return _expr_types(node.body, annotations) | _expr_types(node.orelse, annotations)
    return set()


def _functions(tree: ast.AST) -> Iterator[ast.FunctionDef | ast.AsyncFunctionDef]:
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


def _isinstance_types(fn: ast.AST, var: str) -> set[str]:
    """Types asserted by ``isinstance(var, T)`` checks anywhere in fn."""
    types: set[str] = set()
    for node in ast.walk(fn):
        if not (isinstance(node, ast.Call) and isinstance(node.func, ast.Name)
                and node.func.id == "isinstance" and len(node.args) == 2):
            continue
        target, spec = node.args
        if not (isinstance(target, ast.Name) and target.id == var):
            continue
        specs = spec.elts if isinstance(spec, ast.Tuple) else [spec]
        for s in specs:
            dn = _dotted(s)
            if dn is not None and dn.split(".")[-1] in _CAST_CALLS:
                types.add(_CAST_CALLS[dn.split(".")[-1]])
    return types


# ---------------------------------------------------------------------------
# Protocol module: constants, error maps, error-reply schema
# ---------------------------------------------------------------------------


def op_constants(proto: ModuleSource) -> dict[str, str]:
    """Module-level ``OP_NAME = "value"`` assignments, name -> value."""
    out: dict[str, str] = {}
    for stmt in proto.tree.body:
        if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1 \
                and isinstance(stmt.targets[0], ast.Name) \
                and stmt.targets[0].id.startswith("OP_") \
                and isinstance(stmt.value, ast.Constant) \
                and isinstance(stmt.value.value, str):
            out[stmt.targets[0].id] = stmt.value.value
    return out


def _string_dict_literal(node: ast.AST) -> dict[str, str] | None:
    """``{"a": X, ...}`` or ``{X: "a", ...}`` where the other side is a
    dotted exception-class reference; returns str-key -> class-name."""
    if not isinstance(node, ast.Dict):
        return None
    out: dict[str, str] = {}
    for k, v in zip(node.keys, node.values):
        if k is None:
            return None
        if isinstance(k, ast.Constant) and isinstance(k.value, str):
            dn = _dotted(v)
            if dn is None:
                return None
            out[k.value] = dn.split(".")[-1]
        else:
            dn = _dotted(k)
            if dn is None or not (isinstance(v, ast.Constant) and isinstance(v.value, str)):
                return None
            out[dn.split(".")[-1]] = v.value
    return out


def _error_maps(proto: ModuleSource, schema: ErrorSchema) -> None:
    for stmt in proto.tree.body:
        targets: list[ast.expr] = []
        value: ast.expr | None = None
        if isinstance(stmt, ast.Assign):
            targets, value = stmt.targets, stmt.value
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            targets, value = [stmt.target], stmt.value
        if len(targets) != 1 or not isinstance(targets[0], ast.Name):
            continue
        name = targets[0].id
        if name == "_ERROR_TYPES" and isinstance(value, ast.Dict):
            parsed = _string_dict_literal(value)
            if parsed is not None:
                schema.decode_map = parsed
                schema.decode_map_site = (proto.path, stmt.lineno)
        elif name == "_TYPE_NAMES" and isinstance(value, ast.Dict):
            schema.encode_map_site = (proto.path, stmt.lineno)
            for k, v in zip(value.keys, value.values):
                dn = _dotted(k) if k is not None else None
                if dn is not None and isinstance(v, ast.Constant) \
                        and isinstance(v.value, str):
                    schema.encode_order.append((dn.split(".")[-1], v.value))


def _error_reply_fields(proto: ModuleSource) -> SideView:
    """Fields written by ``error_fields`` (dict literal + augmentations)."""
    view = SideView(sites=1)
    for fn in _functions(proto.tree):
        if fn.name != "error_fields":
            continue
        ann = _param_annotations(fn)
        for node in ast.walk(fn):
            if isinstance(node, (ast.Assign, ast.AnnAssign)):
                value = node.value
                targets = node.targets if isinstance(node, ast.Assign) else [node.target]
                if value is None or len(targets) != 1:
                    continue
                target = targets[0]
                if isinstance(value, ast.Dict):  # the base literal
                    for k, v in zip(value.keys, value.values):
                        if isinstance(k, ast.Constant) and isinstance(k.value, str):
                            view.fields[k.value] = FieldUse(
                                k.value, required=True,
                                types=_expr_types(v, ann),
                                sites=[(proto.path, value.lineno)],
                            )
                elif isinstance(target, ast.Subscript) \
                        and isinstance(target.slice, ast.Constant) \
                        and isinstance(target.slice.value, str):
                    name = target.slice.value
                    use = view.fields.setdefault(
                        name, FieldUse(name, required=False, types=set()),
                    )
                    # re-binding an existing required field keeps it
                    # required; a fresh conditional add is optional
                    use.types |= _expr_types(value, ann)
                    use.sites.append((proto.path, node.lineno))
    return view


def _raise_error_reads(proto: ModuleSource) -> SideView:
    """Fields ``raise_error`` reads off an error reply."""
    view = SideView()
    for fn in _functions(proto.tree):
        if fn.name != "raise_error":
            continue
        param = fn.args.args[0].arg if fn.args.args else None
        if param:
            _collect_dict_reads(fn, param, view, proto.path, {})
    return view


# ---------------------------------------------------------------------------
# Generic read collection (server handlers, decode paths)
# ---------------------------------------------------------------------------


def _collect_dict_reads(
    scope: ast.AST,
    var: str,
    view: SideView,
    path: str,
    cast_env: dict[str, set[str]],
) -> None:
    """Record ``var["k"]`` / ``var.get("k", d)`` reads into ``view``.

    ``cast_env`` accumulates types for local names assigned from reads so
    a later ``isinstance(value, str)`` guard refines the field type.
    """
    assigned_from: dict[str, str] = {}  # local var -> field it was read into
    for node in ast.walk(scope):
        read_name: str | None = None
        required = False
        default: Any = _MISSING
        types: set[str] = set()
        if isinstance(node, ast.Subscript) and isinstance(node.value, ast.Name) \
                and node.value.id == var and isinstance(node.ctx, ast.Load) \
                and isinstance(node.slice, ast.Constant) \
                and isinstance(node.slice.value, str):
            read_name = node.slice.value
            required = True
        elif isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute) \
                and node.func.attr == "get" \
                and isinstance(node.func.value, ast.Name) \
                and node.func.value.id == var and node.args \
                and isinstance(node.args[0], ast.Constant) \
                and isinstance(node.args[0].value, str):
            read_name = node.args[0].value
            if len(node.args) > 1 and isinstance(node.args[1], ast.Constant):
                default = node.args[1].value
                if default is not None:
                    types.add(_const_type(default))
        if read_name is None:
            continue
        use = view.fields.get(read_name)
        if use is None:
            use = view.fields[read_name] = FieldUse(
                read_name, required=required, types=set(), default=default,
            )
        else:
            use.required = use.required or required
            if use.default is _MISSING:
                use.default = default
        use.types |= types
        use.sites.append((path, node.lineno))
    # second pass: casts and isinstance guards on read results
    for node in ast.walk(scope):
        if isinstance(node, ast.Call):
            dn = _dotted(node.func)
            if dn is not None and dn.split(".")[-1] in _CAST_CALLS and node.args:
                inner = node.args[0]
                fname = _read_field_name(inner, var)
                if fname and fname in view.fields:
                    view.fields[fname].types.add(_CAST_CALLS[dn.split(".")[-1]])
        elif isinstance(node, ast.Assign) and len(node.targets) == 1 \
                and isinstance(node.targets[0], ast.Name):
            fname = _read_field_name(node.value, var)
            if fname:
                assigned_from[node.targets[0].id] = fname
    for local, fname in assigned_from.items():
        if fname in view.fields:
            view.fields[fname].types |= _isinstance_types(scope, local)
            cast_env.setdefault(local, set()).update(view.fields[fname].types)


def _read_field_name(node: ast.AST, var: str) -> str | None:
    """The field name if ``node`` is ``var["k"]`` or ``var.get("k", ...)``."""
    if isinstance(node, ast.Subscript) and isinstance(node.value, ast.Name) \
            and node.value.id == var and isinstance(node.slice, ast.Constant) \
            and isinstance(node.slice.value, str):
        return node.slice.value
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute) \
            and node.func.attr == "get" and isinstance(node.func.value, ast.Name) \
            and node.func.value.id == var and node.args \
            and isinstance(node.args[0], ast.Constant) \
            and isinstance(node.args[0].value, str):
        return node.args[0].value
    return None


# ---------------------------------------------------------------------------
# Client side: frame construction + reply reads
# ---------------------------------------------------------------------------


@dataclass
class _FrameSite:
    """One dict-literal (or builder-produced) frame in a client function."""

    op: str
    fields: dict[str, FieldUse]
    line: int
    conditional_fields: set[str]
    sub_op: bool = False
    #: builder *call* sites reuse a builder's frame; they bind variables
    #: but do not count as independent construction sites
    counts: bool = True


def _op_of_dict(node: ast.Dict, consts: dict[str, str]) -> str | None:
    """The op value of a dict literal carrying an ``"op"`` key, if any."""
    for k, v in zip(node.keys, node.values):
        if isinstance(k, ast.Constant) and k.value == "op":
            if isinstance(v, ast.Constant) and isinstance(v.value, str):
                return v.value
            dn = _dotted(v)
            if dn is not None:
                return consts.get(dn.split(".")[-1])
    return None


def _list_sunk_params(module: ModuleSource) -> dict[str, set[int]]:
    """function name -> positional indexes of params appended to a list.

    Used to classify frame dicts passed through a helper like
    ``_BatchBuilder._queue`` (which appends its ``op`` argument to the
    pending sub-op list) as batch sub-ops rather than top-level frames.
    """
    out: dict[str, set[int]] = {}
    for fn in _functions(module.tree):
        params = [a.arg for a in fn.args.args]
        appended: set[str] = set()
        for node in ast.walk(fn):
            if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute) \
                    and node.func.attr == "append" and len(node.args) == 1 \
                    and isinstance(node.args[0], ast.Name):
                appended.add(node.args[0].id)
        indexes = {params.index(p) for p in appended if p in params}
        if indexes:
            out[fn.name] = indexes
    return out


def _in_conditional(fn: ast.AST, target: ast.AST) -> bool:
    """Is ``target`` nested under an If/Try/While/For within ``fn``?"""
    conditional_ids: set[int] = set()

    def mark(node: ast.AST, flag: bool) -> None:
        conditional_ids.add(id(node)) if flag else None
        for child in ast.iter_child_nodes(node):
            mark(child, flag or isinstance(
                node, (ast.If, ast.Try, ast.While, ast.For, ast.ExceptHandler)
            ))

    mark(fn, False)
    return id(target) in conditional_ids


def _notify_wire_fields(notify_mod: ModuleSource | None) -> tuple[SideView, SideView]:
    """(writes via ``to_wire``, reads via ``from_wire``) of Notification."""
    writes, reads = SideView(sites=1), SideView()
    if notify_mod is None:
        return writes, reads
    # dataclass annotations give the types
    ann: dict[str, set[str]] = {}
    for node in ast.walk(notify_mod.tree):
        if isinstance(node, ast.ClassDef):
            for stmt in node.body:
                if isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
                    types = _annotation_types(stmt.annotation)
                    if types:
                        ann[stmt.target.id] = types
    for fn in _functions(notify_mod.tree):
        if fn.name == "to_wire":
            for node in ast.walk(fn):
                if isinstance(node, ast.Dict):
                    for k, v in zip(node.keys, node.values):
                        if isinstance(k, ast.Constant) and isinstance(k.value, str):
                            types: set[str] = set()
                            if isinstance(v, ast.Attribute) and v.attr in ann:
                                types = set(ann[v.attr])
                            writes.fields[k.value] = FieldUse(
                                k.value, required=True, types=types,
                                sites=[(notify_mod.path, node.lineno)],
                            )
        elif fn.name == "from_wire":
            param = fn.args.args[0].arg if fn.args.args else None
            if param:
                _collect_dict_reads(fn, param, reads, notify_mod.path, {})
    return writes, reads


def _client_frames_and_reads(
    client: ModuleSource,
    consts: dict[str, str],
    schema: WireSchema,
    notify_reads: SideView,
) -> None:
    sunk = _list_sunk_params(client)
    param_readers = _param_readers(client)
    builders: dict[str, str] = {}  # method name -> op it builds

    # Pass 1: find builder methods (return a dict-literal frame).
    for fn in _functions(client.tree):
        returned: set[str] = set()
        for node in ast.walk(fn):
            if isinstance(node, ast.Return) and isinstance(node.value, ast.Name):
                returned.add(node.value.id)
        for node in ast.walk(fn):
            if isinstance(node, (ast.Assign, ast.AnnAssign)):
                value = node.value
                targets = node.targets if isinstance(node, ast.Assign) else [node.target]
                if value is None or len(targets) != 1 \
                        or not isinstance(targets[0], ast.Name):
                    continue
                if isinstance(value, ast.Dict) and targets[0].id in returned:
                    op = _op_of_dict(value, consts)
                    if op is not None:
                        builders[fn.name] = op

    # Pass 2: per-function frame sites, sub-op classification, reply reads.
    for fn in _functions(client.tree):
        ann = _param_annotations(fn)
        sites: list[_FrameSite] = []
        var_sites: dict[str, _FrameSite] = {}
        dict_site_ids: dict[int, _FrameSite] = {}

        def record_dict(node: ast.Dict, *, sub_op: bool) -> _FrameSite | None:
            op = _op_of_dict(node, consts)
            if op is None:
                return None
            fields: dict[str, FieldUse] = {}
            for k, v in zip(node.keys, node.values):
                if k is None:  # **expansion (notify path handles its own)
                    continue
                if isinstance(k, ast.Constant) and isinstance(k.value, str) \
                        and k.value != "op":
                    fields[k.value] = FieldUse(
                        k.value, required=True, types=_expr_types(v, ann),
                        sites=[(client.path, node.lineno)],
                    )
            site = _FrameSite(op, fields, node.lineno, set(), sub_op=sub_op)
            sites.append(site)
            dict_site_ids[id(node)] = site
            return site

        # (a) dict literals assigned to variables, with augmentations
        for node in ast.walk(fn):
            if isinstance(node, (ast.Assign, ast.AnnAssign)):
                value = node.value
                targets = node.targets if isinstance(node, ast.Assign) else [node.target]
                if value is None or len(targets) != 1 \
                        or not isinstance(targets[0], ast.Name):
                    continue
                target_name = targets[0].id
                if isinstance(value, ast.Dict):
                    site = record_dict(value, sub_op=False)
                    if site is not None:
                        var_sites[target_name] = site
                elif isinstance(value, ast.Call):
                    op = _builder_call_op(value, builders)
                    if op is not None:
                        site = _FrameSite(op, {}, value.lineno, set(),
                                          counts=False)
                        sites.append(site)
                        var_sites[target_name] = site
        # inline frame literals (dict args to _rpc/_send_async, list
        # comprehension elements) that no variable binds
        for node in ast.walk(fn):
            if isinstance(node, ast.Dict) and id(node) not in dict_site_ids:
                record_dict(node, sub_op=False)

        # augmentations: var["k"] = expr
        for node in ast.walk(fn):
            if isinstance(node, ast.Assign) and len(node.targets) == 1 \
                    and isinstance(node.targets[0], ast.Subscript):
                target = node.targets[0]
                if isinstance(target.value, ast.Name) \
                        and target.value.id in var_sites \
                        and isinstance(target.slice, ast.Constant) \
                        and isinstance(target.slice.value, str):
                    site = var_sites[target.value.id]
                    name = target.slice.value
                    conditional = _in_conditional(fn, node)
                    use = site.fields.get(name)
                    if use is None:
                        use = site.fields[name] = FieldUse(
                            name, required=not conditional,
                            types=set(), sites=[],
                        )
                    use.types |= _expr_types(node.value, ann)
                    use.sites.append((client.path, node.lineno))
                    if conditional:
                        site.conditional_fields.add(name)
                        use.required = False

        # (b) classify sub-op sites by their sinks
        parents: dict[int, ast.AST] = {}
        for node in ast.walk(fn):
            for child in ast.iter_child_nodes(node):
                parents[id(child)] = node
        for node in ast.walk(fn):
            if isinstance(node, ast.Dict) and id(node) in dict_site_ids:
                parent = parents.get(id(node))
                if isinstance(parent, (ast.List, ast.ListComp)) or (
                    isinstance(parent, ast.comprehension)
                ):
                    dict_site_ids[id(node)].sub_op = True
            # generator/listcomp element: dict is the .elt of the comp
            if isinstance(node, ast.ListComp) and isinstance(node.elt, ast.Dict) \
                    and id(node.elt) in dict_site_ids:
                dict_site_ids[id(node.elt)].sub_op = True
            if isinstance(node, ast.Call):
                callee = node.func.attr if isinstance(node.func, ast.Attribute) \
                    else (node.func.id if isinstance(node.func, ast.Name) else None)
                for i, arg in enumerate(node.args):
                    target_site = None
                    if isinstance(arg, ast.Name) and arg.id in var_sites:
                        target_site = var_sites[arg.id]
                    elif isinstance(arg, ast.Dict) and id(arg) in dict_site_ids:
                        target_site = dict_site_ids[id(arg)]
                    if target_site is None:
                        continue
                    if callee == "append" or (
                        callee in sunk and i + 1 in sunk[callee]
                    ):
                        target_site.sub_op = True

        # (c) merge sites into the schema
        for site in sites:
            if not site.counts and not site.fields:
                continue
            table = schema.sub_ops if site.sub_op else schema.ops
            entry = table.get(site.op)
            if entry is None:
                entry = table[site.op] = OpSchema(site.op)
            if site.counts:
                _merge_write_site(entry.request_writes, site)
            else:
                # extra fields stamped onto a builder's frame at a call
                # site are optional riders on the builder's schema
                for use in site.fields.values():
                    use.required = False
                    _merge_read(entry.request_writes, use)

        # (d) reply-variable binding and reads
        reply_vars: dict[str, str] = {}  # var -> op
        for node in ast.walk(fn):
            if isinstance(node, ast.Assign) and len(node.targets) == 1 \
                    and isinstance(node.targets[0], ast.Name) \
                    and isinstance(node.value, ast.Call):
                if node.targets[0].id in var_sites:
                    # a frame var (``attach = dict(self._attach_frame(),
                    # req=...)``), not the reply to one
                    continue
                op = _frame_arg_op(node.value, var_sites, dict_site_ids, builders, consts)
                if op is not None:
                    reply_vars[node.targets[0].id] = op
            elif isinstance(node, ast.Return) and isinstance(node.value, ast.Call):
                op = _frame_arg_op(node.value, var_sites, dict_site_ids, builders, consts)
                if op is not None and op in schema.ops:
                    schema.ops[op].reply_reads.escapes = True
        for var, op in reply_vars.items():
            entry = schema.ops.get(op)
            if entry is None:
                entry = schema.ops[op] = OpSchema(op)
            _collect_dict_reads(fn, var, entry.reply_reads, client.path, {})
            _wrap_cast_types(fn, var, entry.reply_reads)

        # one-level helper propagation: a reply (or the result of a call
        # that was passed a frame) handed to a local helper counts the
        # helper's reads on that parameter, e.g.
        # ``self._adopt_attach_reply(self._rpc(self._attach_frame()))``
        for node in ast.walk(fn):
            if not isinstance(node, ast.Call):
                continue
            dn = _dotted(node.func)
            callee = dn.split(".")[-1] if dn else None
            if callee not in param_readers:
                continue
            for i, arg in enumerate(node.args):
                op = None
                if isinstance(arg, ast.Name) and arg.id in reply_vars:
                    op = reply_vars[arg.id]
                elif isinstance(arg, ast.Call):
                    op = _frame_arg_op(
                        arg, var_sites, dict_site_ids, builders, consts
                    )
                if op is None:
                    continue
                entry = schema.ops.setdefault(op, OpSchema(op))
                for offset in (0, 1):  # implicit self on bound calls
                    helper_view = param_readers[callee].get(i + offset)
                    if helper_view is not None:
                        for use in helper_view.fields.values():
                            _merge_read(entry.reply_reads, use)

        # (e) sub-reply reads: dict reads on vars that are neither frame
        # vars nor top-level reply vars, in a function that builds
        # sub-ops, belong to those sub-op kinds' replies
        kinds = {s.op for s in sites if s.sub_op}
        if kinds:
            bound = set(reply_vars) | set(var_sites)
            sub_view = SideView()
            for node in ast.walk(fn):
                var = _any_dict_read_var(node)
                if var is not None and var not in bound:
                    _collect_dict_reads_single(node, sub_view, client.path)
            for kind in kinds:
                entry = schema.sub_ops.setdefault(kind, OpSchema(kind))
                for name, use in sub_view.fields.items():
                    _merge_read(entry.reply_reads, use)
            for var in {v for v in (_lambda_read_vars(fn)) if v not in bound}:
                pass  # lambda params handled by the generic walk above

        # (f) notify reads: branch on message.get("op") == OP_NOTIFY
        for node in ast.walk(fn):
            if not isinstance(node, ast.If):
                continue
            test = node.test
            if not (isinstance(test, ast.Compare) and len(test.ops) == 1
                    and isinstance(test.ops[0], ast.Eq)):
                continue
            var = _any_dict_read_var(test.left)
            rhs = test.comparators[0]
            rhs_dn = _dotted(rhs)
            rhs_op = consts.get(rhs_dn.split(".")[-1]) if rhs_dn else (
                rhs.value if isinstance(rhs, ast.Constant) else None
            )
            if var is None or rhs_op != consts.get("OP_NOTIFY", "notify"):
                continue
            branch = ast.Module(body=node.body, type_ignores=[])
            _collect_dict_reads(branch, var, schema.notify.reply_reads, client.path, {})
            for call in ast.walk(branch):
                if isinstance(call, ast.Call):
                    dn = _dotted(call.func)
                    if dn is not None and dn.split(".")[-1] == "from_wire":
                        for name, use in notify_reads.fields.items():
                            _merge_read(schema.notify.reply_reads, use)


def _lambda_read_vars(fn: ast.AST) -> set[str]:
    out: set[str] = set()
    for node in ast.walk(fn):
        if isinstance(node, ast.Lambda):
            out.update(a.arg for a in node.args.args)
    return out


def _any_dict_read_var(node: ast.AST) -> str | None:
    """The variable a ``var["k"]``/``var.get("k")`` expression reads."""
    if isinstance(node, ast.Subscript) and isinstance(node.value, ast.Name) \
            and isinstance(node.slice, ast.Constant) \
            and isinstance(node.slice.value, str) \
            and isinstance(node.ctx, ast.Load):
        return node.value.id
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute) \
            and node.func.attr == "get" \
            and isinstance(node.func.value, ast.Name) and node.args \
            and isinstance(node.args[0], ast.Constant) \
            and isinstance(node.args[0].value, str):
        return node.func.value.id
    return None


def _collect_dict_reads_single(node: ast.AST, view: SideView, path: str) -> None:
    var = _any_dict_read_var(node)
    if var is None:
        return
    if isinstance(node, ast.Subscript):
        name, required, default = node.slice.value, True, _MISSING  # type: ignore[union-attr]
    else:
        name = node.args[0].value  # type: ignore[union-attr]
        required = False
        default = _MISSING
        if len(node.args) > 1 and isinstance(node.args[1], ast.Constant):  # type: ignore[union-attr]
            default = node.args[1].value  # type: ignore[union-attr]
    use = view.fields.get(name)
    if use is None:
        use = view.fields[name] = FieldUse(name, required=required, types=set(),
                                           default=default)
    else:
        use.required = use.required or required
    use.sites.append((path, node.lineno))


def _wrap_cast_types(fn: ast.AST, var: str, view: SideView) -> None:
    """``int(reply["version"])``-style casts refine reply field types."""
    for node in ast.walk(fn):
        if isinstance(node, ast.Call):
            dn = _dotted(node.func)
            if dn is not None and dn.split(".")[-1] in _CAST_CALLS and node.args:
                fname = _read_field_name(node.args[0], var)
                if fname and fname in view.fields:
                    view.fields[fname].types.add(_CAST_CALLS[dn.split(".")[-1]])


def _builder_call_op(call: ast.Call, builders: dict[str, str]) -> str | None:
    """Op built by ``self._x_frame()`` or ``dict(self._x_frame(), ...)``."""
    dn = _dotted(call.func)
    if dn is not None and dn.split(".")[-1] in builders:
        return builders[dn.split(".")[-1]]
    if dn == "dict" and call.args:
        inner = call.args[0]
        if isinstance(inner, ast.Call):
            idn = _dotted(inner.func)
            if idn is not None and idn.split(".")[-1] in builders:
                return builders[idn.split(".")[-1]]
    return None


def _frame_arg_op(
    call: ast.Call,
    var_sites: dict[str, _FrameSite],
    dict_site_ids: dict[int, _FrameSite],
    builders: dict[str, str],
    consts: dict[str, str],
) -> str | None:
    """Op of the frame (if any) flowing into ``call`` as an argument."""
    for arg in call.args:
        if isinstance(arg, ast.Name) and arg.id in var_sites:
            return var_sites[arg.id].op
        if isinstance(arg, ast.Dict):
            if id(arg) in dict_site_ids:
                return dict_site_ids[id(arg)].op
            op = _op_of_dict(arg, consts)
            if op is not None:
                return op
        if isinstance(arg, ast.Call):
            op = _builder_call_op(arg, builders)
            if op is not None:
                return op
    return None


def _merge_write_site(view: SideView, site: _FrameSite) -> None:
    """Merge one construction site: required = present at every site."""
    view.sites += 1
    for name, use in site.fields.items():
        existing = view.fields.get(name)
        if existing is None:
            copied = FieldUse(name, required=use.required, types=set(use.types),
                              sites=list(use.sites))
            view.fields[name] = copied
        else:
            existing.merge_write(use)
            existing.required = existing.required and use.required
    # fields missing from this site become optional
    for name, existing in view.fields.items():
        if name not in site.fields:
            existing.required = False


def _merge_read(view: SideView, use: FieldUse) -> None:
    existing = view.fields.get(use.name)
    if existing is None:
        view.fields[use.name] = FieldUse(
            use.name, required=use.required, types=set(use.types),
            default=use.default, sites=list(use.sites),
        )
    else:
        existing.required = existing.required or use.required
        existing.types |= use.types
        existing.sites.extend(use.sites)


# ---------------------------------------------------------------------------
# Server side: handler reads + reply writes + notify writes
# ---------------------------------------------------------------------------


def _param_readers(module: ModuleSource) -> dict[str, dict[int, SideView]]:
    """Helper functions' reads on their params: name -> {index: reads}.

    One level of propagation on either side: ``self._context_of(request)``
    in a server handler unions ``_context_of``'s reads on its parameter
    into the handler's request reads; ``self._adopt_attach_reply(reply)``
    does the same for client-side reply reads.
    """
    out: dict[str, dict[int, SideView]] = {}
    for fn in _functions(module.tree):
        params = [a.arg for a in fn.args.args]
        for i, p in enumerate(params):
            view = SideView()
            _collect_dict_reads(fn, p, view, module.path, {})
            if view.fields:
                out.setdefault(fn.name, {})[i] = view
    return out


def _server_handlers(
    server: ModuleSource,
    consts: dict[str, str],
    schema: WireSchema,
    notify_writes: SideView,
) -> None:
    values = set(consts.values())
    readers = _param_readers(server)
    for fn in _functions(server.tree):
        if not fn.name.startswith("_op_"):
            continue
        op = fn.name[len("_op_"):]
        if op not in values:
            continue
        entry = schema.ops.setdefault(op, OpSchema(op))
        params = [a.arg for a in fn.args.args]
        request_param = params[-1] if params else None
        ann = _param_annotations(fn)

        if request_param:
            _collect_dict_reads(fn, request_param, entry.request_reads,
                                server.path, {})
            # one-level helper propagation
            for node in ast.walk(fn):
                if not isinstance(node, ast.Call):
                    continue
                dn = _dotted(node.func)
                if dn is None:
                    continue
                callee = dn.split(".")[-1]
                if callee not in readers:
                    continue
                for i, arg in enumerate(node.args):
                    if isinstance(arg, ast.Name) and arg.id == request_param:
                        # account for the implicit self on bound calls
                        for offset in (0, 1):
                            helper_view = readers[callee].get(i + offset)
                            if helper_view is not None:
                                for use in helper_view.fields.values():
                                    _merge_read(entry.request_reads, use)

        # reply writes: ok_reply keywords + reply-var augmentations
        reply_vars: set[str] = set()
        for node in ast.walk(fn):
            if isinstance(node, ast.Call):
                dn = _dotted(node.func)
                if dn is not None and dn.split(".")[-1] == "ok_reply":
                    site = _FrameSite(op, {}, node.lineno, set())
                    for kw in node.keywords:
                        if kw.arg is not None:
                            site.fields[kw.arg] = FieldUse(
                                kw.arg, required=True,
                                types=_expr_types(kw.value, ann),
                                sites=[(server.path, node.lineno)],
                            )
                    _merge_write_site(entry.reply_writes, site)
            if isinstance(node, ast.Assign) and len(node.targets) == 1 \
                    and isinstance(node.targets[0], ast.Name) \
                    and isinstance(node.value, ast.Call):
                dn = _dotted(node.value.func)
                if dn is not None and dn.split(".")[-1] == "ok_reply":
                    reply_vars.add(node.targets[0].id)
        for node in ast.walk(fn):
            if isinstance(node, ast.Assign) and len(node.targets) == 1 \
                    and isinstance(node.targets[0], ast.Subscript):
                target = node.targets[0]
                if isinstance(target.value, ast.Name) \
                        and target.value.id in reply_vars \
                        and isinstance(target.slice, ast.Constant) \
                        and isinstance(target.slice.value, str):
                    name = target.slice.value
                    use = entry.reply_writes.fields.setdefault(
                        name, FieldUse(name, required=False, types=set()),
                    )
                    use.required = False
                    use.types |= _expr_types(node.value, ann)
                    use.sites.append((server.path, node.lineno))

        # notify push frames built inside this handler
        for node in ast.walk(fn):
            if isinstance(node, ast.Dict):
                if _op_of_dict(node, consts) == consts.get("OP_NOTIFY", "notify"):
                    site = _FrameSite("notify", {}, node.lineno, set())
                    for k, v in zip(node.keys, node.values):
                        if k is None:
                            # **x.to_wire() expansion
                            if isinstance(v, ast.Call):
                                dn = _dotted(v.func)
                                if dn is not None and dn.split(".")[-1] == "to_wire":
                                    for nm, use in notify_writes.fields.items():
                                        site.fields[nm] = FieldUse(
                                            nm, required=use.required,
                                            types=set(use.types),
                                            sites=list(use.sites),
                                        )
                            continue
                        if isinstance(k, ast.Constant) and isinstance(k.value, str) \
                                and k.value != "op":
                            site.fields[k.value] = FieldUse(
                                k.value, required=True,
                                types=_expr_types(v, ann),
                                sites=[(server.path, node.lineno)],
                            )
                    _merge_write_site(schema.notify.reply_writes, site)


def _store_sub_ops(store: ModuleSource, schema: WireSchema) -> None:
    """Interpret ``_apply_one`` with branch attribution on ``op == X``."""
    for fn in _functions(store.tree):
        if fn.name != "_apply_one":
            continue
        params = [a.arg for a in fn.args.args]
        # the sub-op dict is the first non-self parameter
        sub_param = None
        for p in params:
            if p not in ("self",):
                sub_param = p
                break
        if sub_param is None:
            continue

        # locate op-comparison branches
        branch_bodies: dict[str, list[ast.stmt]] = {}
        branched_ids: set[int] = set()
        for node in ast.walk(fn):
            if not isinstance(node, ast.If):
                continue
            test = node.test
            if isinstance(test, ast.Compare) and len(test.ops) == 1 \
                    and isinstance(test.ops[0], ast.Eq) \
                    and isinstance(test.left, ast.Name) \
                    and test.left.id == "op" \
                    and isinstance(test.comparators[0], ast.Constant) \
                    and isinstance(test.comparators[0].value, str):
                kind = test.comparators[0].value
                branch_bodies[kind] = node.body
                for stmt in node.body:
                    for sub_node in ast.walk(stmt):
                        branched_ids.add(id(sub_node))

        # common reads: everything outside any op branch
        common = SideView()
        common_scope = ast.Module(
            body=[s for s in fn.body if not any(
                id(n) in branched_ids for n in ast.walk(s)
            ) or True],  # structure preserved; filtering happens below
            type_ignores=[],
        )
        for node in ast.walk(fn):
            if id(node) in branched_ids:
                continue
            _collect_dict_reads_single_for(node, sub_param, common, store.path)
        del common_scope

        for kind, body in branch_bodies.items():
            entry = schema.sub_ops.setdefault(kind, OpSchema(kind))
            branch = ast.Module(body=body, type_ignores=[])
            _collect_dict_reads(branch, sub_param, entry.request_reads,
                                store.path, {})
            for use in common.fields.values():
                _merge_read(entry.request_reads, use)
            # the returned dict literal is the sub-reply
            for node in ast.walk(branch):
                if isinstance(node, ast.Return) and isinstance(node.value, ast.Dict):
                    site = _FrameSite(kind, {}, node.lineno, set())
                    for k, v in zip(node.value.keys, node.value.values):
                        if isinstance(k, ast.Constant) and isinstance(k.value, str):
                            site.fields[k.value] = FieldUse(
                                k.value, required=True, types=set(),
                                sites=[(store.path, node.lineno)],
                            )
                    _merge_write_site(entry.reply_writes, site)


def _collect_dict_reads_single_for(
    node: ast.AST, var: str, view: SideView, path: str
) -> None:
    if _any_dict_read_var(node) == var:
        _collect_dict_reads_single(node, view, path)


# ---------------------------------------------------------------------------
# Error inventory
# ---------------------------------------------------------------------------

#: modules whose raised exceptions must be wire-mappable (the server's
#: dispatch path: handlers, the store they call into, and the name/value
#: validators)
DISPATCH_MODULES = (SERVER_MODULE, STORE_MODULE, "repro.util.strings")


def _raised_errors(modules: list[ModuleSource], schema: ErrorSchema) -> None:
    for module in modules:
        if module.modname not in DISPATCH_MODULES:
            continue
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Raise) or node.exc is None:
                continue
            exc = node.exc
            if isinstance(exc, ast.Call):
                exc = exc.func
            dn = _dotted(exc)
            if dn is None:
                continue
            name = dn.split(".")[-1]
            if name.endswith("Error") and name not in schema.raised:
                schema.raised[name] = (module.path, node.lineno)


def _synthesized_error_types(client: ModuleSource, schema: ErrorSchema) -> None:
    """String literals the client feeds into locally synthesized error
    replies (``_fail_pending("space_closed", ...)``); they must decode
    like wire errors."""
    fail_fn = None
    for fn in _functions(client.tree):
        if fn.name == "_fail_pending":
            fail_fn = fn.name
    if fail_fn is None:
        return
    for node in ast.walk(client.tree):
        if isinstance(node, ast.Call):
            dn = _dotted(node.func)
            if dn is not None and dn.split(".")[-1] == fail_fn and node.args:
                first = node.args[0]
                if isinstance(first, ast.Constant) and isinstance(first.value, str):
                    schema.synthesized.setdefault(
                        first.value, (client.path, node.lineno)
                    )


# ---------------------------------------------------------------------------
# Entry points
# ---------------------------------------------------------------------------


def infer(modules: Iterable[ModuleSource]) -> WireSchema | None:
    """Infer the wire schema from a parsed module set.

    Returns ``None`` when the protocol/client/server trio is not part of
    the set (fixture trees, partial lints) — callers should stay silent,
    matching the protocol-exhaustiveness rule's behavior.
    """
    by_name = {m.modname: m for m in modules}
    proto = by_name.get(PROTOCOL_MODULE)
    client = by_name.get(CLIENT_MODULE)
    server = by_name.get(SERVER_MODULE)
    if proto is None or client is None or server is None:
        return None
    store = by_name.get(STORE_MODULE)
    notify_mod = by_name.get(NOTIFY_MODULE)

    schema = WireSchema()
    schema.has_store = store is not None
    schema.has_notify = notify_mod is not None
    schema.op_constants = op_constants(proto)
    _error_maps(proto, schema.errors)
    notify_writes, notify_reads = _notify_wire_fields(notify_mod)
    _client_frames_and_reads(client, schema.op_constants, schema, notify_reads)
    _server_handlers(server, schema.op_constants, schema, notify_writes)
    if store is not None:
        _store_sub_ops(store, schema)
    _raised_errors(list(by_name.values()), schema.errors)
    _synthesized_error_types(client, schema.errors)
    # the error reply is a schema of its own
    err_entry = OpSchema("error")
    err_entry.reply_writes = _error_reply_fields(proto)
    err_entry.reply_reads = _raise_error_reads(proto)
    schema.ops.setdefault("error", err_entry)
    return schema


#: one-entry memo so the four wire rules share a single inference per
#: engine invocation (the engine passes each program rule the same list)
_CACHE: dict[tuple, WireSchema | None] = {}


def infer_cached(modules: list[ModuleSource]) -> WireSchema | None:
    key = tuple((m.modname, m.path, hash(m.text)) for m in modules)
    if key not in _CACHE:
        _CACHE.clear()
        _CACHE[key] = infer(modules)
    return _CACHE[key]


# ---------------------------------------------------------------------------
# Lock-file serialization
# ---------------------------------------------------------------------------

LOCK_SCHEMA_VERSION = 1


def _lock_fields(writes: SideView, reads: SideView, plumbing: set[str]) -> dict:
    out: dict[str, dict] = {}
    names = (set(writes.fields) | set(reads.fields)) - plumbing
    for name in sorted(names):
        w = writes.fields.get(name)
        r = reads.fields.get(name)
        types = set()
        if w is not None:
            types |= w.types
        if r is not None:
            types |= r.types
        spec: dict[str, Any] = {
            "required": bool(w.required) if w is not None else False,
            "types": sorted(types) if types else ["any"],
        }
        if r is not None and not r.required and r.default is not _MISSING \
                and isinstance(r.default, (str, int, float, bool, type(None))):
            spec["reader_default"] = r.default
        out[name] = spec
    return out


def to_lock(schema: WireSchema) -> dict:
    """Render the inferred schema as the ``protocol.lock.json`` payload.

    Deliberately free of file/line information so refactors that do not
    change the wire contract do not churn the artifact.
    """
    ops: dict[str, dict] = {}
    for op in sorted(schema.ops):
        if op == "error":
            continue
        entry = schema.ops[op]
        ops[op] = {
            "request": _lock_fields(
                entry.request_writes, entry.request_reads, REQUEST_PLUMBING
            ),
            "reply": _lock_fields(
                entry.reply_writes, entry.reply_reads, REPLY_PLUMBING
            ),
        }
    sub_ops: dict[str, dict] = {}
    for kind in sorted(schema.sub_ops):
        entry = schema.sub_ops[kind]
        sub_ops[kind] = {
            "request": _lock_fields(
                entry.request_writes, entry.request_reads, SUBOP_PLUMBING
            ),
            "reply": _lock_fields(
                entry.reply_writes, entry.reply_reads, SUBREPLY_PLUMBING
            ),
        }
    error_entry = schema.ops.get("error", OpSchema("error"))
    return {
        "schema_version": LOCK_SCHEMA_VERSION,
        "codec_module": CODEC_MODULE,
        "plumbing": {
            "request": sorted(REQUEST_PLUMBING),
            "reply": sorted(REPLY_PLUMBING),
            "notify": sorted(NOTIFY_PLUMBING),
        },
        "ops": ops,
        "notify": _lock_fields(
            schema.notify.reply_writes, schema.notify.reply_reads, NOTIFY_PLUMBING
        ),
        "batch_sub_ops": sub_ops,
        "error_reply": _lock_fields(
            error_entry.reply_writes, error_entry.reply_reads, {"ok"}
        ),
        "errors": dict(sorted(schema.errors.decode_map.items())),
        "waivers": dict(sorted(WAIVERS.items())),
    }


# ---------------------------------------------------------------------------
# Lock-file workflow (``python -m repro protocol dump|check``)
# ---------------------------------------------------------------------------

#: attrspace modules the inference reads (relative to the package dir)
_WIRE_SOURCES = ("protocol.py", "client.py", "server.py", "store.py", "notify.py")
#: plus the validators the dispatch path raises through
_EXTRA_SOURCES = ("util/strings.py",)

LOCK_FILENAME = "protocol.lock.json"


def infer_from_tree(src_root: Any = None) -> WireSchema:
    """Infer the schema from the installed source tree.

    ``src_root`` is the directory containing the ``repro`` package;
    defaults to the tree this module was imported from.
    """
    import pathlib

    if src_root is None:
        src_root = pathlib.Path(__file__).resolve().parents[2]
    else:
        src_root = pathlib.Path(src_root)
    paths = [src_root / "repro" / "attrspace" / name for name in _WIRE_SOURCES]
    paths += [src_root / "repro" / pathlib.PurePosixPath(p) for p in _EXTRA_SOURCES]
    modules = [ModuleSource.parse(p) for p in paths if p.exists()]
    schema = infer(modules)
    if schema is None:
        raise RuntimeError(
            f"wire inference needs {PROTOCOL_MODULE}, {CLIENT_MODULE} and "
            f"{SERVER_MODULE} under {src_root}"
        )
    return schema


def render_lock(lock: dict) -> str:
    """Serialize a lock payload in the committed (human-diffable) form."""
    import json as _json

    return _json.dumps(lock, indent=2, sort_keys=True) + "\n"


def load_lock(path: Any) -> dict:
    import json as _json
    import pathlib

    return _json.loads(pathlib.Path(path).read_text(encoding="utf-8"))


def lock_drift(committed: dict, current: dict) -> list[str]:
    """Human-readable differences between two lock payloads (empty = none)."""

    def walk(prefix: str, a: Any, b: Any, out: list[str]) -> None:
        if isinstance(a, dict) and isinstance(b, dict):
            for key in sorted(set(a) | set(b)):
                where = f"{prefix}.{key}" if prefix else str(key)
                if key not in a:
                    out.append(f"added: {where} = {b[key]!r}")
                elif key not in b:
                    out.append(f"removed: {where} (was {a[key]!r})")
                else:
                    walk(where, a[key], b[key], out)
        elif a != b:
            out.append(f"changed: {prefix}: {a!r} -> {b!r}")

    problems: list[str] = []
    walk("", committed, current, problems)
    return problems


# ---------------------------------------------------------------------------
# Runtime frame validation (round-trip conformance tests)
# ---------------------------------------------------------------------------

_JSON_TYPE_NAMES = {
    str: "str", int: "int", float: "float", bool: "bool",
    list: "list", dict: "dict", type(None): "null",
}


def _value_type(value: Any) -> str:
    if isinstance(value, bool):
        return "bool"
    for t, name in _JSON_TYPE_NAMES.items():
        if isinstance(value, t):
            return name
    return "any"


def _types_compatible(value_type: str, declared: list[str]) -> bool:
    if "any" in declared or value_type == "any":
        return True
    if value_type in declared:
        return True
    # JSON erases the int/float distinction for whole numbers
    return value_type in ("int", "float") and (
        "int" in declared or "float" in declared
    )


def validate_frame(lock: dict, frame: dict, kind: str) -> list[str]:
    """Check one concrete frame against a lock-file schema section.

    ``kind`` is ``"<op>.request"``, ``"<op>.reply"``, ``"notify"``,
    ``"error"`` (a whole-request error reply), ``"batch:<subop>.request"``,
    or ``"batch:<subop>.reply"``.  Returns human-readable problem strings
    (empty = conformant).
    """
    problems: list[str] = []
    if kind == "notify":
        section = lock.get("notify", {})
        plumbing = set(lock["plumbing"]["notify"]) | {"sub"}
    elif kind == "error":
        section = lock.get("error_reply", {})
        plumbing = set(lock["plumbing"]["reply"])
    elif kind.startswith("batch:"):
        rest, direction = kind.split(".", 1)
        section = lock.get("batch_sub_ops", {}).get(
            rest.split(":", 1)[1], {}
        ).get(direction)
        plumbing = {"op"} if direction == "request" else {"ok"}
        if section is None:
            return [f"unknown sub-op schema {kind!r}"]
    else:
        op, direction = kind.split(".", 1)
        section = lock.get("ops", {}).get(op, {}).get(direction)
        plumbing = set(lock["plumbing"][direction if direction in ("request", "reply") else "request"])
        if section is None:
            return [f"unknown op schema {kind!r}"]
    for name, spec in section.items():
        if spec.get("required") and name not in frame:
            problems.append(f"missing required field {name!r}")
        if name in frame and not _types_compatible(
            _value_type(frame[name]), spec.get("types", ["any"])
        ):
            problems.append(
                f"field {name!r} has type {_value_type(frame[name])}, "
                f"schema allows {spec.get('types')}"
            )
    for name in frame:
        if name not in section and name not in plumbing:
            problems.append(f"unknown field {name!r}")
    return problems
