"""``python -m repro lint`` — run the invariant linter from the shell.

Exit status: 0 when clean, 1 when findings exist, 2 on usage errors.
"""

from __future__ import annotations

import argparse
import subprocess
import sys
from pathlib import Path

from repro.analysis.core import all_rules, get_rule
from repro.analysis.engine import lint_paths
from repro.analysis.report import render_json, render_text


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro lint",
        description="AST-based TDP invariant linter (lock discipline, "
        "sim-clock purity, attribute-name hygiene, thread hygiene)",
    )
    parser.add_argument(
        "paths", nargs="*", default=["src/repro"],
        help="files or directories to lint (default: src/repro)",
    )
    parser.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--rules", metavar="NAME[,NAME...]", nargs="?", const=_LIST_SENTINEL,
        help="run only the named rules (comma-separated); with no value, "
        "list the registered rules and exit",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the registered rules and exit",
    )
    parser.add_argument(
        "--changed", action="store_true",
        help="scope file-level rules to files git reports as changed "
        "(diff against HEAD, plus untracked); whole-program rules still "
        "analyze every file under the given paths",
    )
    return parser


#: value of ``--rules`` when given bare (no rule names): list and exit 0
_LIST_SENTINEL = "\0list"


def _print_rules() -> int:
    for rule in all_rules():
        print(f"{rule.name:26s} {rule.description}")
    return 0


def _git_changed_files() -> set[str] | None:
    """Resolved paths of .py files git reports as changed, or None when
    not inside a git work tree.

    Changed = different from HEAD (staged or not) plus untracked: the
    union a reviewer would call "what this checkout touches".
    """

    def run(*argv: str) -> subprocess.CompletedProcess:
        return subprocess.run(
            ["git", *argv], capture_output=True, text=True
        )

    top = run("rev-parse", "--show-toplevel")
    if top.returncode != 0:
        return None
    root = Path(top.stdout.strip())
    listed = run("diff", "--name-only", "HEAD", "--", "*.py")
    untracked = run(
        "ls-files", "--others", "--exclude-standard", "--", "*.py"
    )
    out: set[str] = set()
    for proc in (listed, untracked):
        if proc.returncode != 0:
            continue
        for rel in proc.stdout.splitlines():
            if rel.strip():
                out.add(str((root / rel.strip()).resolve()))
    return out


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)

    if args.list_rules or args.rules == _LIST_SENTINEL:
        return _print_rules()

    rules = None
    if args.rules:
        try:
            rules = [get_rule(name.strip()) for name in args.rules.split(",") if name.strip()]
        except KeyError as e:
            print(f"error: {e.args[0]}", file=sys.stderr)
            return 2

    # A typo'd path must not report a clean tree.
    missing = [p for p in args.paths if not Path(p).exists()]
    if missing:
        for p in missing:
            print(f"error: no such file or directory: {p}", file=sys.stderr)
        return 2

    scope = None
    if args.changed:
        scope = _git_changed_files()
        if scope is None:
            print("error: --changed requires a git work tree", file=sys.stderr)
            return 2

    findings = lint_paths(args.paths, rules=rules, scope=scope)
    if args.format == "json":
        print(render_json(findings))
    else:
        print(render_text(findings))
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
