"""Whole-program lock-acquisition graph for the static sanitizer half.

Builds, from the parsed module set of one lint invocation, the directed
graph "key A was held while lock key B was acquired" — where keys are
the ``module.Class.attr`` names of :mod:`repro.analysis.lockorder`.
Construction is inter-procedural:

1. **Index** every class: its lock attributes (``self._lock =
   threading.Lock()``, class-level locks, dataclass Condition fields),
   Condition aliases (``self.state_changed = threading.Condition(
   self.lock)`` names the *same* lock), typed attributes, methods, and
   bases; plus every module's imports and top-level functions.
2. **Summarize** every function: which lock keys its body acquires
   (``with``-statements and linear ``.acquire()``/``.release()`` pairs),
   which program functions it calls, and which of both happen *while*
   locks are held.  Lock expressions resolve through ``self``/``cls``,
   parameter and return-type annotations, locally constructed objects,
   and — last — an attribute-name-uniqueness fallback (module-visible
   classes first, then program-wide).
3. **Propagate** locksets to a fixpoint over the call graph, then emit
   edges: a direct nested acquisition, or a call made under a lock to a
   function whose transitive lockset is nonempty.

The analysis is context-insensitive and deliberately under-approximate:
an unresolvable lock expression or callee is skipped, and nested
``def``/``lambda`` bodies are analyzed as their own functions, not as
code of the enclosing ``with`` block (they run later).  Re-entrant
re-acquisition of an ``RLock`` key is not an edge.

Beyond the lock graph, the same walk records the raw material of the
guarded-by inference in :mod:`repro.analysis.guards`:

* every **field access** whose receiver type resolves (``self.attr``,
  ``cls.attr``, typed collaborators and locals), with the lockset held
  locally at the access and read/write direction;
* every **thread entry point** — the resolved target of a
  ``spawn(target, ...)`` call (:func:`repro.util.threads.spawn`) or a
  ``clock.call_later(delay, callback)`` registration (timer callbacks
  run on a dedicated timer thread);
* every resolved **call site** (held lockset may be empty), so a must-
  hold entry-lockset fixpoint can be computed over the call graph.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterable

from repro.analysis.core import ModuleSource, dotted_name
from repro.analysis.lockorder import LOCK, RLOCK

#: threading factory -> lock kind.  A Condition owns a plain lock unless
#: constructed around an existing one (the alias case, handled apart).
#: The ``tracked_*`` factories from :mod:`repro.util.sync` are the
#: sanitizer-aware spellings of the same three primitives.
_LOCK_FACTORIES = {
    "Lock": LOCK,
    "RLock": RLOCK,
    "Condition": LOCK,
    "tracked_lock": LOCK,
    "tracked_rlock": RLOCK,
    "tracked_condition": LOCK,
}

#: method names never resolved by bare uniqueness — too likely to be a
#: builtin container/IO operation on an untyped receiver
_FALLBACK_CALL_DENYLIST = {
    "get", "put", "pop", "append", "add", "remove", "clear", "update",
    "items", "keys", "values", "close", "open", "read", "write", "send",
    "recv", "start", "stop", "join", "set", "wait", "notify", "notify_all",
    "acquire", "release", "wait_for", "next", "copy", "extend", "index",
    "count",
    "split", "strip", "format", "encode", "decode", "register",
}


def strip_repro(modname: str) -> str:
    """Lock keys drop the uniform ``repro.`` package prefix."""
    if modname == "repro":
        return ""
    if modname.startswith("repro."):
        return modname[len("repro."):]
    return modname


# ---------------------------------------------------------------------------
# indexed program structure


@dataclass
class ClassInfo:
    qualname: str                # "attrspace.store.AttributeStore"
    modinfo: "ModuleInfo"
    node: ast.ClassDef
    base_names: list[str] = field(default_factory=list)
    bases: list["ClassInfo"] = field(default_factory=list)      # resolved
    lock_attrs: dict[str, str] = field(default_factory=dict)    # attr -> kind
    aliases: dict[str, str] = field(default_factory=dict)       # attr -> attr
    #: attr -> (raw type name, is_container); resolved in attr_class
    attr_type_names: dict[str, tuple[str, bool]] = field(default_factory=dict)
    attr_classes: dict[str, tuple["ClassInfo", bool]] = field(default_factory=dict)
    methods: dict[str, ast.FunctionDef] = field(default_factory=dict)
    #: attr -> first ``self.attr = ...`` assignment line inside __init__
    #: (the instance fields the guarded-by inference considers)
    init_fields: dict[str, int] = field(default_factory=dict)
    #: lock attrs created via the ``tracked_*`` factories — the subset
    #: the runtime witness can actually observe in ``held_lock_keys()``
    tracked_locks: set[str] = field(default_factory=set)
    #: class declares ``__slots__`` — no instance ``__dict__``, so the
    #: runtime field witness (which stores values and the armed flag
    #: there) cannot wrap its fields
    has_slots: bool = False

    def mro(self) -> list["ClassInfo"]:
        out, seen, stack = [], set(), [self]
        while stack:
            ci = stack.pop(0)
            if ci.qualname in seen:
                continue
            seen.add(ci.qualname)
            out.append(ci)
            stack.extend(ci.bases)
        return out

    def find_lock(self, attr: str) -> tuple[str, str] | None:
        """Resolve ``attr`` to (lock key, kind), following aliases/bases."""
        for ci in self.mro():
            if attr in ci.aliases:
                return self.find_lock(ci.aliases[attr])
            if attr in ci.lock_attrs:
                return f"{ci.qualname}.{attr}", ci.lock_attrs[attr]
        return None

    def find_method(self, name: str) -> str | None:
        for ci in self.mro():
            if name in ci.methods:
                return f"{ci.qualname}.{name}"
        return None

    def attr_class(self, attr: str) -> tuple["ClassInfo", bool] | None:
        for ci in self.mro():
            hit = ci.attr_classes.get(attr)
            if hit is not None:
                return hit
        return None

    def field_owner(self, attr: str) -> "ClassInfo | None":
        """The MRO class whose ``__init__`` assigns ``attr``, if any."""
        for ci in self.mro():
            if attr in ci.init_fields:
                return ci
        return None


@dataclass
class ModuleInfo:
    src: ModuleSource
    mod: str                                       # stripped modname
    classes: dict[str, ClassInfo] = field(default_factory=dict)
    functions: dict[str, ast.FunctionDef] = field(default_factory=dict)
    imports: dict[str, str] = field(default_factory=dict)  # name -> dotted
    #: module-level singletons: name -> raw constructor name (resolved
    #: into global_types once all classes are indexed)
    global_type_names: dict[str, str] = field(default_factory=dict)
    global_types: dict[str, "ClassInfo"] = field(default_factory=dict)


@dataclass(frozen=True)
class Edge:
    """``held`` was held at ``path:line`` while ``acquired`` was taken
    (directly, or transitively through a call to ``via``)."""

    held: str
    acquired: str
    path: str
    line: int
    via: str = ""

    def describe(self) -> str:
        how = f" via call to {self.via}()" if self.via else ""
        return f"acquires {self.acquired} while holding {self.held}{how}"


@dataclass(frozen=True)
class FieldAccess:
    """One resolved instance-field access inside one function body.

    ``owner`` is the qualname of the MRO class whose ``__init__`` assigns
    the field (the canonical field identity the guard inference keys on);
    ``held`` is the lockset held *locally* at the access — callers'
    locks are added later by the entry-lockset fixpoint in guards.py.
    """

    owner: str
    attr: str
    path: str
    line: int
    write: bool
    held: tuple[str, ...]
    func: str


@dataclass
class FunctionInfo:
    qualname: str
    node: ast.FunctionDef | ast.AsyncFunctionDef
    cls: ClassInfo | None
    modinfo: ModuleInfo
    acquires: dict[str, tuple[str, int]] = field(default_factory=dict)
    calls: set[str] = field(default_factory=set)
    direct_edges: list[Edge] = field(default_factory=list)
    #: (held keys at the call, callee qualname, line) — every resolved
    #: call site, held possibly empty (guards' entry-lockset fixpoint
    #: needs the lock-free sites too; edge emission skips them)
    calls_under: list[tuple[tuple[str, ...], str, int]] = field(default_factory=list)
    #: resolved instance-field accesses (guarded-by inference input)
    accesses: list[FieldAccess] = field(default_factory=list)
    #: thread entry points this body registers: resolved ``spawn()``
    #: targets and ``call_later()`` callbacks
    spawns: set[str] = field(default_factory=set)


@dataclass
class LockGraph:
    """The finished artifact the concurrency rules consume."""

    #: every resolved acquisition site: (key, path, line)
    acquisitions: list[tuple[str, str, int]]
    #: (held, acquired) -> first-witness edge
    edges: dict[tuple[str, str], Edge]
    #: key -> kind as declared by the code (threading factory used)
    kinds: dict[str, str]

    def successors(self, key: str) -> list[str]:
        return sorted({b for (a, b) in self.edges if a == key})

    def cycles(self) -> list[list[str]]:
        """Strongly connected components with at least one edge inside
        (multi-node SCCs, plus self-loops), as sorted key lists."""
        adj: dict[str, set[str]] = {}
        for a, b in self.edges:
            adj.setdefault(a, set()).add(b)
            adj.setdefault(b, set())
        index: dict[str, int] = {}
        low: dict[str, int] = {}
        on_stack: set[str] = set()
        stack: list[str] = []
        sccs: list[list[str]] = []
        counter = [0]

        def strongconnect(v: str) -> None:
            # Iterative Tarjan: (node, successor iterator) work stack.
            work = [(v, iter(sorted(adj[v])))]
            index[v] = low[v] = counter[0]
            counter[0] += 1
            stack.append(v)
            on_stack.add(v)
            while work:
                node, succs = work[-1]
                advanced = False
                for w in succs:
                    if w not in index:
                        index[w] = low[w] = counter[0]
                        counter[0] += 1
                        stack.append(w)
                        on_stack.add(w)
                        work.append((w, iter(sorted(adj[w]))))
                        advanced = True
                        break
                    if w in on_stack:
                        low[node] = min(low[node], index[w])
                if advanced:
                    continue
                work.pop()
                if work:
                    parent = work[-1][0]
                    low[parent] = min(low[parent], low[node])
                if low[node] == index[node]:
                    comp = []
                    while True:
                        w = stack.pop()
                        on_stack.discard(w)
                        comp.append(w)
                        if w == node:
                            break
                    if len(comp) > 1 or node in adj.get(node, ()):
                        sccs.append(sorted(comp))

        for v in sorted(adj):
            if v not in index:
                strongconnect(v)
        return sccs


# ---------------------------------------------------------------------------
# phase 1: index


def _ann_type(ann: ast.AST | None) -> tuple[str, bool] | None:
    """Annotation expr -> (raw class name, is_container) or None.

    ``list[T]``/``dict[K, V]``/``Optional[T]``/``T | None`` unwrap to
    the interesting element type; string annotations are parsed.
    """
    if ann is None:
        return None
    if isinstance(ann, ast.Constant) and isinstance(ann.value, str):
        try:
            return _ann_type(ast.parse(ann.value, mode="eval").body)
        except SyntaxError:
            return None
    if isinstance(ann, (ast.Name, ast.Attribute)):
        raw = dotted_name(ann)
        return (raw, False) if raw else None
    if isinstance(ann, ast.Subscript):
        base = dotted_name(ann.value) or ""
        inner = ann.slice
        container = base.split(".")[-1] in ("list", "List", "set", "Set",
                                            "frozenset", "Iterable", "Iterator",
                                            "Sequence", "deque")
        if base.split(".")[-1] in ("dict", "Dict", "Mapping"):
            if isinstance(inner, ast.Tuple) and len(inner.elts) == 2:
                hit = _ann_type(inner.elts[1])
                return (hit[0], True) if hit else None
            return None
        if base.split(".")[-1] in ("Optional",):
            hit = _ann_type(inner)
            return hit
        if container:
            if isinstance(inner, ast.Tuple):
                return None
            hit = _ann_type(inner)
            return (hit[0], True) if hit else None
        return None
    if isinstance(ann, ast.BinOp) and isinstance(ann.op, ast.BitOr):
        for side in (ann.left, ann.right):
            if isinstance(side, ast.Constant) and side.value is None:
                continue
            hit = _ann_type(side)
            if hit:
                return hit
        return None
    return None


def _lock_factory_kind(call: ast.AST) -> str | None:
    """``threading.Lock()`` / ``tracked_lock(...)`` call -> kind."""
    if not isinstance(call, ast.Call):
        return None
    raw = dotted_name(call.func)
    if raw is None:
        return None
    leaf = raw.split(".")[-1]
    if leaf in _LOCK_FACTORIES \
            and raw in (leaf, f"threading.{leaf}", f"sync.{leaf}"):
        return _LOCK_FACTORIES[leaf]
    return None


def _is_tracked_factory(call: ast.AST) -> bool:
    """Was the lock created via a sanitizer-aware ``tracked_*`` factory?"""
    if not isinstance(call, ast.Call):
        return False
    raw = dotted_name(call.func) or ""
    return raw.split(".")[-1].startswith("tracked_")


def _alias_target(call: ast.Call) -> str | None:
    """The ``self.X`` a Condition factory wraps, if any.

    ``threading.Condition(self.lock)`` carries the wrapped lock first;
    ``tracked_condition(key, self.lock)`` carries it second (or as the
    ``lock=`` keyword).
    """
    leaf = (dotted_name(call.func) or "").split(".")[-1]
    arg: ast.AST | None = None
    if leaf == "Condition" and call.args:
        arg = call.args[0]
    elif leaf == "tracked_condition":
        if len(call.args) > 1:
            arg = call.args[1]
        else:
            arg = next(
                (kw.value for kw in call.keywords if kw.arg == "lock"), None
            )
    if isinstance(arg, ast.Attribute) and isinstance(arg.value, ast.Name) \
            and arg.value.id == "self":
        return arg.attr
    return None


def _index_class(ci: ClassInfo) -> None:
    """Fill lock_attrs/aliases/attr_type_names/methods from the body."""
    for stmt in ci.node.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            ci.methods[stmt.name] = stmt
        elif isinstance(stmt, ast.Assign) and len(stmt.targets) == 1 \
                and isinstance(stmt.targets[0], ast.Name):
            if stmt.targets[0].id == "__slots__":
                ci.has_slots = True
                continue
            kind = _lock_factory_kind(stmt.value)
            if kind is not None:
                ci.lock_attrs[stmt.targets[0].id] = kind
                if _is_tracked_factory(stmt.value):
                    ci.tracked_locks.add(stmt.targets[0].id)
        elif isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
            raw = dotted_name(stmt.annotation) or ""
            leaf = raw.split(".")[-1]
            if raw in (f"threading.{leaf}", leaf) and leaf in _LOCK_FACTORIES:
                # dataclass-style: _cond: threading.Condition = field(...)
                ci.lock_attrs[stmt.target.id] = _LOCK_FACTORIES[leaf]
            else:
                hit = _ann_type(stmt.annotation)
                if hit:
                    ci.attr_type_names[stmt.target.id] = hit
    # self.X assignments anywhere in the methods.
    for meth in ci.methods.values():
        param_anns: dict[str, tuple[str, bool]] = {}
        for a in (list(meth.args.posonlyargs) + list(meth.args.args)
                  + list(meth.args.kwonlyargs)):
            hit = _ann_type(a.annotation)
            if hit:
                param_anns[a.arg] = hit
        for node in ast.walk(meth):
            target = None
            value: ast.AST | None = None
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target, value = node.targets[0], node.value
            elif isinstance(node, ast.AnnAssign):
                target = node.target
                if isinstance(target, ast.Attribute) \
                        and isinstance(target.value, ast.Name) \
                        and target.value.id in ("self", "cls"):
                    hit = _ann_type(node.annotation)
                    if hit and target.attr not in ci.attr_type_names:
                        ci.attr_type_names[target.attr] = hit
                continue
            if not (isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id in ("self", "cls")):
                continue
            attr = target.attr
            kind = _lock_factory_kind(value)
            if kind is not None and isinstance(value, ast.Call):
                alias = _alias_target(value)
                if alias is not None:
                    # Condition wrapping an existing lock names that lock.
                    ci.aliases[attr] = alias
                else:
                    ci.lock_attrs.setdefault(attr, kind)
                    if _is_tracked_factory(value):
                        ci.tracked_locks.add(attr)
                continue
            if isinstance(value, ast.Call):
                raw = dotted_name(value.func)
                if raw and attr not in ci.attr_type_names:
                    ci.attr_type_names[attr] = (raw, False)
            elif isinstance(value, ast.Name) and value.id in param_anns:
                # collaborator injection: self._store = store
                ci.attr_type_names.setdefault(attr, param_anns[value.id])
    # Instance fields established by the constructor (guard inference
    # scope): any self.X store target inside __init__.
    init = ci.methods.get("__init__")
    if init is not None:
        for node in ast.walk(init):
            if not isinstance(node, ast.Attribute) \
                    or not isinstance(node.ctx, ast.Store):
                continue
            if isinstance(node.value, ast.Name) and node.value.id == "self":
                ci.init_fields.setdefault(node.attr, node.lineno)


class Program:
    """The indexed module set: name resolution + function summaries."""

    def __init__(self, modules: list[ModuleSource]):
        self._graph: LockGraph | None = None
        self.modinfos: list[ModuleInfo] = []
        self.classes_by_qual: dict[str, ClassInfo] = {}
        self.classes_by_name: dict[str, list[ClassInfo]] = {}
        self.functions: dict[str, FunctionInfo] = {}
        self.module_functions: dict[str, ast.FunctionDef] = {}
        for src in modules:
            self._index_module(src)
        self._resolve_class_refs()
        #: lock attr name -> {(key, kind)} for the uniqueness fallback
        self.lock_attr_owners: dict[str, set[tuple[str, str]]] = {}
        for ci in self.classes_by_qual.values():
            for attr in list(ci.lock_attrs) + list(ci.aliases):
                hit = ci.find_lock(attr)
                if hit:
                    self.lock_attr_owners.setdefault(attr, set()).add(hit)
        #: lock keys created via ``tracked_*`` factories — the runtime
        #: witness can only check guards drawn from this set
        self.tracked_lock_keys: set[str] = {
            f"{ci.qualname}.{attr}"
            for ci in self.classes_by_qual.values()
            for attr in ci.tracked_locks
        }
        #: method name -> defining classes (bare-call fallback)
        self.method_owners: dict[str, list[ClassInfo]] = {}
        for ci in self.classes_by_qual.values():
            for name in ci.methods:
                self.method_owners.setdefault(name, []).append(ci)
        self._summarize()

    # -- indexing ----------------------------------------------------------

    def _index_module(self, src: ModuleSource) -> None:
        mi = ModuleInfo(src=src, mod=strip_repro(src.modname))
        for node in ast.walk(src.tree):
            if isinstance(node, ast.ImportFrom) and node.level == 0 \
                    and node.module and (node.module == "repro"
                                         or node.module.startswith("repro.")):
                base = strip_repro(node.module)
                for alias in node.names:
                    dotted = f"{base}.{alias.name}" if base else alias.name
                    mi.imports[alias.asname or alias.name] = dotted
            elif isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.asname and alias.name.startswith("repro."):
                        mi.imports[alias.asname] = strip_repro(alias.name)
        for stmt in src.tree.body:
            if isinstance(stmt, ast.ClassDef):
                ci = ClassInfo(
                    qualname=f"{mi.mod}.{stmt.name}" if mi.mod else stmt.name,
                    modinfo=mi,
                    node=stmt,
                    base_names=[dotted_name(b) for b in stmt.bases
                                if dotted_name(b)],
                )
                _index_class(ci)
                mi.classes[stmt.name] = ci
                self.classes_by_qual[ci.qualname] = ci
                self.classes_by_name.setdefault(stmt.name, []).append(ci)
            elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                mi.functions[stmt.name] = stmt
            elif isinstance(stmt, ast.Assign) and len(stmt.targets) == 1 \
                    and isinstance(stmt.targets[0], ast.Name) \
                    and isinstance(stmt.value, ast.Call):
                raw = dotted_name(stmt.value.func)
                if raw:
                    mi.global_type_names[stmt.targets[0].id] = raw
        self.modinfos.append(mi)

    def _resolve_class_refs(self) -> None:
        for mi in self.modinfos:
            for ci in mi.classes.values():
                ci.bases = [
                    b for raw in ci.base_names
                    if (b := self.resolve_class(raw, mi)) is not None
                ]
        for mi in self.modinfos:
            for ci in mi.classes.values():
                for attr, (raw, cont) in ci.attr_type_names.items():
                    target = self.resolve_class(raw, mi)
                    if target is not None:
                        ci.attr_classes[attr] = (target, cont)
            for name, raw in mi.global_type_names.items():
                target = self.resolve_class(raw, mi)
                if target is not None:
                    mi.global_types[name] = target

    def resolve_class(self, raw: str, mi: ModuleInfo) -> ClassInfo | None:
        """Resolve a possibly dotted class reference in module context."""
        parts = raw.split(".")
        head = parts[0]
        if len(parts) == 1 and head in mi.classes:
            return mi.classes[head]
        if head in mi.imports:
            dotted = ".".join([mi.imports[head]] + parts[1:])
            hit = self.classes_by_qual.get(dotted)
            if hit is not None:
                return hit
        if len(parts) == 1:
            cands = self.classes_by_name.get(head, [])
            if len(cands) == 1:
                return cands[0]
        return None

    # -- function summaries -------------------------------------------------

    def _summarize(self) -> None:
        for mi in self.modinfos:
            for name, node in mi.functions.items():
                qual = f"{mi.mod}.{name}" if mi.mod else name
                self._summarize_function(qual, node, None, mi)
            for ci in mi.classes.values():
                for name, node in ci.methods.items():
                    self._summarize_function(
                        f"{ci.qualname}.{name}", node, ci, mi
                    )

    def _summarize_function(
        self,
        qual: str,
        node: ast.FunctionDef | ast.AsyncFunctionDef,
        cls: ClassInfo | None,
        mi: ModuleInfo,
    ) -> None:
        fi = FunctionInfo(qualname=qual, node=node, cls=cls, modinfo=mi)
        _BodyWalker(self, fi).run()
        self.functions[qual] = fi

    # -- graph construction ----------------------------------------------------

    def thread_roots(self) -> set[str]:
        """Every resolved thread entry point registered in the program:
        ``spawn()`` targets and ``call_later()`` callbacks."""
        roots: set[str] = set()
        for fi in self.functions.values():
            roots |= fi.spawns
        return roots

    def reachable_from(self, starts: Iterable[str]) -> set[str]:
        """Forward transitive closure over the resolved call graph."""
        seen: set[str] = set()
        stack = [q for q in starts if q in self.functions]
        while stack:
            q = stack.pop()
            if q in seen:
                continue
            seen.add(q)
            fi = self.functions.get(q)
            if fi is not None:
                stack.extend(fi.calls - seen)
        return seen

    def build_graph(self) -> LockGraph:
        if self._graph is not None:
            return self._graph
        locksets: dict[str, set[str]] = {
            q: set(fi.acquires) for q, fi in self.functions.items()
        }
        changed = True
        while changed:
            changed = False
            for q, fi in self.functions.items():
                mine = locksets[q]
                before = len(mine)
                for callee in fi.calls:
                    callee_set = locksets.get(callee)
                    if callee_set:
                        mine |= callee_set
                if len(mine) != before:
                    changed = True

        kinds: dict[str, str] = {}
        for owners in self.lock_attr_owners.values():
            for key, kind in owners:
                kinds[key] = kind

        acquisitions: list[tuple[str, str, int]] = []
        edges: dict[tuple[str, str], Edge] = {}

        def add_edge(e: Edge) -> None:
            if e.held == e.acquired and kinds.get(e.held) == RLOCK:
                return  # re-entrant re-acquire is legal, not an edge
            edges.setdefault((e.held, e.acquired), e)

        for fi in self.functions.values():
            path = fi.modinfo.src.path
            for key, (_, line) in fi.acquires.items():
                acquisitions.append((key, path, line))
            for e in fi.direct_edges:
                add_edge(e)
            for held, callee, line in fi.calls_under:
                for key in locksets.get(callee, ()):
                    for h in held:
                        add_edge(Edge(
                            held=h, acquired=key, path=path,
                            line=line, via=callee,
                        ))
        acquisitions.sort()
        self._graph = LockGraph(
            acquisitions=acquisitions, edges=edges, kinds=kinds
        )
        return self._graph


class _BodyWalker:
    """Walk one function body tracking the held-lock stack."""

    def __init__(self, program: Program, fi: FunctionInfo):
        self.program = program
        self.fi = fi
        self.held: list[str] = []
        #: local/param name -> (ClassInfo, is_container)
        self.var_types: dict[str, tuple[ClassInfo, bool]] = {}

    def run(self) -> None:
        node, cls, mi = self.fi.node, self.fi.cls, self.fi.modinfo
        args = node.args
        for a in (list(args.posonlyargs) + list(args.args)
                  + list(args.kwonlyargs)):
            if a.arg in ("self", "cls") and cls is not None:
                self.var_types[a.arg] = (cls, False)
            else:
                hit = _ann_type(a.annotation)
                if hit:
                    target = self.program.resolve_class(hit[0], mi)
                    if target is not None:
                        self.var_types[a.arg] = (target, hit[1])
        self.walk_body(node.body)

    # -- type inference ----------------------------------------------------

    def expr_type(self, expr: ast.AST) -> tuple[ClassInfo, bool] | None:
        if isinstance(expr, ast.Name):
            hit = self.var_types.get(expr.id)
            if hit is not None:
                return hit
            glob = self.fi.modinfo.global_types.get(expr.id)
            return (glob, False) if glob is not None else None
        if isinstance(expr, ast.Attribute):
            base = self.expr_type(expr.value)
            if base is not None and not base[1]:
                return base[0].attr_class(expr.attr)
            return None
        if isinstance(expr, ast.Call):
            raw = dotted_name(expr.func)
            if raw is not None:
                target = self.program.resolve_class(raw, self.fi.modinfo)
                if target is not None:
                    return (target, False)
            if isinstance(expr.func, ast.Attribute):
                base = self.expr_type(expr.func.value)
                if base is not None and not base[1]:
                    for ci in base[0].mro():
                        meth = ci.methods.get(expr.func.attr)
                        if meth is not None:
                            hit = _ann_type(meth.returns)
                            if hit:
                                t = self.program.resolve_class(
                                    hit[0], ci.modinfo)
                                if t is not None:
                                    return (t, hit[1])
                            return None
            elif isinstance(expr.func, ast.Name):
                fn = self.fi.modinfo.functions.get(expr.func.id)
                if fn is not None:
                    hit = _ann_type(fn.returns)
                    if hit:
                        t = self.program.resolve_class(hit[0], self.fi.modinfo)
                        if t is not None:
                            return (t, hit[1])
            return None
        if isinstance(expr, ast.Subscript):
            base = self.expr_type(expr.value)
            if base is not None and base[1]:
                return (base[0], False)
            return None
        return None

    def element_type(self, expr: ast.AST) -> tuple[ClassInfo, bool] | None:
        base = self.expr_type(expr)
        if base is not None and base[1]:
            return (base[0], False)
        return None

    # -- lock resolution --------------------------------------------------------

    def resolve_lock(self, expr: ast.AST) -> tuple[str, str] | None:
        """Lock expression -> (key, kind), or None when unresolvable."""
        if not isinstance(expr, ast.Attribute):
            return None  # bare names are function-local anonymous locks
        attr = expr.attr
        base_t = self.expr_type(expr.value)
        if base_t is not None and not base_t[1]:
            return base_t[0].find_lock(attr)
        if isinstance(expr.value, ast.Name):
            # ClassName._class_level_lock
            target = self.program.resolve_class(
                expr.value.id, self.fi.modinfo)
            if target is not None:
                return target.find_lock(attr)
        # Uniqueness fallback: module-visible owners first, then global.
        owners = self.program.lock_attr_owners.get(attr, set())
        if len(owners) == 1:
            return next(iter(owners))
        if len(owners) > 1:
            visible = self._visible_classes()
            local = {
                hit for ci in visible
                if (hit := ci.find_lock(attr)) is not None
            }
            if len(local) == 1:
                return next(iter(local))
        return None

    def _visible_classes(self) -> list[ClassInfo]:
        mi = self.fi.modinfo
        out = list(mi.classes.values())
        for target in mi.imports.values():
            ci = self.program.classes_by_qual.get(target)
            if ci is not None:
                out.append(ci)
        return out

    # -- call resolution ---------------------------------------------------------

    def resolve_call(self, call: ast.Call) -> str | None:
        func = call.func
        if isinstance(func, ast.Name):
            name = func.id
            mi = self.fi.modinfo
            target = self.program.resolve_class(name, mi)
            if target is not None:
                return target.find_method("__init__")
            if name in mi.functions:
                return f"{mi.mod}.{name}" if mi.mod else name
            dotted = mi.imports.get(name)
            if dotted is not None and dotted in self.program.functions:
                return dotted
            return None
        if isinstance(func, ast.Attribute):
            if self.resolve_lock(func.value) is not None:
                return None  # threading API on a lock/condition object
            base_t = self.expr_type(func.value)
            if base_t is not None and not base_t[1]:
                return base_t[0].find_method(func.attr)
            raw = dotted_name(func)
            if raw is not None:
                mi = self.fi.modinfo
                head, rest = raw.split(".", 1)
                dotted = mi.imports.get(head)
                if dotted is not None:
                    qual = f"{dotted}.{rest}"
                    if qual in self.program.functions:
                        return qual
                    target = self.program.classes_by_qual.get(dotted)
                    if target is not None and "." not in rest:
                        return target.find_method(rest)
            # Bare-uniqueness fallback for obviously program-specific names.
            name = func.attr
            if name not in _FALLBACK_CALL_DENYLIST \
                    and not name.startswith("__"):
                owners = [
                    ci for ci in self.program.method_owners.get(name, [])
                ]
                if len(owners) == 1:
                    return f"{owners[0].qualname}.{name}"
            return None
        return None

    # -- the walk -----------------------------------------------------------------

    def record_acquire(self, key: str, kind: str, line: int) -> None:
        path = self.fi.modinfo.src.path
        self.fi.acquires.setdefault(key, (path, line))
        for h in self.held:
            if h == key and kind == RLOCK:
                continue
            self.fi.direct_edges.append(
                Edge(held=h, acquired=key, path=path, line=line)
            )

    def record_call(self, call: ast.Call) -> None:
        self._record_thread_entry(call)
        callee = self.resolve_call(call)
        if callee is None:
            return
        self.fi.calls.add(callee)
        self.fi.calls_under.append(
            (tuple(dict.fromkeys(self.held)), callee, call.lineno)
        )

    #: thread-entry registration calls: leaf name -> positional index and
    #: keyword name of the callable that will run on another thread
    _THREAD_ENTRY_CALLS = {
        "spawn": (0, "target"),          # util.threads.spawn
        "call_later": (1, "callback"),   # util.clock.Clock.call_later
    }

    def _record_thread_entry(self, call: ast.Call) -> None:
        """Resolve the callable handed to ``spawn``/``call_later``.

        Detection is syntactic (leaf name), so seeded fixtures that
        define their own ``spawn`` helper participate without importing
        :mod:`repro.util.threads`.
        """
        leaf = (dotted_name(call.func) or "").split(".")[-1]
        spec = self._THREAD_ENTRY_CALLS.get(leaf)
        if spec is None:
            return
        index, kwname = spec
        arg: ast.AST | None = None
        if len(call.args) > index:
            arg = call.args[index]
        else:
            arg = next(
                (kw.value for kw in call.keywords if kw.arg == kwname), None
            )
        target = self._resolve_callable(arg)
        if target is not None:
            self.fi.spawns.add(target)

    def _resolve_callable(self, expr: ast.AST | None) -> str | None:
        """A callable expression -> function qualname (None if opaque)."""
        if isinstance(expr, ast.Call):
            # functools.partial(f, ...) carries the callable first
            leaf = (dotted_name(expr.func) or "").split(".")[-1]
            if leaf == "partial" and expr.args:
                return self._resolve_callable(expr.args[0])
            return None
        if isinstance(expr, ast.Attribute):
            base_t = self.expr_type(expr.value)
            if base_t is not None and not base_t[1]:
                return base_t[0].find_method(expr.attr)
            return None
        if isinstance(expr, ast.Name):
            mi = self.fi.modinfo
            if expr.id in mi.functions:
                return f"{mi.mod}.{expr.id}" if mi.mod else expr.id
            dotted = mi.imports.get(expr.id)
            if dotted is not None and dotted in self.program.functions:
                return dotted
        return None

    def record_access(self, node: ast.Attribute) -> None:
        """Record a resolvable instance-field access with the held lockset.

        Lock attributes themselves are excluded — touching ``self._lock``
        is lock usage, not shared-state access.
        """
        base_t = self.expr_type(node.value)
        if base_t is None or base_t[1]:
            return
        cls = base_t[0]
        if cls.find_lock(node.attr) is not None:
            return
        owner = cls.field_owner(node.attr)
        if owner is None:
            return
        self.fi.accesses.append(FieldAccess(
            owner=owner.qualname,
            attr=node.attr,
            path=self.fi.modinfo.src.path,
            line=node.lineno,
            write=isinstance(node.ctx, (ast.Store, ast.Del)),
            held=tuple(dict.fromkeys(self.held)),
            func=self.fi.qualname,
        ))

    def walk_body(self, body: list[ast.stmt]) -> None:
        for stmt in body:
            self.walk_stmt(stmt)

    def walk_stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return  # analyzed as its own function where reachable
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            pushed: list[str] = []
            for item in stmt.items:
                self.visit_expr(item.context_expr)
                hit = self.resolve_lock(item.context_expr)
                if hit is not None:
                    key, kind = hit
                    self.record_acquire(key, kind, item.context_expr.lineno)
                    self.held.append(key)
                    pushed.append(key)
            self.walk_body(stmt.body)
            for _ in pushed:
                self.held.pop()
            return
        if isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Call):
            call = stmt.value
            if isinstance(call.func, ast.Attribute) \
                    and call.func.attr in ("acquire", "release"):
                hit = self.resolve_lock(call.func.value)
                if hit is not None:
                    key, kind = hit
                    for arg in call.args:
                        self.visit_expr(arg)
                    if call.func.attr == "acquire":
                        self.record_acquire(key, kind, call.lineno)
                        self.held.append(key)
                    elif key in self.held:
                        self.held.remove(key)
                    return
        # Typed-local bookkeeping, then generic descent.
        if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1 \
                and isinstance(stmt.targets[0], ast.Name):
            t = self.expr_type(stmt.value)
            if t is not None:
                self.var_types[stmt.targets[0].id] = t
        elif isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
            hit = _ann_type(stmt.annotation)
            if hit:
                target = self.program.resolve_class(hit[0], self.fi.modinfo)
                if target is not None:
                    self.var_types[stmt.target.id] = (target, hit[1])
        elif isinstance(stmt, (ast.For, ast.AsyncFor)) \
                and isinstance(stmt.target, ast.Name):
            t = self.element_type(stmt.iter)
            if t is not None:
                self.var_types[stmt.target.id] = t
        for child in ast.iter_child_nodes(stmt):
            if isinstance(child, ast.stmt):
                self.walk_stmt(child)
            else:
                self.visit_expr(child)

    def visit_expr(self, node: ast.AST) -> None:
        """Record resolvable calls inside an expression tree.

        Statements reached through non-statement wrappers (an except
        handler's body, a match case) route back through walk_stmt so
        ``with`` blocks inside them still track the held stack.
        """
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            return
        if isinstance(node, ast.stmt):
            self.walk_stmt(node)
            return
        if isinstance(node, ast.Call):
            self.record_call(node)
        elif isinstance(node, ast.Attribute):
            self.record_access(node)
        for child in ast.iter_child_nodes(node):
            self.visit_expr(child)


#: one-entry memo so every program rule of one engine invocation (lock
#: order, guards) shares a single index + fixpoint over the same module
#: set (the engine passes each rule the same list)
_PROGRAM_CACHE: dict[tuple, Program] = {}


def program_cached(modules: list[ModuleSource]) -> Program:
    """The indexed :class:`Program` for ``modules``, memoized on content."""
    key = tuple((m.modname, m.path, hash(m.text)) for m in modules)
    if key not in _PROGRAM_CACHE:
        _PROGRAM_CACHE.clear()
        _PROGRAM_CACHE[key] = Program(list(modules))
    return _PROGRAM_CACHE[key]


def build_lock_graph(modules: list[ModuleSource]) -> LockGraph:
    """Index ``modules`` and return the whole-program lock graph."""
    return program_cached(modules).build_graph()
